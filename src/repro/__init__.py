"""FT-Cache: fault-tolerant deep-learning cache with hash-ring load balancing.

Reproduction of Lee et al., "Fault-Tolerant Deep Learning Cache with Hash
Ring for Load Balancing in HPC Systems" (SC 2024).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Package map
-----------
``repro.core``
    The contribution: consistent-hash ring with virtual nodes, placement
    baselines, failure detector, fault-tolerance policies, load analysis.
``repro.sim``
    Discrete-event simulation kernel (engine, resources, seeded RNG).
``repro.cluster``
    Frontier-calibrated substrate: nodes, NVMe, network, PFS, SLURM.
``repro.hvac``
    HVAC cache client/server over simulated Mercury-style RPC.
``repro.dl``
    CosmoFlow-style data-parallel training: sampler, elastic rollback,
    event-level :class:`~repro.dl.training.TrainingJob` and the
    fluid-flow :class:`~repro.dl.fastsim.FluidTrainingModel`.
``repro.failures``
    Synthetic Frontier SLURM log + Section III analysis + injection.
``repro.runtime``
    Real threaded FT-Cache over TCP/files, sharing the same core.
``repro.loadgen``
    Load generation & latency benchmarking against the real runtime:
    Zipf/uniform workloads, closed/open-loop drivers, chaos scenarios
    (``python -m repro.loadgen``).
``repro.metrics``
    Counters, timelines, traces, and the mergeable log-bucketed
    :class:`~repro.metrics.LatencyHistogram`.
``repro.experiments``
    One module per paper table/figure (+ ablations); also a CLI.

Quickstart
----------
>>> from repro import HashRing
>>> ring = HashRing(nodes=range(8), vnodes_per_node=100)
>>> owner = ring.lookup("/data/train/sample_000042.tfrecord")
>>> ring.remove_node(owner)              # a node fails...
>>> ring.lookup("/data/train/sample_000042.tfrecord") in ring.nodes
True
"""

from .core import (
    ElasticRecache,
    FaultPolicy,
    HashRing,
    MembershipView,
    NoFT,
    PFSRedirect,
    PlacementPolicy,
    RangePartition,
    RendezvousHash,
    StaticHash,
    Target,
    TimeoutFailureDetector,
    TreeHashRing,
    UnrecoverableNodeFailure,
    make_policy,
)

__version__ = "1.0.0"

__all__ = [
    "ElasticRecache",
    "FaultPolicy",
    "HashRing",
    "MembershipView",
    "NoFT",
    "PFSRedirect",
    "PlacementPolicy",
    "RangePartition",
    "RendezvousHash",
    "StaticHash",
    "Target",
    "TimeoutFailureDetector",
    "TreeHashRing",
    "UnrecoverableNodeFailure",
    "make_policy",
    "__version__",
]
