"""Lightweight metrics: named counters, accumulators, and histograms.

Every layer of the stack (HVAC client/server, PFS, training loop) writes
into one shared :class:`MetricsCollector`; the experiment harness reads it
back to build the paper's tables.  Counters are plain dict slots — cheap
enough to leave enabled in every run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

import numpy as np

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Counters (`inc`), sums (`add`), and per-key histograms (`bump`)."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = defaultdict(float)
        self.histograms: dict[str, dict[Hashable, float]] = defaultdict(lambda: defaultdict(float))
        self.series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    # -- counters ---------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def add(self, name: str, amount: float) -> None:
        self.counters[name] += amount

    def get(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    # -- per-key histograms --------------------------------------------------------
    def bump(self, name: str, key: Hashable, amount: float = 1.0) -> None:
        self.histograms[name][key] += amount

    def histogram(self, name: str) -> dict[Hashable, float]:
        return dict(self.histograms.get(name, {}))

    def histogram_array(self, name: str, keys: list[Hashable]) -> np.ndarray:
        h = self.histograms.get(name, {})
        return np.array([h.get(k, 0.0) for k in keys], dtype=np.float64)

    # -- time series -------------------------------------------------------------------
    def record(self, name: str, t: float, value: float) -> None:
        self.series[name].append((t, value))

    def series_arrays(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        pts = self.series.get(name, [])
        if not pts:
            return np.empty(0), np.empty(0)
        arr = np.asarray(pts, dtype=np.float64)
        return arr[:, 0], arr[:, 1]

    # -- export -----------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat copy of all counters (stable for assertions/serialisation)."""
        return dict(self.counters)

    def merge(self, other: "MetricsCollector") -> None:
        """Fold ``other``'s counters/histograms into this collector."""
        for k, v in other.counters.items():
            self.counters[k] += v
        for name, hist in other.histograms.items():
            for key, v in hist.items():
                self.histograms[name][key] += v
        for name, pts in other.series.items():
            self.series[name].extend(pts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MetricsCollector({len(self.counters)} counters)"
