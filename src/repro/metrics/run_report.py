"""Human-readable post-run report for a training job.

Folds the timeline, metrics counters, and (when tracing was enabled) the
operation-level trace into one text document — the page an operator reads
after a run to understand where the time and the bytes went, and what the
failures cost.  Works for both engines: the DES
:class:`~repro.dl.training.TrainingResult` carries everything; the fluid
:class:`~repro.dl.fastsim.FluidResult` produces the subset it tracks.
"""

from __future__ import annotations

from typing import Any, Optional

from ..viz.text import heading, render_table
from .collector import MetricsCollector
from .trace import Tracer

__all__ = ["render_run_report"]


def _fmt_bytes(nbytes: float) -> str:
    for unit, div in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(nbytes) >= div:
            return f"{nbytes / div:.2f} {unit}"
    return f"{nbytes:.0f} B"


def _epoch_section(result: Any) -> str:
    rows = []
    for rec in result.timeline.epochs:
        rows.append(
            (
                rec.epoch,
                f"{rec.start:.1f}s",
                f"{rec.duration:.1f}s" if rec.end is not None else "(unfinished)",
                rec.n_nodes,
                rec.restarts,
                "victim" if rec.victim else "",
            )
        )
    return render_table(["Epoch", "Start", "Duration", "Nodes", "Restarts", ""], rows)


def _failure_section(result: Any) -> str:
    if not result.timeline.failures:
        return "no failures injected"
    rows = [
        (f"{f.time:.1f}s", f.node_id, f.epoch) for f in result.timeline.failures
    ]
    return render_table(["Time", "Node", "During epoch"], rows)


def _io_section(metrics: MetricsCollector) -> str:
    pairs = [
        ("served from cache (local)", "client.local_bytes"),
        ("served from cache (remote)", "client.remote_bytes"),
        ("server PFS fetches (miss/recache)", "server.miss_bytes"),
        ("client PFS redirects", "client.pfs_direct_bytes"),
        ("recached to NVMe", "server.recache_bytes"),
        ("proactively prefetched", "proactive.bytes"),
        ("pre-staged (warmup)", "warmup.bytes"),
    ]
    rows = [(label, _fmt_bytes(metrics.get(key))) for label, key in pairs if metrics.get(key) > 0]
    hit_files = metrics.get("server.hit_files")
    miss_files = metrics.get("server.miss_files")
    if hit_files + miss_files > 0:
        rows.append(("cache hit rate (files)", f"{100 * hit_files / (hit_files + miss_files):.1f}%"))
    if metrics.get("client.rpc_timeouts") > 0:
        rows.append(("RPC timeouts", f"{metrics.get('client.rpc_timeouts'):.0f}"))
    if metrics.get("client.failures_declared") > 0:
        rows.append(("failures declared", f"{metrics.get('client.failures_declared'):.0f}"))
    if not rows:
        return "no I/O recorded"
    return render_table(["Category", "Amount"], rows)


def _trace_section(tracer: Tracer) -> str:
    a = tracer.analyze()
    if not a.spans:
        return "trace enabled but empty"
    rows = []
    for kind, count, gb, mean, p50, p99 in a.breakdown_table():
        rows.append((kind, count, f"{gb:.2f} GB", f"{mean * 1e3:.2f} ms", f"{p99 * 1e3:.2f} ms"))
    return render_table(["Operation", "Count", "Bytes", "Mean", "p99"], rows)


def render_run_report(result: Any, tracer: Optional[Tracer] = None) -> str:
    """Render one training run as a multi-section text report.

    ``result`` is a :class:`~repro.dl.training.TrainingResult` or
    :class:`~repro.dl.fastsim.FluidResult`; pass the job's tracer to add
    the operation-latency section.
    """
    out = [heading(f"Run report — {result.policy_name}")]
    status = "completed" if result.completed else f"ABORTED ({result.abort_reason})"
    out.append(
        f"nodes {result.n_nodes_start} → {result.n_nodes_end} | {status} | "
        f"total {result.total_time:.1f}s ({result.total_time / 60:.2f} min) | "
        f"{result.failures} failure(s), {result.restarts} elastic restart(s)"
    )
    out.append("")
    out.append(heading("Epochs", "-"))
    out.append(_epoch_section(result))
    out.append("")
    out.append(heading("Failures", "-"))
    out.append(_failure_section(result))
    metrics = getattr(result, "metrics", None)
    if isinstance(metrics, MetricsCollector):
        out.append("")
        out.append(heading("I/O breakdown", "-"))
        out.append(_io_section(metrics))
    if tracer is not None:
        out.append("")
        out.append(heading("Operation latencies (trace)", "-"))
        out.append(_trace_section(tracer))
    return "\n".join(out)
