"""Metrics: counters, run timelines, and summary statistics."""

from .collector import MetricsCollector
from .histogram import LatencyHistogram
from .stats import Summary, percent_change, speedup, summarize
from .timeline import EpochRecord, FailureRecord, Timeline
from .run_report import render_run_report
from .trace import Span, TraceAnalysis, Tracer

__all__ = [
    "MetricsCollector",
    "LatencyHistogram",
    "Summary",
    "percent_change",
    "speedup",
    "summarize",
    "EpochRecord",
    "FailureRecord",
    "Timeline",
    "render_run_report",
    "Span",
    "TraceAnalysis",
    "Tracer",
]
