"""Operation-level tracing for simulated runs.

A :class:`Tracer` records ``(start, end, kind, node, bytes)`` spans from
the HVAC client/server; the analysis side turns them into the latency
breakdowns an I/O paper lives on — per-operation percentiles, bandwidth
attribution, and time-bucketed concurrency.  Tracing is off by default
(``TrainingJob(..., trace=True)`` enables it) and costs one append per
operation when on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .stats import Summary, summarize

__all__ = ["Span", "Tracer", "TraceAnalysis"]


@dataclass(frozen=True)
class Span:
    """One traced operation."""

    kind: str
    node: int
    t_start: float
    t_end: float
    nbytes: float = 0.0

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Append-only span recorder (cheap enough to leave on in tests)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: list[Span] = []

    def record(self, kind: str, node: int, t_start: float, t_end: float, nbytes: float = 0.0) -> None:
        if not self.enabled:
            return
        if t_end < t_start:
            raise ValueError(f"span ends before it starts ({t_start} > {t_end})")
        self.spans.append(Span(kind=kind, node=node, t_start=t_start, t_end=t_end, nbytes=nbytes))

    def __len__(self) -> int:
        return len(self.spans)

    def analyze(self) -> "TraceAnalysis":
        return TraceAnalysis(self.spans)


class TraceAnalysis:
    """Queries over a span list."""

    def __init__(self, spans: list[Span]):
        self.spans = list(spans)

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({s.kind for s in self.spans}))

    def of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.spans if s.kind == kind]

    def durations(self, kind: Optional[str] = None) -> np.ndarray:
        spans = self.spans if kind is None else self.of_kind(kind)
        return np.array([s.duration for s in spans], dtype=np.float64)

    def percentiles(self, kind: str, qs: tuple[float, ...] = (50, 90, 99)) -> dict[float, float]:
        """Latency percentiles in seconds for one operation kind."""
        d = self.durations(kind)
        if d.size == 0:
            raise ValueError(f"no spans of kind {kind!r}")
        return {q: float(np.percentile(d, q)) for q in qs}

    def summary(self, kind: str) -> Summary:
        return summarize(self.durations(kind))

    def total_bytes(self, kind: Optional[str] = None) -> float:
        spans = self.spans if kind is None else self.of_kind(kind)
        return float(sum(s.nbytes for s in spans))

    def per_node_bytes(self, kind: Optional[str] = None) -> dict[int, float]:
        out: dict[int, float] = {}
        for s in self.spans if kind is None else self.of_kind(kind):
            out[s.node] = out.get(s.node, 0.0) + s.nbytes
        return out

    def concurrency(self, kind: str, at: float) -> int:
        """Spans of ``kind`` in flight at simulation time ``at``."""
        return sum(1 for s in self.of_kind(kind) if s.t_start <= at < s.t_end)

    def peak_concurrency(self, kind: str) -> int:
        """Maximum simultaneous in-flight spans of ``kind`` (sweep line)."""
        events: list[tuple[float, int]] = []
        for s in self.of_kind(kind):
            events.append((s.t_start, 1))
            events.append((s.t_end, -1))
        events.sort()
        cur = peak = 0
        for _, d in events:
            cur += d
            peak = max(peak, cur)
        return peak

    def breakdown_table(self) -> list[tuple[str, int, float, float, float, float]]:
        """(kind, count, total GB, mean s, p50 s, p99 s) per kind."""
        rows = []
        for kind in self.kinds:
            d = self.durations(kind)
            rows.append(
                (
                    kind,
                    int(d.size),
                    self.total_bytes(kind) / 1e9,
                    float(d.mean()),
                    float(np.percentile(d, 50)),
                    float(np.percentile(d, 99)),
                )
            )
        return rows
