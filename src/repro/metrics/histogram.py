"""Log-bucketed latency histogram (HDR-style, mergeable).

Service-level latency spans four-plus orders of magnitude — a cache hit
is microseconds, a TTL-detected failover is the better part of a second —
so fixed-width bins are useless and storing every sample is wasteful
under sustained load.  :class:`LatencyHistogram` keeps counts in buckets
whose edges grow geometrically (``buckets_per_decade`` per factor of 10),
bounding the *relative* error of any reported quantile by one bucket
width: with the default 40 buckets/decade every percentile is within
~5.9 % of the exact sorted-array answer.

Recording is O(1) and allocation-free; histograms with identical bucket
geometry :meth:`merge` by summing counts, so each load-generator worker
records into a private histogram and the scenario layer folds them
together afterwards — no lock on the hot path.  Exact ``min``/``max``/
``sum`` are tracked alongside the buckets (tails matter; p100 should not
be quantised).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["LatencyHistogram"]

#: quantiles reported by :meth:`LatencyHistogram.percentiles`
_STANDARD_QUANTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999))


class LatencyHistogram:
    """Mergeable log-bucketed histogram of positive values (seconds).

    ``min_value``/``max_value`` bound the resolvable range; values outside
    are clamped into the first/last bucket (count and exact min/max are
    still correct).  Not thread-safe by design — use one per worker and
    :meth:`merge`.
    """

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 100.0,
        buckets_per_decade: int = 40,
    ):
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("need 0 < min_value < max_value")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_value / self.min_value)
        self._n_buckets = max(1, math.ceil(decades * self.buckets_per_decade))
        self._counts = [0] * self._n_buckets
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording -------------------------------------------------------------------
    def _bucket_of(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        idx = int(math.log10(value / self.min_value) * self.buckets_per_decade)
        return min(idx, self._n_buckets - 1)

    def record(self, value: float) -> None:
        """Record one observation (must be finite and >= 0)."""
        if not (value >= 0.0 and math.isfinite(value)):
            raise ValueError(f"cannot record {value!r}")
        self._counts[self._bucket_of(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    # -- bucket geometry ---------------------------------------------------------------
    def bucket_edges(self, index: int) -> tuple[float, float]:
        """``[low, high)`` value range of bucket ``index``."""
        if not (0 <= index < self._n_buckets):
            raise IndexError(index)
        step = 1.0 / self.buckets_per_decade
        lo = self.min_value * 10.0 ** (index * step)
        hi = self.min_value * 10.0 ** ((index + 1) * step)
        return lo, hi

    @property
    def relative_error_bound(self) -> float:
        """Worst-case ratio between a reported quantile and the exact one."""
        return 10.0 ** (1.0 / self.buckets_per_decade)

    def _compatible(self, other: "LatencyHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.buckets_per_decade == other.buckets_per_decade
        )

    # -- queries -----------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within one bucket width of exact.

        Returns the upper edge of the bucket holding the ``ceil(q*count)``-th
        smallest sample (clamped to the exact max), so the estimate never
        under-reports — the conservative direction for an SLO.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        if q == 0.0:
            return self.min
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                _, hi = self.bucket_edges(i)
                return min(hi, self.max)
        return self.max  # pragma: no cover - rank <= count always lands above

    def percentiles(self) -> dict[str, float]:
        """The standard service-level summary (p50/p90/p99/p99.9 + extremes)."""
        if self.count == 0:
            return {"count": 0}
        out: dict[str, float] = {name: self.quantile(q) for name, q in _STANDARD_QUANTILES}
        out["min"] = self.min
        out["max"] = self.max
        out["mean"] = self.mean
        out["count"] = self.count
        return out

    # -- merge / export ----------------------------------------------------------------
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram (identical geometry required).

        Equivalent to having recorded both streams into one histogram.
        """
        if not self._compatible(other):
            raise ValueError("cannot merge histograms with different bucket geometry")
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @classmethod
    def merged(cls, parts: Sequence["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram equal to all ``parts`` folded together."""
        if not parts:
            return cls()
        out = cls(parts[0].min_value, parts[0].max_value, parts[0].buckets_per_decade)
        for p in parts:
            out.merge(p)
        return out

    def to_dict(self) -> dict:
        """JSON-safe summary (percentiles, not raw buckets)."""
        return {
            "unit": "seconds",
            "buckets_per_decade": self.buckets_per_decade,
            **{k: v for k, v in self.percentiles().items()},
        }

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "LatencyHistogram(empty)"
        p = self.percentiles()
        return (
            f"LatencyHistogram(n={self.count}, p50={p['p50']:.6f}, "
            f"p99={p['p99']:.6f}, max={p['max']:.6f})"
        )
