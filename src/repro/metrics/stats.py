"""Small statistics helpers shared by experiments and reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize", "percent_change", "speedup"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of repeated measurements."""

    n: int
    mean: float
    std: float
    min: float
    max: float
    median: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.n})"


def summarize(values: Sequence[float] | np.ndarray) -> Summary:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
        median=float(np.median(arr)),
    )


def percent_change(baseline: float, value: float) -> float:
    """``(value - baseline) / baseline`` in percent (paper's overhead metric)."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return 100.0 * (value - baseline) / baseline


def speedup(slow: float, fast: float) -> float:
    """Percent runtime reduction of ``fast`` relative to ``slow``.

    This is the paper's headline metric form: "FT w/ NVMe … outperforming
    FT w/ PFS by 24.9%" means ``speedup(t_pfs, t_nvme) == 24.9``.
    """
    if slow == 0:
        raise ValueError("slow must be nonzero")
    return 100.0 * (slow - fast) / slow
