"""Epoch/step timeline recording for training runs.

The experiment harness needs per-epoch wall-clock (Fig 6a's victim-epoch
analysis) and markers for failures and elastic restarts; this module keeps
those as typed records rather than ad-hoc tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["EpochRecord", "FailureRecord", "Timeline"]


@dataclass
class EpochRecord:
    """One completed (or aborted-and-restarted) epoch."""

    epoch: int
    start: float
    end: Optional[float] = None
    n_nodes: int = 0
    #: number of elastic rollbacks that interrupted this epoch
    restarts: int = 0
    #: True when a node failure occurred while this epoch ran (the paper's
    #: "victim epoch", Fig 6a)
    victim: bool = False

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"epoch {self.epoch} not finished")
        return self.end - self.start


@dataclass(frozen=True)
class FailureRecord:
    time: float
    node_id: int
    epoch: int


@dataclass
class Timeline:
    """Ordered record of epochs and failures for one training run."""

    epochs: list[EpochRecord] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)

    def begin_epoch(self, epoch: int, now: float, n_nodes: int) -> EpochRecord:
        rec = EpochRecord(epoch=epoch, start=now, n_nodes=n_nodes)
        self.epochs.append(rec)
        return rec

    def current_epoch(self) -> Optional[EpochRecord]:
        return self.epochs[-1] if self.epochs else None

    def note_failure(self, now: float, node_id: int, epoch: int) -> None:
        self.failures.append(FailureRecord(time=now, node_id=node_id, epoch=epoch))
        cur = self.current_epoch()
        if cur is not None and cur.end is None:
            cur.victim = True

    def epoch_durations(self) -> dict[int, float]:
        """Total wall-clock per epoch number, summing rollback attempts."""
        out: dict[int, float] = {}
        for rec in self.epochs:
            if rec.end is not None:
                out[rec.epoch] = out.get(rec.epoch, 0.0) + rec.duration
        return out

    def victim_epochs(self) -> list[int]:
        return sorted({rec.epoch for rec in self.epochs if rec.victim})
