"""Parallel file system (Lustre/Orion) model.

A PFS read is a two-stage pipeline, matching the paper's Sec II-A analysis
of why DL workloads hurt on Lustre:

1. **Metadata stage** — an open/lookup served by the metadata server (MDS),
   modelled as a bounded-concurrency :class:`~repro.sim.Resource` with a
   fixed service time.  When thousands of ranks open small files at once,
   admission queueing at this stage — not data bandwidth — dominates, which
   is exactly the "metadata lock contention" bottleneck the paper
   describes, and the source of the straggler behaviour under PFS
   redirection.
2. **Data stage** — the transfer shares the job's aggregate OST bandwidth,
   additionally capped per-stream (one client reading one file cannot
   stripe wide enough to exceed ``per_stream_bw``).

Writes (checkpointing is out of scope here) reuse the same stages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import Environment, Resource, SharedBandwidth
from .config import PFSConfig

__all__ = ["ParallelFileSystem", "PFSStats"]


class PFSStats:
    """Counters the experiments report (PFS pressure per configuration)."""

    __slots__ = ("reads", "bytes_read", "metadata_ops", "total_metadata_wait", "total_read_time")

    def __init__(self) -> None:
        self.reads = 0
        self.bytes_read = 0.0
        self.metadata_ops = 0
        self.total_metadata_wait = 0.0
        self.total_read_time = 0.0

    @property
    def mean_metadata_wait(self) -> float:
        return self.total_metadata_wait / self.metadata_ops if self.metadata_ops else 0.0

    @property
    def mean_read_time(self) -> float:
        return self.total_read_time / self.reads if self.reads else 0.0


class ParallelFileSystem:
    """Metadata-bounded, bandwidth-shared file system shared by all nodes."""

    def __init__(
        self,
        env: Environment,
        config: PFSConfig,
        name: str = "pfs",
        noise_rng: Optional[np.random.Generator] = None,
    ):
        self.env = env
        self.config = config
        self.name = name
        self._mds = Resource(env, capacity=config.metadata_concurrency)
        self._data = SharedBandwidth(
            env, config.aggregate_bw, per_stream_cap=config.per_stream_bw, name=f"{name}.data"
        )
        self.stats = PFSStats()
        if config.service_noise_sigma > 0:
            self._noise_rng = noise_rng if noise_rng is not None else np.random.default_rng(0x9E37)
        else:
            self._noise_rng = None

    def _noise(self) -> float:
        """Heavy-tailed per-read service multiplier (center-wide interference)."""
        if self._noise_rng is None:
            return 1.0
        return float(self._noise_rng.lognormal(0.0, self.config.service_noise_sigma))

    def metadata_op(self):
        """Process body: one open/stat against the MDS (queue + service)."""
        arrived = self.env.now
        with self._mds.request() as req:
            yield req
            self.stats.total_metadata_wait += self.env.now - arrived
            self.stats.metadata_ops += 1
            yield self.env.timeout(self.config.metadata_service_time)

    def read(self, nbytes: float, n_files: int = 1, amplification: float = 1.0):
        """Process body: read ``n_files`` totalling ``nbytes``.

        Each file pays a metadata op (sequentially — a client opens files
        one after another); the data then moves as one fair-share stream.
        ``amplification`` scales the per-file latency term for chunked
        client-side access patterns (see
        :attr:`~repro.cluster.config.PFSConfig.redirect_read_amplification`).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if n_files < 1:
            raise ValueError("n_files must be >= 1")
        if amplification < 1.0:
            raise ValueError("amplification must be >= 1")
        start = self.env.now
        # Interference noise applies to the latency-bound stages (access,
        # lock/seek per file); the bandwidth share is deterministic fluid.
        noise = self._noise()
        lat = self.config.access_latency + n_files * amplification * self.config.random_read_latency
        yield self.env.timeout(lat * noise)
        for _ in range(n_files):
            yield from self.metadata_op()
        yield self._data.transfer(nbytes)
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        self.stats.total_read_time += self.env.now - start

    @property
    def mds_queue_depth(self) -> int:
        """Requests waiting for metadata admission right now."""
        return self._mds.queued

    @property
    def active_streams(self) -> int:
        return self._data.active_transfers
