"""Interconnect model: per-node full-duplex NICs with fair-share bandwidth.

The fabric itself (Slingshot's dragonfly) is assumed non-blocking — on
Frontier the bisection bandwidth far exceeds what a data-loading workload
drives — so contention is modelled at the NIC endpoints: a message from
``src`` to ``dst`` shares ``src``'s egress channel and ``dst``'s ingress
channel with all concurrent traffic at those endpoints.  This endpoint
model is what produces incast queueing when many clients simultaneously
pull recached data from one surviving node after a failure.
"""

from __future__ import annotations

from ..sim import AllOf, Environment, SharedBandwidth
from .config import NetworkConfig

__all__ = ["Network"]


class Network:
    """Endpoint-contended message transport between node ids ``0..n-1``."""

    def __init__(self, env: Environment, config: NetworkConfig, n_nodes: int):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.env = env
        self.config = config
        self.n_nodes = n_nodes
        self._egress = [
            SharedBandwidth(env, config.link_bw, name=f"nic{i}.tx") for i in range(n_nodes)
        ]
        self._ingress = [
            SharedBandwidth(env, config.link_bw, name=f"nic{i}.rx") for i in range(n_nodes)
        ]
        self.messages_sent = 0
        self.bytes_sent = 0.0

    def _check(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node id {node} out of range [0, {self.n_nodes})")

    def send(self, src: int, dst: int, nbytes: float):
        """Process body: move ``nbytes`` from ``src`` to ``dst``.

        Loopback (``src == dst``) pays only a minimal software latency —
        HVAC clients talk to their co-located server through shared memory.
        """
        self._check(src)
        self._check(dst)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src == dst:
            yield self.env.timeout(self.config.base_latency)
            return
        yield self.env.timeout(self.config.base_latency)
        # The transfer occupies both endpoints simultaneously; completion is
        # when the slower of the two channels finishes its share.
        tx = self._egress[src].transfer(nbytes)
        rx = self._ingress[dst].transfer(nbytes)
        yield AllOf(self.env, [tx, rx])

    def egress_load(self, node: int) -> int:
        """Concurrent outbound transfers at ``node`` (observability)."""
        self._check(node)
        return self._egress[node].active_transfers

    def ingress_load(self, node: int) -> int:
        self._check(node)
        return self._ingress[node].active_transfers
