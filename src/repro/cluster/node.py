"""Compute-node model: identity, NVMe, liveness.

Failure semantics follow the paper's injection method (SLURM ``DRAIN``):
a failed node simply *stops responding* — in-flight and future RPCs to it
hang until the client's TTL expires.  The node object itself only tracks
liveness and exposes a ``failed`` event others can wait on; the HVAC
server and training rank check/subscribe to it.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Environment, Event
from .config import NVMeConfig
from .nvme import NVMeDevice

__all__ = ["ComputeNode"]


class ComputeNode:
    """One Frontier-like compute node (Table II)."""

    def __init__(self, env: Environment, node_id: int, nvme_config: NVMeConfig):
        self.env = env
        self.node_id = node_id
        self.nvme = NVMeDevice(env, nvme_config, name=f"node{node_id}.nvme")
        self._alive = True
        self._failed_event: Optional[Event] = None
        self.failed_at: Optional[float] = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def failed_event(self) -> Event:
        """Event that fires at the moment the node fails (lazily created)."""
        if self._failed_event is None:
            self._failed_event = Event(self.env)
            if not self._alive:
                self._failed_event.succeed(self.node_id)
        return self._failed_event

    def fail(self) -> None:
        """Take the node down (idempotent) — the DRAIN effect."""
        if not self._alive:
            return
        self._alive = False
        self.failed_at = self.env.now
        if self._failed_event is not None and not self._failed_event.triggered:
            self._failed_event.succeed(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover
        state = "up" if self._alive else f"DOWN@{self.failed_at:.1f}s"
        return f"ComputeNode({self.node_id}, {state})"
