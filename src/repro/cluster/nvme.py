"""Node-local NVMe device model.

Read and write paths are independent :class:`~repro.sim.SharedBandwidth`
channels (full-duplex flash controller), each with a fixed per-operation
latency.  Capacity is accounted in bytes; the cache layer above decides
eviction policy — the device only refuses writes past capacity.
"""

from __future__ import annotations

from ..sim import Environment, SharedBandwidth
from .config import NVMeConfig

__all__ = ["NVMeDevice", "NVMeFullError"]


class NVMeFullError(RuntimeError):
    """Write rejected: device at capacity."""


class NVMeDevice:
    """Bandwidth-shared NVMe volume with byte-level capacity accounting."""

    def __init__(self, env: Environment, config: NVMeConfig, name: str = "nvme"):
        self.env = env
        self.config = config
        self.name = name
        self._read_chan = SharedBandwidth(env, config.read_bw, name=f"{name}.read")
        self._write_chan = SharedBandwidth(env, config.write_bw, name=f"{name}.write")
        self._used = 0.0

    # -- capacity -----------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.config.capacity - self._used

    def reserve(self, nbytes: float) -> None:
        """Claim capacity before a write (raises :class:`NVMeFullError`)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if self._used + nbytes > self.config.capacity:
            raise NVMeFullError(
                f"{self.name}: {nbytes:.0f} B requested, {self.free_bytes:.0f} B free"
            )
        self._used += nbytes

    def release(self, nbytes: float) -> None:
        """Return capacity after an eviction/delete."""
        self._used = max(0.0, self._used - nbytes)

    # -- I/O (simulation processes) -------------------------------------------
    def read(self, nbytes: float):
        """Process body: read ``nbytes`` (latency + fair-share bandwidth)."""
        yield self.env.timeout(self.config.per_op_latency)
        yield self._read_chan.transfer(nbytes)

    def write(self, nbytes: float, reserve: bool = True):
        """Process body: write ``nbytes``, claiming capacity first by default."""
        if reserve:
            self.reserve(nbytes)
        yield self.env.timeout(self.config.per_op_latency)
        yield self._write_chan.transfer(nbytes)

    # -- observability ------------------------------------------------------------
    @property
    def bytes_read(self) -> float:
        return self._read_chan.bytes_moved

    @property
    def bytes_written(self) -> float:
        return self._write_chan.bytes_moved

    def __repr__(self) -> str:  # pragma: no cover
        return f"NVMeDevice({self.name}, used={self._used / self.config.capacity:.1%})"
