"""SLURM-like controls: node drain and job time limits.

Mirrors the two scheduler behaviours the paper leans on:

* ``sacct update NodeName=… State=DRAIN`` — the failure-injection command
  used in the evaluation (Sec V-A.3); :meth:`SlurmController.drain`
  reproduces its observable effect (the node stops responding).
* Job time limits — Sec IV-A.2 argues PFS redirection risks "job time
  limit violations": a 5–10% runtime increase can push a job past its
  allocation and get it killed.  :meth:`SlurmController.enforce_limit`
  wraps a job process with that guillotine so the experiment suite can
  measure violation rates per fault-tolerance policy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim import AnyOf, Environment, Process
from .topology import Cluster

__all__ = ["SlurmController", "JobTimeLimitExceeded"]


class JobTimeLimitExceeded(RuntimeError):
    """The scheduler killed the job at its wall-clock limit."""

    def __init__(self, limit: float):
        super().__init__(f"job exceeded its {limit:.0f}s time limit and was terminated")
        self.limit = limit


class SlurmController:
    """Scheduler-side view of an allocation."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.drained: list[tuple[float, int]] = []

    @property
    def env(self) -> Environment:
        return self.cluster.env

    def drain(self, node_id: int) -> None:
        """Isolate ``node_id`` immediately (the paper's injection method)."""
        self.cluster.fail_node(node_id)
        self.drained.append((self.env.now, node_id))

    def drain_at(self, node_id: int, when: float) -> Process:
        """Schedule a drain at absolute simulation time ``when``."""

        def _proc():
            delay = when - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self.drain(node_id)

        return self.env.process(_proc(), name=f"drain@{when:.1f}s->node{node_id}")

    def enforce_limit(self, job: Process, limit: float, grace: float = 0.0) -> Process:
        """Run ``job`` under a wall-clock ``limit``.

        The returned supervisor process finishes with the job's value, or
        raises :class:`JobTimeLimitExceeded` after ``limit + grace``
        seconds — interrupting the job, as SLURM's SIGKILL would.
        """
        if limit <= 0:
            raise ValueError("limit must be positive")

        def _supervise():
            deadline = self.env.timeout(limit + grace)
            fired = yield AnyOf(self.env, [job, deadline])
            if job in fired:
                return job.value
            if job.is_alive:
                job.interrupt(JobTimeLimitExceeded(limit))
            raise JobTimeLimitExceeded(limit)

        return self.env.process(_supervise(), name="slurm-limit")

    def random_drain_times(
        self,
        n_failures: int,
        window_start: float,
        window_end: float,
        stream_name: str = "slurm.drain",
        exclude: Optional[set[int]] = None,
    ) -> list[tuple[float, int]]:
        """Pick random (time, victim) pairs, matching the paper's protocol.

        "Both the timing and node selection were randomized" (Sec V-A.3);
        victims are distinct and drawn from live, non-excluded nodes.
        """
        if window_end <= window_start:
            raise ValueError("window_end must be after window_start")
        rng = self.cluster.rng.stream(stream_name)
        candidates = [n for n in self.cluster.alive_nodes if not exclude or n not in exclude]
        if n_failures > len(candidates):
            raise ValueError(f"cannot pick {n_failures} victims from {len(candidates)} nodes")
        victims = rng.choice(len(candidates), size=n_failures, replace=False)
        times = np.sort(rng.uniform(window_start, window_end, size=n_failures))
        return [(float(t), candidates[int(v)]) for t, v in zip(times, victims)]
