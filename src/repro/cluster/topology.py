"""Cluster assembly: nodes + network + PFS under one simulation environment."""

from __future__ import annotations

from ..sim import Environment, RngRegistry
from .config import ClusterConfig, frontier
from .network import Network
from .node import ComputeNode
from .pfs import ParallelFileSystem

__all__ = ["Cluster"]


class Cluster:
    """A simulated allocation of ``config.n_nodes`` compute nodes.

    Owns the :class:`~repro.sim.Environment`; every other component
    (HVAC servers/clients, training ranks, failure injectors) is built on
    top of an instance of this class.

    Examples
    --------
    >>> cluster = Cluster.frontier(n_nodes=8, seed=42)
    >>> cluster.env.run(until=10.0)
    """

    def __init__(self, config: ClusterConfig, seed: int = 0, env: Environment | None = None):
        self.config = config
        self.env = env if env is not None else Environment()
        self.rng = RngRegistry(seed)
        self.nodes = [ComputeNode(self.env, i, config.nvme) for i in range(config.n_nodes)]
        self.network = Network(self.env, config.network, config.n_nodes)
        self.pfs = ParallelFileSystem(self.env, config.pfs, noise_rng=self.rng.stream("pfs.noise"))

    @classmethod
    def frontier(cls, n_nodes: int = 64, seed: int = 0) -> "Cluster":
        """Frontier-calibrated cluster (Table II defaults)."""
        return cls(frontier(n_nodes), seed=seed)

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def node(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    @property
    def alive_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if n.alive]

    @property
    def failed_nodes(self) -> list[int]:
        return [n.node_id for n in self.nodes if not n.alive]

    def fail_node(self, node_id: int) -> None:
        """DRAIN ``node_id`` (idempotent)."""
        self.nodes[node_id].fail()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Cluster(n_nodes={self.n_nodes}, failed={len(self.failed_nodes)})"
