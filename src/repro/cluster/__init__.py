"""Simulated HPC substrate: nodes, NVMe, interconnect, PFS, scheduler."""

from .config import (
    ClusterConfig,
    ComputeConfig,
    GiB,
    KiB,
    MiB,
    NetworkConfig,
    NVMeConfig,
    PFSConfig,
    TiB,
    frontier,
)
from .interference import BackgroundLoad, with_interference
from .network import Network
from .node import ComputeNode
from .nvme import NVMeDevice, NVMeFullError
from .pfs import ParallelFileSystem, PFSStats
from .slurm import JobTimeLimitExceeded, SlurmController
from .topology import Cluster

__all__ = [
    "ClusterConfig",
    "ComputeConfig",
    "GiB",
    "KiB",
    "MiB",
    "NetworkConfig",
    "NVMeConfig",
    "PFSConfig",
    "TiB",
    "frontier",
    "BackgroundLoad",
    "with_interference",
    "Network",
    "ComputeNode",
    "NVMeDevice",
    "NVMeFullError",
    "ParallelFileSystem",
    "PFSStats",
    "JobTimeLimitExceeded",
    "SlurmController",
    "Cluster",
]
