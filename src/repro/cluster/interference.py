"""Center-wide PFS interference: the *mechanism* behind the noise knobs.

Orion is shared by every job on Frontier; the paper's straggler analysis
(Sec V-B.1) is ultimately about a training job's sporadic reads competing
with that background.  The fluid model folds interference into three
:class:`~repro.cluster.config.PFSConfig` parameters (per-stream bandwidth,
per-read latency, lognormal tail); this module provides

* :func:`with_interference` — a principled mapping from a scalar
  *interference level* to those parameters, shared by both engines, and
* :class:`BackgroundLoad` — an explicit DES workload: Poisson arrivals of
  foreign I/O bursts occupying the PFS data channel and metadata server,
  for small-scale studies where the parametric form should be justified
  against an actual contending process.

The ``interference`` ablation uses both to probe the one documented
reproduction residual: how strongly the Fig 5(b) NVMe-vs-PFS gap depends
on background load at each node count.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

import numpy as np

from ..sim import Environment, Process
from .config import PFSConfig
from .pfs import ParallelFileSystem

__all__ = ["with_interference", "BackgroundLoad"]


def with_interference(config: PFSConfig, level: float) -> PFSConfig:
    """Scale a PFS config to background-load ``level`` (0 = calibrated base).

    ``level`` is the ratio of foreign to available capacity: 1.0 means the
    rest of the machine demands as much again as this job's share.  The
    mapping is the standard M/G/1-flavoured degradation — bandwidth shares
    shrink hyperbolically, latency and its tail grow with utilisation:

    * aggregate and per-stream bandwidth ÷ (1 + level);
    * per-read latency × (1 + 2·level) (queueing ahead of each request);
    * tail sigma + 0.25·level (burstier service under load).
    """
    if level < 0:
        raise ValueError(f"interference level must be >= 0, got {level}")
    if level == 0:
        return config
    return replace(
        config,
        aggregate_bw=config.aggregate_bw / (1.0 + level),
        per_stream_bw=config.per_stream_bw / (1.0 + level),
        random_read_latency=config.random_read_latency * (1.0 + 2.0 * level),
        service_noise_sigma=config.service_noise_sigma + 0.25 * level,
    )


class BackgroundLoad:
    """Explicit DES background traffic against a shared PFS.

    Poisson arrivals of foreign read bursts, each with a lognormal size;
    the bursts occupy the same fair-share data channel and metadata queue
    the training job uses, so contention emerges rather than being assumed.
    ``offered_ratio`` sets the mean offered load relative to the PFS
    aggregate bandwidth (the same scalar :func:`with_interference` takes).
    """

    def __init__(
        self,
        env: Environment,
        pfs: ParallelFileSystem,
        offered_ratio: float = 0.5,
        mean_burst_bytes: float = 64e6,
        sigma: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        max_concurrent_bursts: int = 256,
    ):
        if offered_ratio < 0:
            raise ValueError("offered_ratio must be >= 0")
        if mean_burst_bytes <= 0:
            raise ValueError("mean_burst_bytes must be positive")
        self.env = env
        self.pfs = pfs
        self.offered_ratio = offered_ratio
        self.mean_burst_bytes = mean_burst_bytes
        self.sigma = sigma
        self.rng = rng if rng is not None else np.random.default_rng(0xB1A5)
        #: admission bound: foreign clients back off when the channel is
        #: saturated, which keeps an over-offered load (ratio > 1) from
        #: growing the in-flight set without limit
        self.max_concurrent_bursts = max_concurrent_bursts
        self.bursts = 0
        self.dropped = 0
        self.bytes_offered = 0.0
        self._proc: Optional[Process] = None

    @property
    def arrival_rate(self) -> float:
        """Bursts per second for the requested offered load."""
        demand = self.offered_ratio * self.pfs.config.aggregate_bw
        return demand / self.mean_burst_bytes

    def start(self) -> Optional[Process]:
        if self.offered_ratio == 0:
            return None
        if self._proc is not None:
            raise RuntimeError("background load already started")
        self._proc = self.env.process(self._run(), name="pfs-background-load")
        return self._proc

    def _run(self):
        rate = self.arrival_rate
        while True:
            gap = float(self.rng.exponential(1.0 / rate))
            yield self.env.timeout(gap)
            if self.pfs.active_streams >= self.max_concurrent_bursts:
                self.dropped += 1
                continue  # saturated: foreign client backs off
            nbytes = float(
                self.rng.lognormal(
                    np.log(self.mean_burst_bytes) - 0.5 * self.sigma**2, self.sigma
                )
            )
            self.bursts += 1
            self.bytes_offered += nbytes
            self.env.process(self._burst(nbytes), name="pfs-bg-burst")

    def _burst(self, nbytes: float):
        # A foreign job's read: one metadata op + a fair-share transfer.
        yield from self.pfs.read(nbytes, n_files=1)
