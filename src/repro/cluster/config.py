"""Hardware calibration for the simulated cluster.

Numbers are anchored to the paper's Table II and public Frontier /
Orion documentation:

* Node-local NVMe — two Samsung PM9A3 striped RAID-0, presented as one
  3.5 TB XFS volume with ~8 GB/s sequential read and ~4 GB/s write.
* Interconnect — Cray Slingshot, 200 Gb/s (25 GB/s) per NIC, ~2 µs base
  latency; RPC software overhead on top (Mercury round-trip).
* PFS (Orion, Lustre) — center-wide and *shared*; a single job sees far
  less than the aggregate.  DL's many-small-file pattern is metadata-bound
  (Sec II-A), so the model includes an explicit metadata service stage with
  bounded concurrency, plus per-stream and per-job data-bandwidth caps.

Every quantity is a plain dataclass field, so experiments can sweep or
ablate any of them; :func:`frontier` returns the calibrated default.
Units: seconds and bytes throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NVMeConfig",
    "NetworkConfig",
    "PFSConfig",
    "ComputeConfig",
    "ClusterConfig",
    "frontier",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4


@dataclass(frozen=True)
class NVMeConfig:
    """Node-local NVMe volume (Table II: 2× PM9A3, RAID-0, XFS)."""

    capacity: float = 3.5 * TiB
    read_bw: float = 8.0 * GiB  # peak sequential read, bytes/s
    write_bw: float = 4.0 * GiB  # peak sequential write, bytes/s
    #: fixed per-I/O software+device latency (submission, XFS, interrupt)
    per_op_latency: float = 60e-6


@dataclass(frozen=True)
class NetworkConfig:
    """Slingshot-class interconnect, modelled as per-node full-duplex NICs."""

    link_bw: float = 25.0 * GiB  # 200 Gb/s per NIC, bytes/s
    base_latency: float = 2e-6  # wire + switch traversal
    #: software round-trip overhead of one Mercury RPC (serialize, handler
    #: dispatch, completion callback)
    rpc_overhead: float = 25e-6


@dataclass(frozen=True)
class PFSConfig:
    """Lustre/Orion as seen by *one job*: shared, metadata-bound for small files."""

    #: data bandwidth this job's share of Orion sustains in aggregate —
    #: the center-wide file system is shared with every other running job,
    #: so one allocation sees a small slice of the nominal hardware number
    aggregate_bw: float = 2.0 * GiB
    #: single-stream (one client, one small file) data bandwidth — Orion's
    #: capacity tier is HDD-backed and shared center-wide, so small-file
    #: streams see far less than the marketing number
    per_stream_bw: float = 150.0 * MiB
    #: concurrent metadata operations the MDS serves for this job
    metadata_concurrency: int = 64
    #: service time of one metadata op (open/stat) once admitted
    metadata_service_time: float = 1.2e-3
    #: fixed network+client latency to reach the PFS at all
    access_latency: float = 0.3e-3
    #: mean extra per-file latency of a sporadic (cache-miss-path) read on
    #: a loaded Lustre: RPC round-trips, lock acquisition, OST seek — paid
    #: per file on top of metadata service and data movement
    random_read_latency: float = 5e-3
    #: lognormal sigma of per-read *latency* noise (the bandwidth share is
    #: deterministic fluid): production Lustre under center-wide
    #: interference is heavy-tailed, and the max over concurrent readers of
    #: this tail is what makes the straggler effect persist at scale
    #: (Sec V-B.1).  0 disables noise (DES/fluid cross-validation tests).
    service_noise_sigma: float = 0.6
    #: latency amplification of *client-side redirected* reads relative to
    #: a server-side sequential fetch.  Under PFS redirection the
    #: LD_PRELOAD client passes every application ``read()`` through to
    #: Lustre — a TFRecord reader issues many chunked reads per sample —
    #: whereas the HVAC server's cache-miss fetch is one large sequential
    #: read by the data mover.  This is the mechanism behind the paper's
    #: "continuous PFS access" vs "accesses the PFS only once" contrast.
    redirect_read_amplification: float = 6.0


@dataclass(frozen=True)
class ComputeConfig:
    """Per-node training compute (8× MI250X running CosmoFlow)."""

    #: forward+backward time for one *local batch*, seconds
    step_compute_time: float = 0.25
    #: gradient allreduce cost per step at the synchronisation barrier —
    #: modelled as a latency term that grows logarithmically with node
    #: count (tree/ring allreduce), added by the training loop
    allreduce_base: float = 3e-3
    allreduce_per_log2_node: float = 0.6e-3


@dataclass(frozen=True)
class ClusterConfig:
    """Full cluster description consumed by :class:`repro.cluster.topology.Cluster`."""

    n_nodes: int = 64
    nvme: NVMeConfig = field(default_factory=NVMeConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    pfs: PFSConfig = field(default_factory=PFSConfig)
    compute: ComputeConfig = field(default_factory=ComputeConfig)

    def with_nodes(self, n_nodes: int) -> "ClusterConfig":
        """Same hardware, different scale."""
        return replace(self, n_nodes=n_nodes)


def frontier(n_nodes: int = 64) -> ClusterConfig:
    """Calibrated Frontier-like cluster of ``n_nodes`` compute nodes."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    return ClusterConfig(n_nodes=n_nodes)
