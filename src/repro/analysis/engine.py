"""Lint engine: walk files, run rules, apply suppressions, emit findings.

Two rule layers run over the same tree:

* **module rules** (:class:`~.visitor.Rule`) see one file at a time;
* **project rules** (:class:`~.visitor.ProjectRule`) see the whole-tree
  :class:`~.callgraph.CallGraph` — transitive blocking (RT003), RPC
  conformance (RPC000–RPC004), resource leaks (RES001) and static lock
  ordering (LOCK001) live here.

Findings from both layers flow through the same suppression machinery:

* a finding whose line (or anchor line, e.g. the ``with`` statement for
  RT001/RT003) carries ``# ftlint: disable=<RULE> -- why`` is silenced;
* a suppression without a justification silences its target but emits
  ``SUP001`` — the tree must never accumulate unexplained escapes;
* a suppression listing a rule that never fired emits ``SUP002``.

:func:`run_lint` is the full pipeline (optional result cache, optional
static lock graph); :func:`lint_paths` / :func:`lint_source` are the
stable thin wrappers the tests and CLI have always used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .callgraph import CallGraph
from .findings import Finding
from .visitor import ModuleContext

__all__ = [
    "lint_paths",
    "lint_source",
    "run_lint",
    "collect_files",
    "LintResult",
    "ALL_PROJECT_RULES",
]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[str] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = (
                f for f in sorted(p.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        elif p.suffix == ".py":
            candidates = (p,)
        else:
            continue
        for f in candidates:
            key = f.as_posix()
            if key not in seen:
                seen.add(key)
                files.append(f)
    return files


def _rules(rule_classes: Optional[Sequence[type]]):
    if rule_classes is None:
        from .rules import ALL_RULES  # late import: rules import the visitor base

        rule_classes = ALL_RULES
    return [cls() for cls in rule_classes]


def _default_project_rules() -> tuple:
    # late imports: the project rules import the callgraph/rules modules
    from .interproc import TransitiveBlockingRule
    from .lockgraph import LockOrderRule
    from .registry import CounterRegistryProjectRule
    from .resources import ResourceLeakRule
    from .rpccheck import RpcConformanceRule

    return (
        TransitiveBlockingRule,
        RpcConformanceRule,
        ResourceLeakRule,
        LockOrderRule,
        CounterRegistryProjectRule,
    )


def ALL_PROJECT_RULES() -> tuple:
    """The project-rule catalogue (callable to avoid import cycles)."""
    return _default_project_rules()


def _project_rules(project_rule_classes: Optional[Sequence[type]]):
    if project_rule_classes is None:
        project_rule_classes = _default_project_rules()
    return [cls() for cls in project_rule_classes]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    cache_stats: Optional[dict] = None
    lock_graph: Optional[dict] = None


def _parse_finding(posix: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule="PARSE",
        path=posix,
        line=exc.lineno or 0,
        col=exc.offset or 0,
        message=f"syntax error: {exc.msg}",
    )


def _apply_suppressions(ctx: ModuleContext, raw: Iterable[Finding]) -> list[Finding]:
    """Silence suppressed findings for one file; add SUP001/SUP002."""
    kept: list[Finding] = []
    for f in raw:
        sup = ctx.suppression_for(f.rule, (f.line, *f.anchor_lines))
        if sup is None:
            kept.append(f)
        else:
            sup.mark_used(f.rule)

    for sup in ctx.suppressions.values():
        if sup.used_rules and not (sup.justification and sup.justification.strip()):
            kept.append(
                Finding(
                    rule="SUP001",
                    path=ctx.path,
                    line=sup.line,
                    message=f"suppression of {sorted(sup.used_rules)} without a "
                    f"'-- justification' — explain why the hazard does not apply",
                )
            )
        for rule_id in sup.unused_rules:
            kept.append(
                Finding(
                    rule="SUP002",
                    path=ctx.path,
                    line=sup.line,
                    message=f"useless suppression: {rule_id} does not fire here "
                    f"(stale comments hide future regressions — remove it)",
                )
            )
    return kept


def run_lint(
    sources: Iterable[tuple[str, str]],
    rule_classes: Optional[Sequence[type]] = None,
    project_rule_classes: Optional[Sequence[type]] = None,
    cache=None,
    want_lock_graph: bool = False,
    stats: Iterable = (),
) -> LintResult:
    """Full pipeline over ``(path, source)`` pairs.

    ``cache`` is an :class:`~.cache.AnalysisCache` (or None); ``stats``
    supplies the matching ``os.stat_result`` per file, positionally, for
    the cache's mtime fast path (absent entries fall back to hashing).
    """
    stat_list = list(stats)
    contexts: list[ModuleContext] = []
    raw_by_path: dict[str, list[Finding]] = {}
    file_hashes: dict[str, str] = {}
    orphans: list[Finding] = []  # findings on paths we never parsed

    for i, (path, source) in enumerate(sources):
        posix = path.replace("\\", "/")
        st = stat_list[i] if i < len(stat_list) else None
        if cache is not None and st is not None:
            file_hashes[posix] = cache.file_hash(posix, source, st)
        try:
            ctx = ModuleContext.parse(posix, source)
        except SyntaxError as exc:
            raw_by_path[posix] = [_parse_finding(posix, exc)]
            continue
        contexts.append(ctx)
        module_findings = None
        if cache is not None and posix in file_hashes:
            module_findings = cache.get_module_findings(posix, file_hashes[posix])
        if module_findings is None:
            module_findings = []
            for rule in _rules(rule_classes):
                module_findings.extend(rule.check(ctx))
            if cache is not None and posix in file_hashes and st is not None:
                cache.put_module_findings(
                    posix, file_hashes[posix], st, module_findings
                )
        raw_by_path[posix] = module_findings

    # -- project layer: one call graph, all interprocedural rules over it
    project_findings: Optional[list[Finding]] = None
    project_key = None
    if cache is not None and file_hashes and not want_lock_graph:
        project_key = cache.project_key(file_hashes)
        project_findings = cache.get_project_findings(project_key)
    graph: Optional[CallGraph] = None
    if project_findings is None or want_lock_graph:
        graph = CallGraph(contexts)
    if project_findings is None:
        project_findings = []
        for prule in _project_rules(project_rule_classes):
            project_findings.extend(prule.check_project(graph))
        if cache is not None and file_hashes:
            if project_key is None:
                project_key = cache.project_key(file_hashes)
            cache.put_project_findings(project_key, project_findings)
    for f in project_findings:
        if f.path in raw_by_path:
            raw_by_path[f.path].append(f)
        else:
            orphans.append(f)

    ctx_by_path = {ctx.path: ctx for ctx in contexts}
    kept: list[Finding] = list(orphans)
    for posix, raw in raw_by_path.items():
        ctx = ctx_by_path.get(posix)
        if ctx is None:
            kept.extend(raw)  # unparseable file: PARSE finding, nothing to suppress
        else:
            kept.extend(_apply_suppressions(ctx, raw))
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    result = LintResult(findings=kept)
    if cache is not None:
        cache.save()
        result.cache_stats = dict(cache.stats)
    if want_lock_graph and graph is not None:
        from .lockgraph import build_static_lock_graph

        result.lock_graph = build_static_lock_graph(graph)
    return result


def lint_source(
    path: str,
    source: str,
    rule_classes: Optional[Sequence[type]] = None,
    project_rule_classes: Optional[Sequence[type]] = None,
) -> list[Finding]:
    """Lint one in-memory module; ``path`` scopes path-sensitive rules.

    Project rules run too, over the single-module call graph — so the
    intraprocedural slices of RT003/RES001/RPC000 behave identically
    whether a file is linted alone or as part of the tree.
    """
    return run_lint([(path, source)], rule_classes, project_rule_classes).findings


def lint_paths(
    paths: Iterable[str | Path],
    rule_classes: Optional[Sequence[type]] = None,
    project_rule_classes: Optional[Sequence[type]] = None,
    cache=None,
) -> list[Finding]:
    """Lint every ``*.py`` under ``paths``; returns sorted findings."""
    return run_lint_paths(paths, rule_classes, project_rule_classes, cache).findings


def run_lint_paths(
    paths: Iterable[str | Path],
    rule_classes: Optional[Sequence[type]] = None,
    project_rule_classes: Optional[Sequence[type]] = None,
    cache=None,
    want_lock_graph: bool = False,
) -> LintResult:
    files = collect_files(paths)
    sources = []
    stats = []
    for f in files:
        sources.append((f.as_posix(), f.read_text()))
        stats.append(f.stat())
    return run_lint(
        sources,
        rule_classes,
        project_rule_classes,
        cache=cache,
        want_lock_graph=want_lock_graph,
        stats=stats,
    )
