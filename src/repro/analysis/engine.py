"""Lint engine: walk files, run rules, apply suppressions, emit findings.

Suppression semantics (enforced here, not in the rules):

* a finding whose line (or anchor line, e.g. the ``with`` statement for
  RT001) carries ``# ftlint: disable=<RULE> -- why`` is silenced;
* a suppression without a justification silences its target but emits
  ``SUP001`` — the tree must never accumulate unexplained escapes;
* a suppression listing a rule that never fired emits ``SUP002``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from .findings import Finding
from .visitor import ModuleContext

__all__ = ["lint_paths", "lint_source", "collect_files"]

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def collect_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*.py"))
                if not any(part in _SKIP_DIRS for part in f.parts)
            )
        elif p.suffix == ".py":
            files.append(p)
    return files


def _rules(rule_classes: Optional[Sequence[type]]):
    if rule_classes is None:
        from .rules import ALL_RULES  # late import: rules import the visitor base

        rule_classes = ALL_RULES
    return [cls() for cls in rule_classes]


def lint_source(
    path: str, source: str, rule_classes: Optional[Sequence[type]] = None
) -> list[Finding]:
    """Lint one in-memory module; ``path`` scopes path-sensitive rules."""
    posix = path.replace("\\", "/")
    try:
        ctx = ModuleContext.parse(posix, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                path=posix,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    raw: list[Finding] = []
    for rule in _rules(rule_classes):
        raw.extend(rule.check(ctx))

    kept: list[Finding] = []
    for f in raw:
        sup = ctx.suppression_for(f.rule, (f.line, *f.anchor_lines))
        if sup is None:
            kept.append(f)
        else:
            sup.mark_used(f.rule)

    for sup in ctx.suppressions.values():
        if sup.used_rules and not (sup.justification and sup.justification.strip()):
            kept.append(
                Finding(
                    rule="SUP001",
                    path=posix,
                    line=sup.line,
                    message=f"suppression of {sorted(sup.used_rules)} without a "
                    f"'-- justification' — explain why the hazard does not apply",
                )
            )
        for rule_id in sup.unused_rules:
            kept.append(
                Finding(
                    rule="SUP002",
                    path=posix,
                    line=sup.line,
                    message=f"useless suppression: {rule_id} does not fire here "
                    f"(stale comments hide future regressions — remove it)",
                )
            )
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept


def lint_paths(
    paths: Iterable[str | Path], rule_classes: Optional[Sequence[type]] = None
) -> list[Finding]:
    """Lint every ``*.py`` under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    for file in collect_files(paths):
        findings.extend(lint_source(file.as_posix(), file.read_text(), rule_classes))
    return findings
