"""RES001 — socket/file handle must be closed on *every* path.

A CFG-based may-leak analysis scoped to ``repro.runtime`` and
``repro.loadgen`` (the packages that own real sockets and spill files).
For each local variable bound directly from an acquiring call —
``open(...)``, ``socket.socket(...)``, ``socket.create_connection(...)``
— a forward boolean dataflow ("may this variable hold an open resource
here?") runs over the function's CFG, exception edges included:

* the acquiring assignment sets the state on its *normal* out-edge only
  (if the call raises, the binding never happened);
* ``v.close()`` clears it on both edges (a close is assumed committed);
* rebinding ``v`` clears it (the old object is dropped — if the new
  value is itself an acquisition the state is set again);
* a ``True`` entering EXIT is a leak on a normal return path, a ``True``
  entering RAISE is a leak on an exception path — ``with`` blocks and
  ``try/finally`` close both.

Escape hatch, not loophole: a variable that *escapes* the function —
returned, yielded, passed as a call argument, stored into an attribute,
container, or tuple, or aliased — transfers ownership somewhere this
function-local analysis cannot see, so it is not tracked (the pooled
connections in ``FTCacheClient._checkout`` hand their socket to
``_PooledConn`` and stay out of scope by exactly this rule).  A bare
``open(...)`` expression statement whose handle is bound to nothing is
reported directly.  ``with open(...) as f`` never acquires in this
analysis — the context manager owns the close.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, iter_scope
from .cfg import EXIT, RAISE, build_cfg
from .dataflow import solve_forward
from .findings import Finding
from .visitor import ProjectRule, dotted_name

#: call names whose result is an OS resource needing close()
_ACQUIRE_NAMES = {
    "open",
    "socket",
    "socket.socket",
    "create_connection",
    "socket.create_connection",
}
_CLOSE_ATTRS = {"close"}
_PACKAGES = (("repro", "runtime"), ("repro", "loadgen"))


def _is_acquire(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name in _ACQUIRE_NAMES:
        return name
    return None


def _parent_map(func_node: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    stack = [func_node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                stack.append(child)
    return parents


def _acquisitions(func_node: ast.AST) -> Tuple[Dict[str, List[ast.stmt]], List[ast.Call]]:
    """``var → acquiring Assign statements`` plus bare discarded acquires."""
    by_var: Dict[str, List[ast.stmt]] = {}
    discarded: List[ast.Call] = []
    for node in iter_scope(func_node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _is_acquire(node.value) and len(node.targets) == 1:
                tgt = node.targets[0]
                if isinstance(tgt, ast.Name):
                    by_var.setdefault(tgt.id, []).append(node)
                # non-Name targets store the handle somewhere visible
                # elsewhere (attribute/subscript) — ownership escapes
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            if _is_acquire(node.value):
                discarded.append(node.value)
    return by_var, discarded


def _escapes(func_node: ast.AST, var: str, acquire_stmts: List[ast.stmt]) -> bool:
    """True when ``var`` leaves this function's custody: any Load use
    that is not the receiver of an attribute access."""
    parents = _parent_map(func_node)
    acquire_ids = {id(s) for s in acquire_stmts}
    for node in iter_scope(func_node):
        if not (isinstance(node, ast.Name) and node.id == var):
            continue
        if not isinstance(node.ctx, ast.Load):
            continue
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue  # v.close(), v.recv(), v.settimeout() — custody retained
        if id(parent) in acquire_ids:
            continue
        return True
    return False


def _stmt_effect(stmt: Optional[ast.stmt], role: str, var: str) -> Optional[str]:
    """"acquire" | "close" | "drop" | None for one CFG node w.r.t. var."""
    if stmt is None or role != "stmt":
        return None
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        tgt = stmt.targets[0]
        if isinstance(tgt, ast.Name) and tgt.id == var:
            if isinstance(stmt.value, ast.Call) and _is_acquire(stmt.value):
                return "acquire"
            return "drop"
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _CLOSE_ATTRS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == var
        ):
            return "close"
    return None


class ResourceLeakRule(ProjectRule):
    rules = (
        ("RES001", "socket/file handle not closed on all paths (incl. exceptions)"),
    )

    def check_project(self, graph: CallGraph) -> Iterable[Finding]:
        for fi in graph.functions.values():
            ctx = graph.context_for(fi.path)
            if ctx is None or not any(ctx.in_package(*p) for p in _PACKAGES):
                continue
            yield from self._check_function(fi)

    def _check_function(self, fi: FunctionInfo) -> Iterable[Finding]:
        by_var, discarded = _acquisitions(fi.node)
        for call in discarded:
            yield Finding(
                rule="RES001",
                path=fi.path,
                line=call.lineno,
                col=call.col_offset,
                message=(
                    f"'{dotted_name(call.func)}(...)' result discarded — the "
                    f"handle can never be closed; bind it and close it, or use 'with'"
                ),
            )
        if not by_var:
            return
        cfg = build_cfg(fi.node)
        for var, stmts in by_var.items():
            if _escapes(fi.node, var, stmts):
                continue
            effects = {
                nid: _stmt_effect(n.stmt, n.role, var) for nid, n in cfg.nodes.items()
            }
            acquire_nodes: Set[int] = {
                nid for nid, n in cfg.nodes.items()
                if n.stmt in stmts and n.role == "stmt"
            }

            def transfer(nid: int, st: bool) -> bool:
                eff = effects.get(nid)
                if eff == "acquire":
                    return True
                if eff in ("close", "drop"):
                    return False
                return st

            def exc_transfer(nid: int, st: bool) -> bool:
                if nid in acquire_nodes:
                    return st  # the call raised — the binding never happened
                return transfer(nid, st)

            states = solve_forward(
                cfg, init=False, bottom=False,
                transfer=transfer, join=lambda a, b: a or b,
                exc_transfer=exc_transfer,
            )
            exit_leak = states.get(EXIT, False)
            raise_leak = states.get(RAISE, False)
            if not exit_leak and not raise_leak:
                continue
            paths = {
                (True, True): "on normal return and exception paths",
                (True, False): "on a normal return path",
                (False, True): "on an exception path",
            }[(exit_leak, raise_leak)]
            first = stmts[0]
            yield Finding(
                rule="RES001",
                path=fi.path,
                line=first.lineno,
                col=first.col_offset,
                message=(
                    f"resource '{var}' acquired here may never be closed "
                    f"{paths}; close it in a finally or use 'with'"
                ),
            )
