"""Static lock-acquisition-order graph + LOCK001, the runtime witness's twin.

:mod:`repro.analysis.lockwitness` records, per run, an edge ``A → B``
whenever a thread acquires lock-role ``B`` while holding role ``A`` —
but only for schedules that actually executed.  This module derives the
same graph *statically*: lock roles come from ``named_lock("role")`` /
``named_condition("role")`` creation sites (including the
``field(default_factory=partial(named_lock, "role"))`` dataclass form),
``with <lock>:`` statements are resolved to roles through the class
attribute table (MRO-aware), locals, and module globals, and nested
acquisitions — directly nested ``with`` blocks *and* calls whose callee
transitively acquires a lock, via the call-graph summary fixpoint —
become edges annotated with the witnessing call chain.

* A cycle in the static graph alone is a **LOCK001** finding.
* :func:`compare_with_runtime` merges the static graph with a witness
  :func:`~repro.analysis.lockwitness.report`: an edge only one side can
  see is reported informatively (closures and dynamic dispatch hide
  edges from the static side; unexecuted schedules hide them from the
  runtime side), and a cycle that only the *union* exhibits is the
  silent-gap case the cross-check exists for — each side's graph is
  acyclic, the real system is not.

Locks acquired inside nested ``def``/``lambda`` bodies are attributed to
nobody (the closure runs on another thread); a ``with`` over a lock-ish
name that resolves to no known role becomes a ``?name`` node — part of
the static graph, excluded from the runtime comparison.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, iter_scope
from .dataflow import ChainFact, solve_summaries
from .findings import Finding
from .interproc import _walk_with_locks, format_chain
from .rules import LOCK_NAME_RE
from .visitor import ProjectRule, dotted_name

_FACTORIES = {"named_lock", "named_condition"}


def _terminal(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def find_role(expr: ast.AST) -> Optional[str]:
    """The witness role a value expression creates, if any.

    Covers ``[lockwitness.]named_lock("r")``, ``named_condition("r")``,
    and the deferred ``partial(named_lock, "r")`` form (wherever it
    appears in the expression, e.g. under ``field(default_factory=...)``).
    """
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        term = _terminal(dotted_name(node.func))
        if term in _FACTORIES and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        if term == "partial" and len(node.args) >= 2:
            if _terminal(dotted_name(node.args[0])) in _FACTORIES:
                role_arg = node.args[1]
                if isinstance(role_arg, ast.Constant) and isinstance(role_arg.value, str):
                    return role_arg.value
    return None


class _RoleTable:
    """Where each named lock lives: class attributes, locals, globals."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        #: ("module:Class", attr) → role
        self.class_attrs: Dict[Tuple[str, str], str] = {}
        #: (function qualname, local name) → role
        self.locals: Dict[Tuple[str, str], str] = {}
        #: (module, global name) → role
        self.globals: Dict[Tuple[str, str], str] = {}
        self._scan()

    def _scan(self) -> None:
        for idx in self.graph.modules.values():
            for node in idx.ctx.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    role = find_role(node.value)
                    if isinstance(tgt, ast.Name) and role:
                        self.globals[(idx.name, tgt.id)] = role
        for cinfo in self.graph.classes.values():
            for item in cinfo.node.body:
                if isinstance(item, (ast.Assign, ast.AnnAssign)):
                    value = item.value
                    tgt = item.targets[0] if isinstance(item, ast.Assign) else item.target
                    if value is not None and isinstance(tgt, ast.Name):
                        role = find_role(value)
                        if role:
                            self.class_attrs[(cinfo.qualname, tgt.id)] = role
        for fi in self.graph.functions.values():
            for node in iter_scope(fi.node):
                if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                    continue
                tgt = node.targets[0]
                role = find_role(node.value)
                if role is None:
                    continue
                if isinstance(tgt, ast.Name):
                    self.locals[(fi.qualname, tgt.id)] = role
                elif (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                    and fi.cls
                ):
                    self.class_attrs[(fi.cls, tgt.attr)] = role

    def role_for(self, lock_name: str, fi: FunctionInfo) -> str:
        """Role of a ``with <lock_name>:`` inside ``fi``; ``?name`` when
        the creation site is not statically known."""
        parts = lock_name.split(".")
        if parts[0] == "self" and len(parts) == 2 and fi.cls:
            cinfo = self.graph.classes.get(fi.cls)
            if cinfo is not None:
                for c in self.graph.mro(cinfo):
                    role = self.class_attrs.get((c.qualname, parts[1]))
                    if role:
                        return role
        if len(parts) == 1:
            role = self.locals.get((fi.qualname, lock_name))
            if role:
                return role
            role = self.globals.get((fi.module, lock_name))
            if role:
                return role
        return f"?{_terminal(lock_name)}"


def _acquired_summaries(
    graph: CallGraph, roles: _RoleTable
) -> Dict[str, Dict[str, ChainFact]]:
    """Per-function: every role it (transitively) acquires, with chain."""
    def direct(qn: str) -> Dict[str, ChainFact]:
        fi = graph.functions[qn]
        out: Dict[str, ChainFact] = {}
        for node, _held in _walk_with_locks(fi.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                name = dotted_name(item.context_expr)
                if not name:
                    continue
                if not LOCK_NAME_RE.search(_terminal(name)):
                    continue
                role = roles.role_for(name, fi)
                out.setdefault(role, ((f"with {name}", fi.path, node.lineno),))
        return out

    callers: Dict[str, List[Tuple[str, Tuple[str, str, int]]]] = {}
    for caller, sites in graph.calls.items():
        cpath = graph.functions[caller].path
        for site in sites:
            for callee in site.callees:
                cfi = graph.functions.get(callee)
                display = cfi.display if cfi else callee
                callers.setdefault(callee, []).append(
                    (caller, (display, cpath, site.line))
                )
    cache = {qn: direct(qn) for qn in graph.functions}
    return solve_summaries(
        graph.functions.keys(), lambda g: callers.get(g, ()), lambda f: cache[f]
    )


def build_static_lock_graph(graph: CallGraph) -> dict:
    """``{"edges": [...], "cycles": [...], "roles": [...]}`` mirroring the
    shape of :func:`repro.analysis.lockwitness.report`."""
    roles = _RoleTable(graph)
    summaries = _acquired_summaries(graph, roles)
    #: (from_role, to_role) → {"site", "via"} (first witness kept)
    edges: Dict[Tuple[str, str], dict] = {}

    def add_edge(a: str, b: str, site: str, via: str) -> None:
        if a != b:
            edges.setdefault((a, b), {"site": site, "via": via})

    for qn, fi in graph.functions.items():
        site_map = {id(cs.node): cs for cs in graph.callees_of(qn)}
        for node, held in _walk_with_locks(fi.node):
            if not held or not isinstance(node, (ast.With, ast.AsyncWith, ast.Call)):
                continue
            held_roles = [roles.role_for(name, fi) for name, _ in held]
            site = f"{fi.path}:{node.lineno}"
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    name = dotted_name(item.context_expr)
                    if not name:
                        continue
                    if not LOCK_NAME_RE.search(_terminal(name)):
                        continue
                    inner = roles.role_for(name, fi)
                    for h in held_roles:
                        add_edge(h, inner, site, f"with {name}")
            elif isinstance(node, ast.Call):
                cs = site_map.get(id(node))
                if cs is None:
                    continue
                for callee in cs.callees:
                    for role, chain in summaries.get(callee, {}).items():
                        for h in held_roles:
                            add_edge(h, role, site, format_chain(chain))

    all_roles: Set[str] = set()
    for a, b in edges:
        all_roles.update((a, b))
    return {
        "edges": [
            {"from": a, "to": b, **info} for (a, b), info in sorted(edges.items())
        ],
        "cycles": find_sccs({k: {b for (a, b) in edges if a == k} for k in all_roles}),
        "roles": sorted(all_roles),
    }


def find_sccs(adj: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly-connected components with >1 node (iterative Tarjan),
    sorted — the same cycle shape :mod:`lockwitness` reports."""
    for targets in list(adj.values()):
        for t in targets:
            adj.setdefault(t, set())
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    cycles: List[List[str]] = []
    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj[nxt]))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    cycles.append(sorted(scc))
    return cycles


def compare_with_runtime(static: dict, runtime: dict) -> dict:
    """Cross-check the static graph against a lockwitness report.

    Unnamed (``?``-prefixed) static roles are excluded — the runtime
    witness cannot see them.  Returns edge diffs plus ``combined_cycles``:
    cycles present in the union graph but in neither side alone — the
    case where each view is individually acyclic and the system is not.
    """
    static_edges = {
        (e["from"], e["to"])
        for e in static["edges"]
        if not e["from"].startswith("?") and not e["to"].startswith("?")
    }
    runtime_edges = {(e["from"], e["to"]) for e in runtime.get("edges", ())}
    union: Dict[str, Set[str]] = {}
    for a, b in static_edges | runtime_edges:
        union.setdefault(a, set()).add(b)
    union_cycles = find_sccs(union)
    static_cycles = [c for c in static.get("cycles", ()) if not any(r.startswith("?") for r in c)]
    runtime_cycles = [list(c) for c in runtime.get("cycles", ())]
    known = [sorted(c) for c in (*static_cycles, *runtime_cycles)]
    return {
        "static_only_edges": sorted(static_edges - runtime_edges),
        "runtime_only_edges": sorted(runtime_edges - static_edges),
        "static_cycles": static_cycles,
        "runtime_cycles": runtime_cycles,
        "combined_cycles": [c for c in union_cycles if sorted(c) not in known],
    }


class LockOrderRule(ProjectRule):
    rules = (
        ("LOCK001", "cycle in the static lock-acquisition-order graph"),
    )

    def check_project(self, graph: CallGraph) -> Iterable[Finding]:
        static = build_static_lock_graph(graph)
        for cycle in static["cycles"]:
            involved = [
                e
                for e in static["edges"]
                if e["from"] in cycle and e["to"] in cycle
            ]
            detail = "; ".join(
                f"{e['from']} -> {e['to']} (at {e['site']} via {e['via']})"
                for e in involved
            )
            first = involved[0] if involved else None
            path, _, line = (
                first["site"].rpartition(":") if first else ("<unknown>", ":", "0")
            )
            yield Finding(
                rule="LOCK001",
                path=path,
                line=int(line) if line.isdigit() else 0,
                message=(
                    f"static lock-order cycle {' <-> '.join(cycle)}: {detail} — "
                    f"a schedule interleaving these acquisitions deadlocks even "
                    f"if no test has hit it yet"
                ),
            )
