"""Finding and suppression primitives shared by the lint engine and rules.

A :class:`Finding` is one (rule, file, line) diagnostic.  Suppressions
are inline comments of the form::

    # ftlint: disable=RT001 -- justification for why this is safe

The justification after ``--`` is *mandatory*: a suppression without one
still silences its target but surfaces as a ``SUP001`` finding, so the
tree can never accumulate unexplained escape hatches.  A suppression
whose rule never fires on that line is reported as ``SUP002`` (stale
suppressions hide real regressions when the code under them changes).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Finding", "Suppression", "scan_suppressions", "SUPPRESS_RE"]

#: matches the ftlint marker inside a *comment token* (never string bodies)
SUPPRESS_RE = re.compile(
    r"#\s*ftlint:\s*disable=(?P<rules>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"(?:\s*--\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: RULE message``."""

    rule: str
    path: str
    line: int
    message: str
    col: int = 0
    #: extra lines (e.g. the enclosing ``with`` statement) where a
    #: suppression comment also silences this finding; not serialised
    anchor_lines: tuple = field(default=(), compare=False)

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One ``# ftlint: disable=...`` comment and its usage bookkeeping."""

    line: int
    rules: tuple[str, ...]
    justification: str | None
    used_rules: set = field(default_factory=set)

    def covers(self, rule: str) -> bool:
        return rule in self.rules

    def mark_used(self, rule: str) -> None:
        self.used_rules.add(rule)

    @property
    def unused_rules(self) -> tuple[str, ...]:
        return tuple(r for r in self.rules if r not in self.used_rules)


def scan_suppressions(source: str) -> dict[int, Suppression]:
    """Map line → :class:`Suppression` from real COMMENT tokens only.

    Tokenising (rather than regexing raw lines) keeps ftlint markers
    inside string literals — e.g. the linter's own fixture-snippet tests
    — from being misread as live suppressions.
    """
    out: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = SUPPRESS_RE.search(tok.string)
            if not m:
                continue
            rules = tuple(r.strip() for r in m.group("rules").split(","))
            why = m.group("why")
            out[tok.start[0]] = Suppression(
                line=tok.start[0], rules=rules, justification=why
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the parse error is reported separately by the engine
    return out
