"""Project-specific lint rules.

==========  =====================================================================
RT001       blocking call (socket/file I/O, sleep, join, queue get/put) inside
            a ``with <lock>:`` body — the stall amplifier behind most of the
            runtime's past latency cliffs
RT002       ``threading.Thread(...)`` without ``name=`` and ``daemon=`` — the
            static counterpart of the conftest leaked-thread gate, which can
            only blame threads it can identify
SIM001      wall-clock or unseeded randomness inside the determinism-contracted
            packages (``repro.sim``, ``repro.dl``, ``repro.experiments``)
EXC001      a thread target that swallows broad exceptions silently (a worker
            dying with ``except Exception: pass`` is invisible until the queue
            it served backs up)
CNT001      counter-registry drift (see :mod:`repro.analysis.registry`)
SUP001      ftlint suppression without a ``-- justification``
SUP002      ftlint suppression whose rule never fires on that line
==========  =====================================================================

RT001 heuristics (documented so suppressions can argue against them):
a *lock expression* is any ``with X:`` where the dotted name of ``X``
ends in something matching ``lock|cond|mutex`` (case-insensitive).
``cond.wait()`` on the very condition being held is the correct
release-and-wait idiom and is never flagged.  Nested ``def``/``lambda``
bodies inside the ``with`` are skipped — defining a function under a
lock does not run it under the lock.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from .registry import CounterRegistryRule
from .visitor import RuleVisitor, dotted_name

__all__ = [
    "LockHeldWhileBlockingRule",
    "UntrackedThreadRule",
    "DeterminismRule",
    "SwallowedThreadExceptionRule",
    "ALL_RULES",
    "blocking_reason",
    "LOCK_NAME_RE",
]

LOCK_NAME_RE = re.compile(r"(lock|cond|mutex)$", re.IGNORECASE)
_LOCK_NAME_RE = LOCK_NAME_RE
_THREADISH_RE = re.compile(r"(^t\d*$|^th$|thread|worker|proc|monkey)", re.IGNORECASE)
_QUEUEISH_RE = re.compile(r"(^q\d*$|queue|_q$|jobs|work$)", re.IGNORECASE)

#: attribute calls that block regardless of receiver
_SOCKET_ATTRS = {"recv", "recv_into", "recvfrom", "sendall", "send", "accept", "connect", "connect_ex"}
_FILE_IO_ATTRS = {
    "read_bytes", "write_bytes", "read_text", "write_text",
    "unlink", "replace", "rename", "stat", "iterdir", "mkdir", "rmdir",
    "rmtree", "flush", "fsync", "touch",
}
#: bare-name calls that block (project protocol helpers included: they do
#: full-frame socket I/O)
_BLOCKING_NAME_CALLS = {"open", "sleep", "send_message", "recv_message"}

_BROAD_EXC = {"Exception", "BaseException"}


def _terminal(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


def blocking_reason(node: ast.Call, held_locks: tuple = ()) -> Optional[str]:
    """Why this call blocks, or None.  Shared by RT001 (direct) and the
    RT003 summary builder; ``held_locks`` are the dotted names of locks
    held at the call, used only for the cond.wait-on-held exemption."""
    func = node.func
    name = dotted_name(func)
    if isinstance(func, ast.Name) and func.id in _BLOCKING_NAME_CALLS:
        return f"blocking call '{func.id}()'"
    if not isinstance(func, ast.Attribute):
        return None
    attr = func.attr
    recv = dotted_name(func.value)
    recv_term = _terminal(recv)
    if name == "time.sleep" or attr == "sleep":
        return "'time.sleep()'"
    if attr == "wait":
        # cond.wait() on the held condition releases it — the idiom, not a bug
        if recv in held_locks:
            return None
        return f"'{recv or '?'}.wait()'"
    if attr in _SOCKET_ATTRS:
        return f"socket I/O '{recv or '?'}.{attr}()'"
    if attr in _FILE_IO_ATTRS:
        return f"file I/O '{recv or '?'}.{attr}()'"
    if attr == "join" and _THREADISH_RE.search(recv_term):
        return f"thread join '{recv}.join()'"
    if attr in ("get", "put") and _QUEUEISH_RE.search(recv_term):
        if _has_false_block_kwarg(node):
            return None
        return f"blocking queue op '{recv}.{attr}()'"
    return None


def _has_false_block_kwarg(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "block" and isinstance(kw.value, ast.Constant) and kw.value.value is False:
            return True
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True
    return False


class LockHeldWhileBlockingRule(RuleVisitor):
    rule_id = "RT001"
    description = "blocking call while holding a lock"

    def check(self, ctx):
        self._lock_stack: list[tuple[str, int]] = []
        return super().check(ctx)

    # Nested function bodies do not execute under the enclosing lock.
    def _visit_scope(self, node: ast.AST) -> None:
        saved, self._lock_stack = self._lock_stack, []
        self.generic_visit(node)
        self._lock_stack = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            name = dotted_name(item.context_expr)
            if name and _LOCK_NAME_RE.search(_terminal(name)):
                self._lock_stack.append((name, node.lineno))
                pushed += 1
        self.generic_visit(node)
        for _ in range(pushed):
            self._lock_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if self._lock_stack:
            held = tuple(name for name, _ in self._lock_stack)
            reason = blocking_reason(node, held)
            if reason:
                lock_name, lock_line = self._lock_stack[-1]
                self.report(
                    node,
                    f"{reason} while holding lock '{lock_name}' "
                    f"(acquired at line {lock_line}); move the blocking call "
                    f"out of the critical section",
                    anchors=(lock_line,),
                )
        self.generic_visit(node)


class UntrackedThreadRule(RuleVisitor):
    rule_id = "RT002"
    description = "thread spawned without name= and daemon="

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("threading.Thread", "Thread"):
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            missing = [k for k in ("name", "daemon") if k not in kwargs]
            if missing:
                self.report(
                    node,
                    f"threading.Thread(...) without {', '.join(f'{m}=' for m in missing)} — "
                    f"unnamed/undaemonised threads defeat the leaked-thread gate",
                )
        self.generic_visit(node)


class DeterminismRule(RuleVisitor):
    rule_id = "SIM001"
    description = "wall clock / unseeded randomness in a determinism-contracted package"

    _PACKAGES = (("repro", "sim"), ("repro", "dl"), ("repro", "experiments"))
    #: numpy.random attributes that are deterministic-safe to *call*
    _NP_RANDOM_OK = {"SeedSequence", "Generator", "PCG64", "Philox"}

    def check(self, ctx):
        if not any(ctx.in_package(*parts) for parts in self._PACKAGES):
            return iter(())
        return super().check(ctx)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in ("time.time", "time.time_ns"):
            self.report(node, f"'{name}()' — use the simulation clock or perf counters; "
                              f"wall time makes runs irreproducible")
        elif name and (name.startswith("np.random.") or name.startswith("numpy.random.")):
            attr = _terminal(name)
            if attr == "default_rng":
                if not node.args and not node.keywords:
                    self.report(node, "'default_rng()' without a seed — every stochastic "
                                      "component must draw from a seeded stream")
            elif attr not in self._NP_RANDOM_OK:
                self.report(node, f"legacy global-state RNG '{name}()' — use a seeded "
                                  f"np.random.Generator (see repro.sim.rng)")
        elif name and name.startswith("random."):
            self.report(node, f"stdlib global RNG '{name}()' — use a seeded "
                              f"np.random.Generator (see repro.sim.rng)")
        self.generic_visit(node)


class SwallowedThreadExceptionRule(RuleVisitor):
    rule_id = "EXC001"
    description = "broad exception silently swallowed in a thread target"

    def check(self, ctx):
        self._targets = self._thread_targets(ctx.tree)
        self._func_stack: list[str] = []
        return super().check(ctx)

    @staticmethod
    def _thread_targets(tree: ast.Module) -> set[str]:
        """Names of functions passed as ``target=`` to threading.Thread in
        this module (the functions whose exceptions vanish with the thread)."""
        targets: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) not in ("threading.Thread", "Thread"):
                continue
            for kw in node.keywords:
                if kw.arg == "target":
                    name = dotted_name(kw.value)
                    if name:
                        targets.add(_terminal(name))
        return targets

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._in_thread_target() and self._is_broad(node.type) and self._is_silent(node.body):
            caught = dotted_name(node.type) if node.type else "everything (bare except)"
            self.report(
                node,
                f"thread target '{self._func_stack[-1]}' swallows {caught} silently — "
                f"a dead worker is invisible; record the error or re-raise",
            )
        self.generic_visit(node)

    def _in_thread_target(self) -> bool:
        return any(f in self._targets for f in self._func_stack)

    @staticmethod
    def _is_broad(exc_type: Optional[ast.expr]) -> bool:
        if exc_type is None:
            return True
        names = exc_type.elts if isinstance(exc_type, ast.Tuple) else [exc_type]
        return any(_terminal(dotted_name(n)) in _BROAD_EXC for n in names)

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        return all(isinstance(stmt, (ast.Pass, ast.Continue)) for stmt in body)


#: the registry of every shipped rule, id-ordered
ALL_RULES = (
    LockHeldWhileBlockingRule,
    UntrackedThreadRule,
    DeterminismRule,
    SwallowedThreadExceptionRule,
    CounterRegistryRule,
)
