"""Visitor framework: per-module context and the rule/visitor base classes.

Every rule is a :class:`Rule` subclass with a unique ``rule_id``.  AST
rules subclass :class:`RuleVisitor` (an :class:`ast.NodeVisitor` that
walks one module and calls :meth:`RuleVisitor.report`); whole-module
rules (cross-checking constants against class definitions, like CNT001)
override :meth:`Rule.check` directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from .findings import Finding, Suppression, scan_suppressions

__all__ = ["ModuleContext", "Rule", "RuleVisitor", "ProjectRule", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: str  # as given on the command line / repo-relative, posix slashes
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression]

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=scan_suppressions(source),
        )

    def in_package(self, *parts: str) -> bool:
        """True when this file lives under the given package path, e.g.
        ``ctx.in_package("repro", "sim")`` for anything in repro/sim/."""
        needle = "/" + "/".join(parts) + "/"
        return needle in "/" + self.path

    def suppression_for(self, rule: str, lines: Iterable[int]) -> Optional[Suppression]:
        for line in lines:
            sup = self.suppressions.get(line)
            if sup is not None and sup.covers(rule):
                return sup
        return None


class Rule:
    """Base class: one lint rule with a stable id and a description."""

    rule_id: str = ""
    description: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str, anchors: tuple = ()
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            anchor_lines=tuple(anchors),
        )


class ProjectRule:
    """A rule family that needs the whole project, not one module.

    ``check_project`` receives the shared
    :class:`~repro.analysis.callgraph.CallGraph` (which carries every
    parsed :class:`ModuleContext`) and yields findings across any file.
    ``rules`` is the catalogue of (rule_id, description) pairs this
    family can emit, for ``--list-rules``.
    """

    rules: tuple = ()

    def check_project(self, graph) -> Iterable[Finding]:
        raise NotImplementedError


class RuleVisitor(Rule, ast.NodeVisitor):
    """AST-walking rule: collect findings during a single :meth:`visit`."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        self.ctx = ctx
        self._found: list[Finding] = []
        self.visit(ctx.tree)
        yield from self._found

    def report(self, node: ast.AST, message: str, anchors: tuple = ()) -> None:
        self._found.append(self.finding(self.ctx, node, message, anchors))
