"""RPC000–RPC004 — client/server protocol conformance.

The runtime's wire contract lives in two places that evolve
independently: senders (``Message.request(op, **fields)`` plus the
response fields the caller then reads) and handlers (``msg.op ==
OP_X`` dispatch branches plus the ``ok_response``/``error_response``
constructions they return).  HVAC has the same split with frozen
dataclasses (``ReadRequest``/``ReadResponse``) over the simulated RPC
fabric.  This checker extracts both sides and cross-checks them:

==========  ====================================================================
RPC000      an op that is a string literal, or an ``OP_*`` name that does not
            exist in the protocol constants (string-literal drift); also any
            malformed ``BIN_OPS`` binary-table entry — a string-literal or
            unknown key, a non-integer wire code, a code outside the 8-bit
            header field, or two ops sharing one code
RPC001      an op sent by a client but matched by no handler branch; also a
            ``BIN_OPS`` entry with no handler branch (the binary codec would
            decode frames nothing can dispatch)
RPC002      a handler branch for an op no client ever sends; also a
            ``BIN_OPS`` entry no client sends (dead binary wire surface)
RPC003      a request field read by a handler but supplied by no sender of that
            op; for HVAC, a request attribute/constructor field that does not
            exist on the dataclass
RPC004      a response field the client consumes but the server does not set:
            a *strict* read (``resp.header["f"]``) must be set on **every** ok
            reply path of that op; a *soft* read (``.get("f")``) must be set on
            at least one reply path; for HVAC, a response attribute that does
            not exist on the dataclass
==========  ====================================================================

Extraction facts the checks rely on (kept in sync with
``repro.runtime.protocol``): ``ok_response`` implies header field
``status``; ``error_response`` implies ``status`` and ``reason``;
``send_message`` always adds ``payload_len``; a ``**splat`` in a reply
construction is a wildcard that satisfies any field on that path, and
``dict(resp.header)`` on the client side is a wildcard consumption that
asserts nothing.  Response reads are attributed to every op the *same
function* sends — a function multiplexing several ops over one response
variable should be split (or suppressed with a justification).

Scope gating keeps fixtures honest: senders/handlers are only extracted
from modules under ``repro/runtime`` and ``repro/hvac``, and the
sent-vs-handled checks (RPC001/RPC002) each require *both* sides to be
present in the linted set, so linting a lone client module does not
declare every op unhandled.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo, _ModuleIndex
from .findings import Finding
from .visitor import ProjectRule, dotted_name

#: header fields the framing layer sets on every message
_FRAMING_FIELDS = frozenset({"payload_len"})
_OK_IMPLICIT = frozenset({"status"}) | _FRAMING_FIELDS
_ERROR_IMPLICIT = frozenset({"status", "reason"}) | _FRAMING_FIELDS


# --------------------------------------------------------------------------- facts
@dataclass
class RequestSite:
    op: Optional[str]  # resolved op value, None when dynamic
    op_text: str
    fields: Set[str]
    wildcard: bool
    path: str
    line: int
    func: str


@dataclass
class ReplySite:
    kind: str  # "ok" | "error"
    fields: Set[str]
    wildcard: bool
    path: str
    line: int


@dataclass
class HandlerBranch:
    op: Optional[str]
    op_text: str
    path: str
    line: int
    #: (field, strict, line) request-header reads inside the branch
    reads: List[Tuple[str, bool, int]] = dc_field(default_factory=list)
    replies: List[ReplySite] = dc_field(default_factory=list)


@dataclass
class Consumption:
    """Response-header reads of one sender function."""

    func: str
    ops: Set[str]
    #: (field, strict, line)
    reads: List[Tuple[str, bool, int]]
    wildcard: bool
    path: str


def _str_const(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _terminal(name: Optional[str]) -> str:
    return name.rsplit(".", 1)[-1] if name else ""


class _OpResolver:
    """OP_* constants of the stack plus RPC000 drift findings."""

    def __init__(self, modules: List[_ModuleIndex]):
        self.constants: Dict[str, str] = {}
        for idx in modules:
            for node in idx.ctx.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    val = _str_const(node.value)
                    if (
                        isinstance(tgt, ast.Name)
                        and tgt.id.startswith("OP_")
                        and val is not None
                    ):
                        self.constants[tgt.id] = val
        self.findings: List[Finding] = []

    def resolve(self, expr: ast.expr, path: str, where: str) -> Tuple[Optional[str], str]:
        """(op value or None, source text of the op expression)."""
        lit = _str_const(expr)
        if lit is not None:
            known = next((k for k, v in self.constants.items() if v == lit), None)
            hint = (
                f"use the protocol constant {known} instead"
                if known
                else "no OP_* constant has this value — define one in repro.runtime.protocol"
            )
            self.findings.append(
                Finding(
                    rule="RPC000",
                    path=path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    message=f"string-literal op {lit!r} in {where}; {hint}",
                )
            )
            return lit, repr(lit)
        name = dotted_name(expr)
        term = _terminal(name)
        if term in self.constants:
            return self.constants[term], term
        if term.startswith("OP_") and self.constants:
            self.findings.append(
                Finding(
                    rule="RPC000",
                    path=path,
                    line=expr.lineno,
                    col=expr.col_offset,
                    message=f"unknown op constant '{term}' in {where} — not defined "
                    f"in the protocol module (known: {sorted(self.constants)})",
                )
            )
        return None, term or "<dynamic>"


class _BinOpTable:
    """The ``BIN_OPS = {OP_X: code, ...}`` binary op table of the protocol
    module: which ops may ride the fixed binary header, and under which
    8-bit wire code.  Malformed entries are RPC000 drift — a bad table
    silently desynchronises every binary peer."""

    def __init__(self, modules: List[_ModuleIndex], ops: _OpResolver):
        #: op value → wire code, for well-formed entries only
        self.codes: Dict[str, int] = {}
        #: op value → table-entry line, for precise findings downstream
        self.lines: Dict[str, int] = {}
        self.site: Optional[Tuple[str, int]] = None
        for idx in modules:
            for node in idx.ctx.tree.body:
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == "BIN_OPS"
                    and isinstance(node.value, ast.Dict)
                ):
                    self._parse(node.value, idx.ctx.path, ops)
                    self.site = (idx.ctx.path, node.lineno)

    def _parse(self, table: ast.Dict, path: str, ops: _OpResolver) -> None:
        seen_codes: Dict[int, str] = {}
        for key, value in zip(table.keys, table.values):
            if key is None:  # **splat: nothing static to check
                continue
            op, op_text = ops.resolve(key, path, "BIN_OPS table")
            code = (
                value.value
                if isinstance(value, ast.Constant) and type(value.value) is int
                else None
            )
            if code is None:
                ops.findings.append(
                    Finding(
                        rule="RPC000",
                        path=path,
                        line=value.lineno,
                        col=value.col_offset,
                        message=(
                            f"BIN_OPS entry for {op_text} has a non-integer wire "
                            f"code — the binary header packs it as one byte"
                        ),
                    )
                )
                continue
            if not 1 <= code <= 0xFF:
                ops.findings.append(
                    Finding(
                        rule="RPC000",
                        path=path,
                        line=value.lineno,
                        col=value.col_offset,
                        message=(
                            f"BIN_OPS code {code} for {op_text} does not fit the "
                            f"8-bit op field (must be 1..255)"
                        ),
                    )
                )
                continue
            if code in seen_codes:
                ops.findings.append(
                    Finding(
                        rule="RPC000",
                        path=path,
                        line=value.lineno,
                        col=value.col_offset,
                        message=(
                            f"BIN_OPS code {code} for {op_text} already names "
                            f"{seen_codes[code]!r} — decoders cannot tell the "
                            f"two ops apart"
                        ),
                    )
                )
                continue
            seen_codes[code] = op if op is not None else op_text
            if op is not None:
                self.codes[op] = code
                self.lines[op] = key.lineno


# ----------------------------------------------------------------- runtime stack
def _is_message_call(call: ast.Call, method: str) -> bool:
    name = dotted_name(call.func)
    if not name:
        return False
    parts = name.split(".")
    return len(parts) >= 2 and parts[-1] == method and parts[-2] == "Message"


def _reply_site(call: ast.Call, path: str) -> Optional[ReplySite]:
    if _is_message_call(call, "ok_response"):
        fields = {kw.arg for kw in call.keywords if kw.arg and kw.arg != "payload"}
        return ReplySite(
            kind="ok",
            fields=fields | set(_OK_IMPLICIT),
            wildcard=any(kw.arg is None for kw in call.keywords),
            path=path,
            line=call.lineno,
        )
    if _is_message_call(call, "error_response"):
        fields = {kw.arg for kw in call.keywords if kw.arg}
        return ReplySite(
            kind="error",
            fields=fields | set(_ERROR_IMPLICIT),
            wildcard=any(kw.arg is None for kw in call.keywords),
            path=path,
            line=call.lineno,
        )
    return None


def _header_reads(root: ast.AST, receivers: Set[str], aliases: Set[str]):
    """Yield ``(field, strict, line)`` for header reads under ``root``.

    ``receivers`` are message-object names (reads look like
    ``recv.header.get(...)`` / ``recv.header[...]``); ``aliases`` are
    names already bound to a header dict (``h.get(...)`` / ``h[...]``).
    """
    def _is_header_of(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "header":
            recv = dotted_name(node.value)
            return recv in receivers
        return dotted_name(node) in aliases if aliases else False

    for node in ast.walk(root):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr == "get" and _is_header_of(node.func.value) and node.args:
                f = _str_const(node.args[0])
                if f is not None:
                    yield f, False, node.lineno
        elif isinstance(node, ast.Subscript) and _is_header_of(node.value):
            f = _str_const(node.slice)
            if f is not None and isinstance(node.ctx, ast.Load):
                yield f, True, node.lineno


def _header_aliases(func_node: ast.AST, receivers: Set[str]) -> Set[str]:
    """Names bound via ``h = <recv>.header`` anywhere in the function."""
    aliases: Set[str] = set()
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "header"
            and dotted_name(node.value.value) in receivers
        ):
            aliases.add(node.targets[0].id)
    return aliases


def _wildcard_consumption(func_node: ast.AST, receivers: Set[str], aliases: Set[str]) -> bool:
    """``dict(resp.header)`` / ``dict(h)`` — the caller takes everything."""
    for node in ast.walk(func_node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "dict"
            and len(node.args) == 1
        ):
            arg = node.args[0]
            if isinstance(arg, ast.Attribute) and arg.attr == "header":
                if dotted_name(arg.value) in receivers:
                    return True
            elif dotted_name(arg) in aliases:
                return True
    return False


class _RuntimeStack:
    """Extracted sender/handler facts for the Message-over-TCP stack."""

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self.modules = [
            idx
            for idx in graph.modules.values()
            if idx.ctx.in_package("repro", "runtime")
        ]
        paths = {idx.ctx.path for idx in self.modules}
        self.functions = [fi for fi in graph.functions.values() if fi.path in paths]
        self.ops = _OpResolver(self.modules)
        self.bin_table = _BinOpTable(self.modules, self.ops)
        self.requests: List[RequestSite] = []
        self.branches: List[HandlerBranch] = []
        self.consumptions: List[Consumption] = []
        for fi in self.functions:
            self._extract_requests(fi)
            self._extract_branches(fi)
        # consumption extraction needs to know which functions send
        senders = {r.func for r in self.requests}
        for fi in self.functions:
            if fi.qualname in senders:
                self._extract_consumption(fi)

    def _extract_requests(self, fi: FunctionInfo) -> None:
        for node in ast.walk(fi.node):
            if not (isinstance(node, ast.Call) and _is_message_call(node, "request")):
                continue
            op_expr: Optional[ast.expr] = node.args[0] if node.args else None
            if op_expr is None:
                op_expr = next(
                    (kw.value for kw in node.keywords if kw.arg == "op"), None
                )
            if op_expr is None:
                continue
            op, op_text = self.ops.resolve(op_expr, fi.path, "Message.request")
            self.requests.append(
                RequestSite(
                    op=op,
                    op_text=op_text,
                    fields={kw.arg for kw in node.keywords if kw.arg and kw.arg != "op"},
                    wildcard=any(kw.arg is None for kw in node.keywords),
                    path=fi.path,
                    line=node.lineno,
                    func=fi.qualname,
                )
            )

    # -- handler side ------------------------------------------------------------
    def _extract_branches(self, fi: FunctionInfo) -> None:
        params = {
            a.arg
            for a in [
                *fi.node.args.posonlyargs,  # type: ignore[attr-defined]
                *fi.node.args.args,  # type: ignore[attr-defined]
                *fi.node.args.kwonlyargs,  # type: ignore[attr-defined]
            ]
        }
        for node in ast.walk(fi.node):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            if not (
                isinstance(test, ast.Compare)
                and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and isinstance(test.left, ast.Attribute)
                and test.left.attr == "op"
            ):
                continue
            recv = dotted_name(test.left.value)
            if recv not in params:
                continue
            op, op_text = self.ops.resolve(
                test.comparators[0], fi.path, "handler dispatch"
            )
            branch = HandlerBranch(
                op=op, op_text=op_text, path=fi.path, line=node.lineno
            )
            body = ast.Module(body=node.body, type_ignores=[])
            branch.reads.extend(_header_reads(body, {recv}, set()))
            self._collect_replies(fi, node.body, branch, visited=set())
            self.branches.append(branch)

    def _collect_replies(
        self,
        fi: FunctionInfo,
        body: List[ast.stmt],
        branch: HandlerBranch,
        visited: Set[str],
    ) -> None:
        """Reply constructions in a branch body, following project-local
        helper calls (``self._read(...)``) transitively."""
        calls_seen: List[ast.Call] = []
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    site = _reply_site(node, fi.path)
                    if site is not None:
                        branch.replies.append(site)
                    else:
                        calls_seen.append(node)
        stack_paths = {idx.ctx.path for idx in self.modules}
        site_map = {id(cs.node): cs for cs in self.graph.callees_of(fi.qualname)}
        for call in calls_seen:
            cs = site_map.get(id(call))
            if cs is None:
                continue
            for callee in cs.callees:
                if callee in visited:
                    continue
                visited.add(callee)
                cfi = self.graph.functions.get(callee)
                if cfi is None or cfi.path not in stack_paths:
                    continue
                self._collect_replies(cfi, cfi.node.body, branch, visited)  # type: ignore[arg-type]

    # -- client side -------------------------------------------------------------
    def _extract_consumption(self, fi: FunctionInfo) -> None:
        ops = {r.op for r in self.requests if r.func == fi.qualname and r.op}
        # any local name can hold the response; restrict to ``X.header``
        # shaped reads so request-construction code stays out
        receivers = {
            dotted_name(n.value)
            for n in ast.walk(fi.node)
            if isinstance(n, ast.Attribute) and n.attr == "header"
        }
        receivers = {r for r in receivers if r}
        aliases = _header_aliases(fi.node, receivers)
        reads = list(_header_reads(fi.node, receivers, aliases))
        wildcard = _wildcard_consumption(fi.node, receivers, aliases)
        if reads or wildcard:
            self.consumptions.append(
                Consumption(
                    func=fi.qualname,
                    ops=ops,
                    reads=reads,
                    wildcard=wildcard,
                    path=fi.path,
                )
            )


# -------------------------------------------------------------------- hvac stack
@dataclass
class _DataclassInfo:
    name: str
    path: str
    line: int
    fields: Set[str]
    #: fields plus properties/methods — anything valid to read
    readable: Set[str]


def _hvac_dataclasses(modules: List[_ModuleIndex]) -> Dict[str, _DataclassInfo]:
    out: Dict[str, _DataclassInfo] = {}
    for idx in modules:
        for node in idx.ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Request") or node.name.endswith("Response")):
                continue
            fields: Set[str] = set()
            readable: Set[str] = set()
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                    fields.add(item.target.id)
                    readable.add(item.target.id)
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    readable.add(item.name)
            out[node.name] = _DataclassInfo(
                name=node.name,
                path=idx.ctx.path,
                line=node.lineno,
                fields=fields,
                readable=readable,
            )
    return out


def _check_hvac(graph: CallGraph) -> Iterable[Finding]:
    modules = [
        idx for idx in graph.modules.values() if idx.ctx.in_package("repro", "hvac")
    ]
    if not modules:
        return
    classes = _hvac_dataclasses(modules)
    if not classes:
        return
    paths = {idx.ctx.path for idx in modules}
    for fi in graph.functions.values():
        if fi.path not in paths:
            continue
        yield from _check_hvac_function(fi, classes)


def _check_hvac_function(
    fi: FunctionInfo, classes: Dict[str, _DataclassInfo]
) -> Iterable[Finding]:
    #: local name → dataclass it is presumed to hold
    var_types: Dict[str, str] = {}
    constructed_requests: List[str] = []
    for node in ast.walk(fi.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            ann = _terminal(dotted_name(node.annotation)) if node.annotation else ""
            if ann in classes:
                var_types[node.target.id] = ann
        elif isinstance(node, ast.Call):
            cname = _terminal(dotted_name(node.func))
            if cname in classes:
                info = classes[cname]
                if cname.endswith("Request"):
                    constructed_requests.append(cname)
                rule = "RPC003" if cname.endswith("Request") else "RPC004"
                for kw in node.keywords:
                    if kw.arg and kw.arg not in info.fields:
                        yield Finding(
                            rule=rule,
                            path=fi.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"constructs {cname} with unknown field "
                                f"'{kw.arg}' — the dataclass at "
                                f"{info.path}:{info.line} defines "
                                f"{sorted(info.fields)}"
                            ),
                        )
    # ``served = result.value`` in a function that built XRequest is
    # presumed to hold the paired XResponse
    for req_name in constructed_requests:
        resp_name = req_name[: -len("Request")] + "Response"
        if resp_name not in classes:
            continue
        for node in ast.walk(fi.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "value"
            ):
                var_types.setdefault(node.targets[0].id, resp_name)
    for node in ast.walk(fi.node):
        if not (isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)):
            continue
        recv = dotted_name(node.value)
        if recv not in var_types:
            continue
        info = classes[var_types[recv]]
        if node.attr not in info.readable:
            rule = "RPC003" if info.name.endswith("Request") else "RPC004"
            yield Finding(
                rule=rule,
                path=fi.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"reads '{recv}.{node.attr}' but {info.name} "
                    f"({info.path}:{info.line}) has no such field — it defines "
                    f"{sorted(info.readable)}"
                ),
            )


# ------------------------------------------------------------------- the rule
class RpcConformanceRule(ProjectRule):
    rules = (
        ("RPC000", "op string-literal drift / unknown OP_* constant"),
        ("RPC001", "op sent by a client but handled by no server branch"),
        ("RPC002", "handler branch for an op no client sends"),
        ("RPC003", "request field read by a handler but supplied by no sender"),
        ("RPC004", "response field consumed by a client but not set on every server reply path"),
    )

    def check_project(self, graph: CallGraph) -> Iterable[Finding]:
        stack = _RuntimeStack(graph)
        yield from stack.ops.findings
        yield from self._check_runtime(stack)
        yield from _check_hvac(graph)

    def _check_runtime(self, stack: _RuntimeStack) -> Iterable[Finding]:
        sent_ops = {r.op for r in stack.requests if r.op}
        handled_ops = {b.op for b in stack.branches if b.op}
        has_senders = bool(stack.requests)
        has_handlers = bool(stack.branches)

        if has_handlers:
            for site in stack.requests:
                if site.op and site.op not in handled_ops:
                    yield Finding(
                        rule="RPC001",
                        path=site.path,
                        line=site.line,
                        message=(
                            f"op {site.op_text} ({site.op!r}) is sent here but no "
                            f"handler dispatch branch matches it — the server will "
                            f"answer 'unknown op'"
                        ),
                    )
        if has_senders:
            for branch in stack.branches:
                if branch.op and branch.op not in sent_ops:
                    yield Finding(
                        rule="RPC002",
                        path=branch.path,
                        line=branch.line,
                        message=(
                            f"handler branch for op {branch.op_text} "
                            f"({branch.op!r}) but no client code ever sends it — "
                            f"dead protocol surface or a missing sender"
                        ),
                    )

        # Binary op table: every BIN_OPS entry is a wire capability, so it
        # must be dispatchable server-side and actually used client-side.
        table = stack.bin_table
        if table.site is not None:
            path, site_line = table.site
            if has_handlers:
                for op in sorted(table.codes):
                    if op not in handled_ops:
                        yield Finding(
                            rule="RPC001",
                            path=path,
                            line=table.lines.get(op, site_line),
                            message=(
                                f"binary op table entry {op!r} (code "
                                f"{table.codes[op]}) matches no handler dispatch "
                                f"branch — the binary codec decodes frames "
                                f"nothing can serve"
                            ),
                        )
            if has_senders:
                for op in sorted(table.codes):
                    if op not in sent_ops:
                        yield Finding(
                            rule="RPC002",
                            path=path,
                            line=table.lines.get(op, site_line),
                            message=(
                                f"binary op table entry {op!r} (code "
                                f"{table.codes[op]}) is sent by no client — "
                                f"dead binary wire surface"
                            ),
                        )

        # RPC003: request fields the handler reads vs fields senders supply
        for branch in stack.branches:
            if not branch.op or branch.op not in sent_ops:
                continue
            senders = [r for r in stack.requests if r.op == branch.op]
            for fname, strict, line in branch.reads:
                if any(fname in s.fields or s.wildcard for s in senders):
                    continue
                where = ", ".join(f"{s.path}:{s.line}" for s in senders[:3])
                yield Finding(
                    rule="RPC003",
                    path=branch.path,
                    line=line,
                    message=(
                        f"handler for op {branch.op_text} reads request field "
                        f"{fname!r} but no sender supplies it "
                        f"(senders: {where})"
                    ),
                )

        # RPC004: response fields consumed vs fields set on reply paths
        for cons in stack.consumptions:
            if cons.wildcard:
                continue
            for op in sorted(cons.ops):
                replies = [r for b in stack.branches if b.op == op for r in b.replies]
                if not replies:
                    continue
                ok_replies = [r for r in replies if r.kind == "ok"]
                for fname, strict, line in cons.reads:
                    if strict:
                        deficient = [
                            r
                            for r in ok_replies
                            if not r.wildcard and fname not in r.fields
                        ]
                        if ok_replies and deficient:
                            where = ", ".join(
                                f"{r.path}:{r.line}" for r in deficient[:3]
                            )
                            yield Finding(
                                rule="RPC004",
                                path=cons.path,
                                line=line,
                                message=(
                                    f"response field {fname!r} of op {op!r} is "
                                    f"consumed here with [] (required) but not "
                                    f"set on every ok reply path — missing at: "
                                    f"{where}; set the field there or read with "
                                    f".get()"
                                ),
                            )
                    else:
                        if not any(fname in r.fields or r.wildcard for r in replies):
                            where = ", ".join(
                                f"{r.path}:{r.line}" for r in replies[:3]
                            )
                            yield Finding(
                                rule="RPC004",
                                path=cons.path,
                                line=line,
                                message=(
                                    f"response field {fname!r} of op {op!r} is "
                                    f"consumed here but set on no server reply "
                                    f"path (replies: {where})"
                                ),
                            )
