"""Project-specific concurrency & determinism tooling.

Two halves, both born from the incidents that dominated the runtime
lifecycle-hardening PRs (stale pooled sockets declaring healthy nodes
dead, thread-per-miss recaching, the contains→read eviction race):

* :mod:`repro.analysis.lint` surface — an AST lint engine
  (:func:`lint_paths`, ``python -m repro.analysis``) with rules that
  catch those hazard *patterns* at review time: lock-held-while-blocking
  (RT001), untracked thread spawns (RT002), determinism violations in
  the simulator/experiment stack (SIM001), silently swallowed exceptions
  in thread targets (EXC001), and counter-registry drift (CNT001).
* :mod:`repro.analysis.lockwitness` — lightweight runtime
  instrumentation for named locks that records the per-thread
  lock-acquisition graph while the test suite runs and fails on cycles
  (potential deadlocks) or over-budget hold times.
"""

from __future__ import annotations

from .engine import lint_paths
from .findings import Finding
from .rules import ALL_RULES

__all__ = ["lint_paths", "Finding", "ALL_RULES"]
