"""Per-file result cache for the analysis CLI.

Rule execution dominates a lint run (five visitor passes per module plus
the interprocedural fixpoints), so results are cached in a small JSON
file keyed two ways:

* **per file** — ``path → {mtime_ns, size, sha256, findings}`` holding
  the *raw* module-rule findings (pre-suppression, anchors included).
  ``mtime_ns + size`` is the fast path: when both match, the stored hash
  is trusted without re-hashing; when they differ the content hash
  decides, so ``touch`` alone never invalidates and an edit that keeps
  the mtime never poisons.
* **project-wide** — the interprocedural findings under a single key,
  the hash of every (path, file-hash) pair: any file change recomputes
  the whole interprocedural layer (its results can depend on any module,
  so finer-grained reuse would be unsound).

Both keys incorporate :data:`ENGINE_VERSION`, a content hash of the
analysis package itself — editing any rule invalidates everything, no
manual version bump to forget.  Suppressions are *not* cached: they are
re-applied from source on every run (tokenising is cheap, and SUP001/
SUP002 depend on which rules fire, including project rules).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

from .findings import Finding

__all__ = ["AnalysisCache", "engine_version", "DEFAULT_CACHE_FILE"]

DEFAULT_CACHE_FILE = ".ftlint-cache.json"

_engine_version: Optional[str] = None


def engine_version() -> str:
    """Content hash of the analysis package — the cache's global salt."""
    global _engine_version
    if _engine_version is None:
        h = hashlib.sha256()
        pkg = Path(__file__).resolve().parent
        for f in sorted(pkg.glob("*.py")):
            h.update(f.name.encode())
            h.update(f.read_bytes())
        _engine_version = h.hexdigest()[:16]
    return _engine_version


def _finding_to_cache(f: Finding) -> dict:
    d = f.to_dict()
    if f.anchor_lines:
        d["anchor_lines"] = list(f.anchor_lines)
    return d


def _finding_from_cache(d: dict) -> Finding:
    return Finding(
        rule=d["rule"],
        path=d["path"],
        line=d["line"],
        col=d.get("col", 0),
        message=d["message"],
        anchor_lines=tuple(d.get("anchor_lines", ())),
    )


class AnalysisCache:
    """Load-mutate-save wrapper around the cache file, with hit stats."""

    def __init__(self, path: str | Path = DEFAULT_CACHE_FILE):
        self.path = Path(path)
        self.stats: Dict[str, object] = {
            "enabled": True,
            "files": 0,
            "module_hits": 0,
            "module_misses": 0,
            "project_hit": False,
        }
        self._data = self._load()

    def _load(self) -> dict:
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            data = {}
        if data.get("version") != engine_version():
            data = {"version": engine_version(), "files": {}, "project": {}}
        data.setdefault("files", {})
        data.setdefault("project", {})
        return data

    # -- per-file layer -----------------------------------------------------------
    def file_hash(self, path: str, source: str, stat) -> str:
        """Content hash, trusting mtime+size when they match the entry."""
        entry = self._data["files"].get(path)
        if (
            entry is not None
            and entry.get("mtime_ns") == stat.st_mtime_ns
            and entry.get("size") == stat.st_size
        ):
            return entry["sha256"]
        return hashlib.sha256(source.encode("utf-8", "surrogatepass")).hexdigest()

    def get_module_findings(self, path: str, sha256: str) -> Optional[List[Finding]]:
        self.stats["files"] = int(self.stats["files"]) + 1
        entry = self._data["files"].get(path)
        if entry is not None and entry.get("sha256") == sha256:
            self.stats["module_hits"] = int(self.stats["module_hits"]) + 1
            return [_finding_from_cache(d) for d in entry.get("findings", ())]
        self.stats["module_misses"] = int(self.stats["module_misses"]) + 1
        return None

    def put_module_findings(
        self, path: str, sha256: str, stat, findings: List[Finding]
    ) -> None:
        self._data["files"][path] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "sha256": sha256,
            "findings": [_finding_to_cache(f) for f in findings],
        }

    # -- project layer ------------------------------------------------------------
    def project_key(self, file_hashes: Dict[str, str]) -> str:
        h = hashlib.sha256(engine_version().encode())
        for path in sorted(file_hashes):
            h.update(path.encode())
            h.update(file_hashes[path].encode())
        return h.hexdigest()

    def get_project_findings(self, key: str) -> Optional[List[Finding]]:
        proj = self._data["project"]
        if proj.get("key") == key:
            self.stats["project_hit"] = True
            return [_finding_from_cache(d) for d in proj.get("findings", ())]
        return None

    def put_project_findings(self, key: str, findings: List[Finding]) -> None:
        self._data["project"] = {
            "key": key,
            "findings": [_finding_to_cache(f) for f in findings],
        }

    def save(self) -> None:
        # prune entries for files that vanished so the cache cannot grow
        # without bound across renames
        try:
            self._data["files"] = {
                p: e for p, e in self._data["files"].items() if Path(p).exists()
            }
            self.path.write_text(json.dumps(self._data, separators=(",", ":")))
        except OSError:
            pass  # caching is an optimisation, never a failure
