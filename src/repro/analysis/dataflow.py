"""Worklist fixpoint solvers shared by the interprocedural rules.

Two shapes of fixpoint, both monotone over finite lattices so
termination is by construction:

* :func:`solve_forward` — classic forward dataflow over a
  :class:`~repro.analysis.cfg.CFG`: states flow along edges, joined at
  merge points, until nothing changes.  RES001 runs its resource-state
  lattice (UNACQUIRED < OPEN/CLOSED < MAYBE_OPEN) through this.
* :func:`solve_summaries` — a bottom-up summary fixpoint over the call
  graph: each function's summary is its direct facts joined with its
  callees' summaries lifted across the call site.  Recursion is handled
  by iterating to fixpoint rather than by topological order.  RT003's
  blocking summaries and the static lock-order graph's lock-set
  summaries both run through this with chain-preserving lattices
  (a fact carries the shortest call chain that witnesses it).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Tuple, TypeVar

from .cfg import CFG, ENTRY

__all__ = ["solve_forward", "solve_summaries", "ChainFact", "join_chain_facts"]

S = TypeVar("S")  # a dataflow state
F = TypeVar("F", bound=Hashable)  # a function identifier


def solve_forward(
    cfg: CFG,
    init: S,
    bottom: S,
    transfer: Callable[[int, S], S],
    join: Callable[[S, S], S],
    exc_transfer: Optional[Callable[[int, S], S]] = None,
) -> Dict[int, S]:
    """Forward dataflow: returns the state *entering* each node.

    ``transfer(node_id, state)`` maps an in-state to the out-state of one
    node; ``join`` merges states at control-flow merges; ``init`` enters
    at ENTRY and ``bottom`` is the identity of ``join``.  States must be
    immutable values with ``==``.

    When ``exc_transfer`` is given, exceptional successors (edges in
    ``cfg.exc_succ``) receive ``exc_transfer(node, state)`` instead —
    e.g. RES001 treats an acquiring assignment that *raises* as not
    having acquired (the binding never happened).
    """
    in_state: Dict[int, S] = {n: bottom for n in cfg.node_ids()}
    in_state[ENTRY] = init
    # Seed with every node, not just ENTRY: when init == bottom the first
    # propagation changes nothing, yet nodes still need their transfer run
    # so downstream states (e.g. "acquired") appear at all.
    work = list(cfg.node_ids())
    while work:
        node = work.pop()
        out = transfer(node, in_state[node])
        exc_out = exc_transfer(node, in_state[node]) if exc_transfer else out
        exc_edges = cfg.exc_succ.get(node, set())
        for nxt in cfg.successors(node):
            flowed = exc_out if nxt in exc_edges else out
            merged = join(in_state[nxt], flowed)
            if merged != in_state[nxt]:
                in_state[nxt] = merged
                work.append(nxt)
    return in_state


#: One interprocedural fact with its witness chain: a tuple of
#: ``(display_name, path, line)`` steps, outermost call first, ending at
#: the primitive that grounds the fact.
ChainFact = Tuple[Tuple[str, str, int], ...]


def join_chain_facts(
    acc: Dict[str, ChainFact], new: Dict[str, ChainFact]
) -> Tuple[Dict[str, ChainFact], bool]:
    """Union fact keys, keeping the shortest witness chain per key.

    Returns the merged dict and whether anything changed.  Preferring the
    shortest chain makes the fixpoint monotone (chains only ever shrink)
    and the reported chains readable.
    """
    changed = False
    out = dict(acc)
    for key, chain in new.items():
        old = out.get(key)
        if old is None or len(chain) < len(old):
            out[key] = chain
            changed = old is None or chain != old
    return out, changed


def solve_summaries(
    functions: Iterable[F],
    callers_of: Callable[[F], Iterable[Tuple[F, Tuple[str, str, int]]]],
    direct: Callable[[F], Dict[str, ChainFact]],
    max_chain: int = 12,
) -> Dict[F, Dict[str, ChainFact]]:
    """Bottom-up chain-fact summaries over the call graph.

    ``direct(f)`` yields the facts ``f`` establishes itself (chain of
    length 1).  ``callers_of(g)`` yields ``(f, step)`` pairs: ``f`` calls
    ``g`` and ``step = (display, path, line)`` describes that call site.
    Whenever ``g``'s summary grows, every caller re-joins ``g``'s facts
    prefixed with the call-site step; chains are capped at ``max_chain``
    steps to bound pathological recursion output (the fact itself still
    propagates — only the printed chain is truncated).
    """
    funcs = list(functions)
    summary: Dict[F, Dict[str, ChainFact]] = {f: dict(direct(f)) for f in funcs}
    work = [f for f in funcs if summary[f]]
    in_work = set(work)
    while work:
        g = work.pop()
        in_work.discard(g)
        g_facts = summary[g]
        for f, step in callers_of(g):
            if f not in summary:
                continue
            lifted = {
                key: ((step, *chain) if len(chain) < max_chain else (step, *chain[: max_chain - 1]))
                for key, chain in g_facts.items()
            }
            merged, changed = join_chain_facts(summary[f], lifted)
            if changed:
                summary[f] = merged
                if f not in in_work:
                    work.append(f)
                    in_work.add(f)
    return summary
