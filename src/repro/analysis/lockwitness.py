"""Runtime lock-order witness: deadlock and hold-budget detection.

The runtime's locks are created through the :func:`named_lock` /
:func:`named_condition` factories.  When the witness is disabled (the
default outside the test suite) they return plain ``threading`` objects
— zero overhead.  When enabled (the conftest fixture turns it on for
every pytest run) each lock is wrapped so that, per thread, the witness
records:

* the **lock-order graph**: an edge ``A → B`` whenever a thread acquires
  lock-role ``B`` while holding lock-role ``A``.  A cycle in this graph
  is a potential deadlock even if the schedule that triggers it never
  occurred during the run — exactly the class of bug that is hopeless to
  reproduce and cheap to prove.
* **hold budgets**: a lock held longer than ``hold_budget`` seconds is
  reported with its acquisition site.  Long holds are the latency
  amplifier behind lock-convoy cliffs (and the dynamic twin of the
  RT001 lint rule).
* **re-entry**: re-acquiring the *same* non-reentrant lock instance on
  one thread — a guaranteed self-deadlock.

Edges are keyed by lock *name* (role), not instance: "the stats lock"
and "the mover condition" are roles shared by every server.  Two
instances of the same role are never ordered against each other (a
documented blind spot — ordering instances would need a global instance
ranking, which the runtime does not promise).

Condition ``wait()`` is modelled faithfully: the lock is released for
the duration of the wait, so wait time never counts against the hold
budget and edges are not recorded from a lock the thread gave up.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Optional

__all__ = [
    "LockWitness",
    "LockOrderViolation",
    "named_lock",
    "named_condition",
    "enable",
    "disable",
    "is_enabled",
    "report",
    "find_cycles",
    "reset",
    "assert_clean",
]

_THIS_FILE = __file__

#: cap per-category evidence so a pathological run cannot eat memory
_MAX_RECORDS = 50


class LockOrderViolation(AssertionError):
    """Raised by :func:`assert_clean` when the witness saw a hazard."""


def _call_site() -> str:
    """filename:lineno of the nearest frame outside this module."""
    f = sys._getframe(1)
    while f is not None and f.f_code.co_filename == _THIS_FILE:
        f = f.f_back
    if f is None:  # pragma: no cover - only if called from module level
        return "<unknown>"
    return f"{f.f_code.co_filename}:{f.f_lineno}"


class LockWitness:
    """One independent witness: a lock-order graph plus hold accounting."""

    def __init__(self, hold_budget: float = 2.0):
        if hold_budget <= 0:
            raise ValueError("hold_budget must be positive")
        self.hold_budget = hold_budget
        self._mu = threading.Lock()  # guards the shared records below
        #: (held_role, acquired_role) -> {"thread", "site", "count"}
        self._edges: dict[tuple[str, str], dict] = {}
        self._hold_violations: list[dict] = []
        self._reentries: list[dict] = []
        self._tls = threading.local()

    # -- factories ---------------------------------------------------------------
    def named_lock(self, name: str) -> "_WitnessLock":
        return _WitnessLock(self, name)

    def named_condition(self, name: str) -> "_WitnessCondition":
        return _WitnessCondition(self, name)

    # -- per-thread bookkeeping ----------------------------------------------------
    def _held(self) -> list:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def _before_acquire(self, lock: "_WitnessLock | _WitnessCondition") -> None:
        """Record edges/re-entry at the *attempt*, before potentially blocking
        — that is the moment the deadlock potential exists."""
        held = self._held()
        if not held:
            return
        site = None
        for role, obj_id, _t in held:
            if role == lock._name:
                if obj_id == id(lock):
                    site = site or _call_site()
                    with self._mu:
                        if len(self._reentries) < _MAX_RECORDS:
                            self._reentries.append({
                                "lock": role,
                                "thread": threading.current_thread().name,
                                "site": site,
                            })
                continue  # same role, different instance: unordered (see module doc)
            key = (role, lock._name)
            with self._mu:
                info = self._edges.get(key)
                if info is not None:
                    info["count"] += 1
                    continue
            site = site or _call_site()
            with self._mu:
                self._edges.setdefault(key, {
                    "thread": threading.current_thread().name,
                    "site": site,
                    "count": 0,
                })["count"] += 1

    def _after_acquire(self, lock) -> None:
        self._held().append((lock._name, id(lock), time.monotonic()))

    def _on_release(self, lock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            role, obj_id, t_acq = held[i]
            if obj_id == id(lock):
                del held[i]
                held_for = time.monotonic() - t_acq
                if held_for > self.hold_budget:
                    with self._mu:
                        if len(self._hold_violations) < _MAX_RECORDS:
                            self._hold_violations.append({
                                "lock": role,
                                "held_s": round(held_for, 4),
                                "budget_s": self.hold_budget,
                                "thread": threading.current_thread().name,
                                "site": _call_site(),
                            })
                return

    # -- analysis ----------------------------------------------------------------
    def find_cycles(self) -> list[list[str]]:
        """Strongly-connected components of the order graph with >1 role —
        each is a potential deadlock (Tarjan, iterative)."""
        with self._mu:
            adj: dict[str, set[str]] = {}
            for a, b in self._edges:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set())
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        cycles: list[list[str]] = []

        for root in sorted(adj):
            if root in index:
                continue
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1:
                        cycles.append(sorted(scc))
        return cycles

    def report(self) -> dict:
        with self._mu:
            edges = [
                {"from": a, "to": b, **info} for (a, b), info in sorted(self._edges.items())
            ]
            holds = list(self._hold_violations)
            reentries = list(self._reentries)
        return {
            "edges": edges,
            "cycles": self.find_cycles(),
            "hold_violations": holds,
            "reentries": reentries,
        }

    def assert_clean(self) -> None:
        rep = self.report()
        problems = []
        for cyc in rep["cycles"]:
            involved = [e for e in rep["edges"] if e["from"] in cyc and e["to"] in cyc]
            detail = "; ".join(
                f"{e['from']}→{e['to']} ({e['thread']} at {e['site']}, ×{e['count']})"
                for e in involved
            )
            problems.append(f"lock-order cycle {' ↔ '.join(cyc)}: {detail}")
        for v in rep["hold_violations"]:
            problems.append(
                f"lock '{v['lock']}' held {v['held_s']}s > budget {v['budget_s']}s "
                f"by {v['thread']} (released at {v['site']})"
            )
        for r in rep["reentries"]:
            problems.append(
                f"non-reentrant lock '{r['lock']}' re-acquired on {r['thread']} "
                f"at {r['site']} (guaranteed self-deadlock)"
            )
        if problems:
            raise LockOrderViolation("\n".join(problems))

    def reset(self) -> None:
        with self._mu:
            self._edges.clear()
            self._hold_violations.clear()
            self._reentries.clear()


class _WitnessLock:
    """A named, witnessed ``threading.Lock`` drop-in."""

    def __init__(self, witness: LockWitness, name: str):
        self._witness = witness
        self._name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._witness._before_acquire(self)
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._witness._after_acquire(self)
        return ok

    def release(self) -> None:
        self._witness._on_release(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WitnessLock {self._name!r} {self._lock!r}>"


class _WitnessCondition:
    """A named, witnessed ``threading.Condition`` drop-in.

    ``wait()`` releases the underlying lock, so the witness marks the
    role released for the duration (wait time must not count as hold
    time, and edges must not originate from a lock the thread gave up).
    """

    def __init__(self, witness: LockWitness, name: str):
        self._witness = witness
        self._name = name
        self._cond = threading.Condition()

    # -- lock protocol -----------------------------------------------------------
    def acquire(self, *args) -> bool:
        self._witness._before_acquire(self)
        ok = self._cond.acquire(*args)
        if ok:
            self._witness._after_acquire(self)
        return ok

    def release(self) -> None:
        self._witness._on_release(self)
        self._cond.release()

    def __enter__(self) -> "_WitnessCondition":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # -- condition protocol --------------------------------------------------------
    def wait(self, timeout: Optional[float] = None) -> bool:
        self._witness._on_release(self)  # wait() releases the lock...
        try:
            return self._cond.wait(timeout)
        finally:
            self._witness._after_acquire(self)  # ...and re-acquires before returning

    def wait_for(self, predicate, timeout: Optional[float] = None):
        end = None if timeout is None else time.monotonic() + timeout
        result = predicate()
        while not result:
            remaining = None if end is None else end - time.monotonic()
            if remaining is not None and remaining <= 0:
                break
            self.wait(remaining)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WitnessCondition {self._name!r}>"


# -- module-level default witness (what the runtime factories use) -------------------
_default = LockWitness()
_enabled = False


def enable(hold_budget: Optional[float] = None) -> None:
    """Turn witnessing on for locks created *after* this call."""
    global _enabled
    if hold_budget is not None:
        _default.hold_budget = hold_budget
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def named_lock(name: str, witness: Optional[bool] = None):
    """A lock for role ``name``: witnessed iff enabled (or forced via
    ``witness=True/False``); otherwise a plain ``threading.Lock``."""
    use = _enabled if witness is None else witness
    return _default.named_lock(name) if use else threading.Lock()


def named_condition(name: str, witness: Optional[bool] = None):
    use = _enabled if witness is None else witness
    return _default.named_condition(name) if use else threading.Condition()


def report() -> dict:
    return _default.report()


def find_cycles() -> list[list[str]]:
    return _default.find_cycles()


def reset() -> None:
    _default.reset()


def assert_clean() -> None:
    _default.assert_clean()
