"""RT003 — transitive lock-held-blocking.

RT001 only sees a blocking primitive written *textually* inside a
``with <lock>:`` body.  This rule closes the helper-call gap: each
project function gets a *blocking summary* — the set of blocking
primitives it can reach through project-local calls, each carrying the
shortest witnessing call chain — computed bottom-up over the call graph
with :func:`repro.analysis.dataflow.solve_summaries`.  A call made while
a lock is held whose callee has a non-empty summary is flagged, and the
finding prints the chain down to the primitive, e.g.::

    RT003 call 'self._helper()' while holding lock 'self._lock' can
    block: _helper (client.py:80) -> send_message (protocol.py:60):
    socket I/O 'sock.sendall()' (protocol.py:64)

Precision notes (documented so suppressions can argue with them):

* calls RT001 already flags (directly blocking at the call site) are
  skipped — one finding per hazard;
* nested ``def``/``lambda`` bodies contribute nothing to the enclosing
  function's summary (they run at call time, usually on another thread);
* ``cond.wait()`` on a condition the *same function* visibly holds is
  the release-and-wait idiom and stays out of that function's summary —
  but a helper that waits on its own condition still blocks its caller,
  so the fact survives when the ``with`` is in a different function;
* virtual dispatch is a union: if any override's summary blocks, the
  call is flagged (the chain names the override that blocks).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .callgraph import CallGraph, CallSite, FunctionInfo
from .dataflow import ChainFact, solve_summaries
from .findings import Finding
from .rules import LOCK_NAME_RE, blocking_reason
from .visitor import ProjectRule, dotted_name


def _short(path: str) -> str:
    return path.rsplit("/", 1)[-1]


def format_chain(chain: ChainFact) -> str:
    """``step (file:line) -> ... -> primitive (file:line)`` for a finding."""
    return " -> ".join(f"{display} ({_short(path)}:{line})" for display, path, line in chain)


def _lock_name(item: ast.withitem) -> Optional[str]:
    name = dotted_name(item.context_expr)
    if name and LOCK_NAME_RE.search(name.rsplit(".", 1)[-1]):
        return name
    return None


def _walk_with_locks(func_node: ast.AST):
    """Yield ``(node, held_locks)`` for every node in the function body,
    tracking ``with <lock>:`` nesting; nested def/lambda bodies skipped.

    ``held_locks`` is a tuple of ``(dotted_name, with_lineno)`` pairs,
    outermost first.
    """
    def visit(node: ast.AST, held: Tuple[Tuple[str, int], ...]):
        yield node, held
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested bodies run at call time, not under this lock
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held
            for item in node.items:
                # item i's context expression evaluates with items < i held
                for sub in ast.iter_child_nodes(item):
                    yield from visit(sub, inner)
                ln = _lock_name(item)
                if ln:
                    inner = inner + ((ln, node.lineno),)
            for stmt in node.body:
                yield from visit(stmt, inner)
            return
        for child in ast.iter_child_nodes(node):
            yield from visit(child, held)

    for top in ast.iter_child_nodes(func_node):
        yield from visit(top, ())


def direct_blocking_facts(fi: FunctionInfo) -> Dict[str, ChainFact]:
    """The blocking primitives ``fi`` itself performs, keyed by reason."""
    facts: Dict[str, ChainFact] = {}
    for node, held in _walk_with_locks(fi.node):
        if not isinstance(node, ast.Call):
            continue
        reason = blocking_reason(node, tuple(name for name, _ in held))
        if reason and reason not in facts:
            facts[reason] = ((reason, fi.path, node.lineno),)
    return facts


def blocking_summaries(graph: CallGraph) -> Dict[str, Dict[str, ChainFact]]:
    """Per-function blocking summaries over the whole project."""
    callers: Dict[str, List[Tuple[str, Tuple[str, str, int]]]] = {}
    for caller, sites in graph.calls.items():
        cpath = graph.functions[caller].path
        for site in sites:
            for callee in site.callees:
                fi = graph.functions.get(callee)
                display = fi.display if fi else callee
                callers.setdefault(callee, []).append(
                    (caller, (display, cpath, site.line))
                )

    direct = {qn: direct_blocking_facts(fi) for qn, fi in graph.functions.items()}
    return solve_summaries(
        graph.functions.keys(),
        lambda g: callers.get(g, ()),
        lambda f: direct[f],
    )


class TransitiveBlockingRule(ProjectRule):
    rules = (
        ("RT003", "call chain that blocks while a lock is held"),
    )

    #: how many distinct blocking facts to print per flagged call
    MAX_FACTS = 3

    def check_project(self, graph: CallGraph) -> Iterable[Finding]:
        summaries = blocking_summaries(graph)
        for qn, fi in graph.functions.items():
            sites = {id(cs.node): cs for cs in graph.callees_of(qn)}
            yield from self._check_function(fi, sites, summaries)

    def _check_function(
        self,
        fi: FunctionInfo,
        sites: Dict[int, CallSite],
        summaries: Dict[str, Dict[str, ChainFact]],
    ) -> Iterable[Finding]:
        for node, held in _walk_with_locks(fi.node):
            if not isinstance(node, ast.Call) or not held:
                continue
            held_names = tuple(name for name, _ in held)
            if blocking_reason(node, held_names) is not None:
                continue  # RT001's finding; do not double-report
            site = sites.get(id(node))
            if site is None:
                continue
            facts: Dict[str, ChainFact] = {}
            for callee in site.callees:
                for reason, chain in summaries.get(callee, {}).items():
                    old = facts.get(reason)
                    if old is None or len(chain) < len(old):
                        facts[reason] = chain
            if not facts:
                continue
            lock_name, lock_line = held[-1]
            shown = sorted(facts.items(), key=lambda kv: (len(kv[1]), kv[0]))
            chains = "; ".join(
                format_chain(chain) for _, chain in shown[: self.MAX_FACTS]
            )
            more = len(shown) - self.MAX_FACTS
            suffix = f" (+{more} more)" if more > 0 else ""
            yield Finding(
                rule="RT003",
                path=fi.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"call '{site.call_text}()' while holding lock '{lock_name}' "
                    f"(acquired at line {lock_line}) can block: {chains}{suffix}; "
                    f"move the call out of the critical section or suppress with "
                    f"a -- justification"
                ),
                anchor_lines=(lock_line,),
            )
