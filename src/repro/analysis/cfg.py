"""Per-function control-flow graph with exception edges.

Nodes are individual statements plus three synthetic nodes: ENTRY, the
normal EXIT, and RAISE (the exceptional exit).  For compound statements
the node represents only the part that executes at that point — an
``if`` node is its test, a ``for`` node the iterator advance, a ``with``
node the context-manager entry — recorded as the node's *role* so
dataflow transfer functions never accidentally interpret a nested block.

Edges model:

* straight-line fallthrough, ``if``/``while``/``for`` branching,
  ``break``/``continue``/``return``;
* **exception edges**: any statement that can raise gets an edge to the
  innermost enclosing handler target — the ``except`` dispatch of its
  ``try``, else its ``finally``, else RAISE.  Almost every statement can
  raise (attribute access, arithmetic, any call), so only trivially-safe
  statements (``pass``, ``break``, ``continue``, bare name/constant
  expressions) are exempt;
* ``finally`` **duality**: the finally body is built once and exits both
  to the normal continuation and (exceptionally) onward to the outer
  handler target.  This over-approximates — a finally entered
  exceptionally also appears to fall through normally — but is sound
  for may-analyses like RES001: a resource closed in a finally is closed
  on both exits.

Python semantics honoured: the ``else`` suite runs only after a clean
body, and its exceptions are *not* caught by this ``try``'s handlers;
an exception matching no handler propagates out through the finally.
Known simplification: ``break``/``continue``/``return`` jumping out of a
``try`` bypass the finally body in this graph.  Nested function
definitions are opaque single nodes — their bodies run at call time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CFG", "CFGNode", "build_cfg", "ENTRY", "EXIT", "RAISE"]

ENTRY = 0
EXIT = 1
RAISE = 2


@dataclass
class CFGNode:
    """One CFG node: the statement it belongs to and which part of it."""

    stmt: Optional[ast.stmt]
    #: "stmt" whole simple statement | "test" if/while condition |
    #: "iter" for-loop iterator+target | "with" context entry |
    #: "dispatch" except dispatch | "join" synthetic merge point
    role: str = "stmt"

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


@dataclass
class CFG:
    """Statement-level flow graph for one function body."""

    func: ast.AST
    nodes: dict[int, CFGNode] = field(default_factory=dict)
    succ: dict[int, set[int]] = field(default_factory=dict)
    #: subset of edges that model an in-flight exception
    exc_succ: dict[int, set[int]] = field(default_factory=dict)

    def add_edge(self, a: int, b: int, exceptional: bool = False) -> None:
        self.succ.setdefault(a, set()).add(b)
        if exceptional:
            self.exc_succ.setdefault(a, set()).add(b)

    def node_ids(self) -> list[int]:
        return [ENTRY, EXIT, RAISE, *self.nodes.keys()]

    def successors(self, nid: int) -> set[int]:
        return self.succ.get(nid, set())


#: statements that can never raise on their own
_NO_RAISE = (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)


def _can_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, _NO_RAISE):
        return False
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, (ast.Constant, ast.Name)):
        return False
    return True


class _Builder:
    def __init__(self, func: ast.AST):
        self.cfg = CFG(func=func)
        self._next_id = 3
        self._breaks: list[int] = []  # break nodes of the innermost open loop

    def build(self) -> CFG:
        body = self.cfg.func.body  # type: ignore[attr-defined]
        out = self._seq(body, {ENTRY}, RAISE, in_loop=False)
        for n in out:
            self.cfg.add_edge(n, EXIT)
        return self.cfg

    def _new(self, stmt: Optional[ast.stmt], role: str = "stmt") -> int:
        nid = self._next_id
        self._next_id += 1
        self.cfg.nodes[nid] = CFGNode(stmt=stmt, role=role)
        return nid

    def _link(self, preds: set[int], node: int) -> None:
        for p in preds:
            self.cfg.add_edge(p, node)

    # Each helper returns the "live out" set that falls through to whatever
    # comes next; edges to EXIT/RAISE/loop heads are added inline.
    def _seq(self, stmts, preds: set[int], exc: int, in_loop,
             loop_head: Optional[int] = None) -> set[int]:
        current = set(preds)
        for stmt in stmts:
            if not current:
                break  # unreachable after return/raise/break
            current = self._stmt(stmt, current, exc, in_loop, loop_head)
        return current

    def _stmt(self, stmt: ast.stmt, preds: set[int], exc: int, in_loop,
              loop_head: Optional[int]) -> set[int]:
        cfg = self.cfg

        if isinstance(stmt, ast.If):
            node = self._new(stmt, "test")
            self._link(preds, node)
            cfg.add_edge(node, exc, exceptional=True)
            body_out = self._seq(stmt.body, {node}, exc, in_loop, loop_head)
            else_out = (
                self._seq(stmt.orelse, {node}, exc, in_loop, loop_head)
                if stmt.orelse
                else {node}
            )
            return body_out | else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            role = "test" if isinstance(stmt, ast.While) else "iter"
            head = self._new(stmt, role)
            self._link(preds, head)
            cfg.add_edge(head, exc, exceptional=True)
            saved, self._breaks = self._breaks, []
            body_out = self._seq(stmt.body, {head}, exc, in_loop=True, loop_head=head)
            for n in body_out:
                cfg.add_edge(n, head)
            breaks, self._breaks = set(self._breaks), saved
            if stmt.orelse:
                else_out = self._seq(stmt.orelse, {head}, exc, in_loop, loop_head)
                return else_out | breaks
            return {head} | breaks

        if isinstance(stmt, ast.Break):
            node = self._new(stmt)
            self._link(preds, node)
            self._breaks.append(node)
            return set()

        if isinstance(stmt, ast.Continue):
            node = self._new(stmt)
            self._link(preds, node)
            if loop_head is not None:
                cfg.add_edge(node, loop_head)
            return set()

        if isinstance(stmt, ast.Return):
            node = self._new(stmt)
            self._link(preds, node)
            if stmt.value is not None:
                cfg.add_edge(node, exc, exceptional=True)
            cfg.add_edge(node, EXIT)
            return set()

        if isinstance(stmt, ast.Raise):
            node = self._new(stmt)
            self._link(preds, node)
            cfg.add_edge(node, exc, exceptional=True)
            return set()

        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds, exc, in_loop, loop_head)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self._new(stmt, "with")
            self._link(preds, node)
            cfg.add_edge(node, exc, exceptional=True)
            return self._seq(stmt.body, {node}, exc, in_loop, loop_head)

        # Simple statement (assignment, expression, import, nested def, ...).
        node = self._new(stmt)
        self._link(preds, node)
        if _can_raise(stmt):
            cfg.add_edge(node, exc, exceptional=True)
        return {node}

    def _try(self, stmt: ast.Try, preds: set[int], exc: int, in_loop,
             loop_head: Optional[int]) -> set[int]:
        cfg = self.cfg
        has_fin = bool(stmt.finalbody)
        has_handlers = bool(stmt.handlers)

        #: exceptional entry into the finally body (exists iff has_fin)
        fin_gate = self._new(stmt, "join") if has_fin else None
        #: where the protected body's exceptions land first
        if has_handlers:
            dispatch = self._new(stmt, "dispatch")
            body_exc = dispatch
        else:
            body_exc = fin_gate if fin_gate is not None else exc
            dispatch = None
        #: where exceptions *escaping* this try go (handler bodies, else
        #: suite, unmatched dispatch)
        escape = fin_gate if fin_gate is not None else exc

        body_out = self._seq(stmt.body, preds, body_exc, in_loop, loop_head)
        if stmt.orelse:  # runs only on a clean body; not caught by handlers
            body_out = self._seq(stmt.orelse, body_out, escape, in_loop, loop_head)

        handler_out: set[int] = set()
        if dispatch is not None:
            for h in stmt.handlers:
                handler_out |= self._seq(h.body, {dispatch}, escape, in_loop, loop_head)
            if not any(h.type is None for h in stmt.handlers):
                cfg.add_edge(dispatch, escape, exceptional=True)

        if not has_fin:
            return body_out | handler_out

        fin_preds = body_out | handler_out | {fin_gate}
        fin_out = self._seq(stmt.finalbody, fin_preds, exc, in_loop, loop_head)
        for n in fin_out:  # exceptional continuation out of the finally
            cfg.add_edge(n, exc, exceptional=True)
        return fin_out


def build_cfg(func: ast.AST) -> CFG:
    """CFG for one ``FunctionDef`` / ``AsyncFunctionDef`` body."""
    return _Builder(func).build()
