"""CNT001 — counter-registry drift.

The runtime keeps every monotone counter name in one registry constant
(``STAT_COUNTER_KEYS`` in the server, ``CLIENT_COUNTER_KEYS`` in the
client) precisely so STAT responses, snapshots, and bench JSON can never
silently diverge from the counters actually maintained.  This rule makes
the convention load-bearing: in any module that *defines* a
``*_COUNTER_KEYS`` tuple it cross-checks

* a stats class (one with public ``int``-annotated fields and a
  ``bump``/``counters`` method): its field set must equal the registry;
* every ``.bump(...)`` / ``._bump(...)`` keyword in the module must name
  a registered counter;
* when there is no stats class, every registered counter must be bumped
  somewhere in the module (a registry key nothing increments is dead
  weight in every snapshot).

:class:`CounterRegistryProjectRule` extends the same contract across the
tree: a ``bump`` in a ``repro`` module that defines *no* local registry
must still name a counter registered *somewhere* in the project — a
counter invented at a call site far from every registry is exactly the
silent drift the convention exists to prevent (it would increment
forever and appear in no snapshot, no STAT reply, no bench artifact).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from .findings import Finding
from .visitor import ModuleContext, ProjectRule, Rule

__all__ = ["CounterRegistryRule", "CounterRegistryProjectRule"]

_REGISTRY_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]*_COUNTER_KEYS$")


def _registry_assignments(tree: ast.Module) -> dict[str, tuple[ast.Assign, list[str]]]:
    out: dict[str, tuple[ast.Assign, list[str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and _REGISTRY_NAME_RE.match(target.id)):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            keys = [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            ]
            out[target.id] = (node, keys)
    return out


def _stats_classes(tree: ast.Module) -> list[tuple[ast.ClassDef, set[str]]]:
    """Classes with public int-annotated fields plus a bump/counters method."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {n.name for n in node.body if isinstance(n, ast.FunctionDef)}
        if not ({"bump", "counters"} & methods):
            continue
        fields = {
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
            and isinstance(stmt.annotation, ast.Name)
            and stmt.annotation.id == "int"
        }
        if fields:
            found.append((node, fields))
    return found


def _bump_kwargs(tree: ast.Module) -> list[tuple[ast.Call, str]]:
    out = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("bump", "_bump")
        ):
            for kw in node.keywords:
                if kw.arg is not None:
                    out.append((node, kw.arg))
    return out


class CounterRegistryRule(Rule):
    rule_id = "CNT001"
    description = "counter registry out of sync with stats fields / bump sites"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        registries = _registry_assignments(ctx.tree)
        if not registries:
            return
        registered: set[str] = set()
        for reg_name, (node, keys) in registries.items():
            dupes = {k for k in keys if keys.count(k) > 1}
            if dupes:
                yield self.finding(ctx, node, f"duplicate keys in {reg_name}: {sorted(dupes)}")
            registered |= set(keys)

        classes = _stats_classes(ctx.tree)
        for cls, fields in classes:
            missing = sorted(fields - registered)
            extra = sorted(registered - fields)
            if missing:
                yield self.finding(
                    ctx, cls,
                    f"counter field(s) {missing} of {cls.name} missing from the "
                    f"*_COUNTER_KEYS registry — snapshots will silently omit them",
                )
            if extra:
                yield self.finding(
                    ctx, cls,
                    f"registry key(s) {extra} have no counter field on {cls.name} — "
                    f"snapshot/STAT reads would raise or report garbage",
                )

        bumped: set[str] = set()
        for call, kwarg in _bump_kwargs(ctx.tree):
            bumped.add(kwarg)
            if kwarg not in registered:
                yield self.finding(
                    ctx, call,
                    f"bump of unregistered counter '{kwarg}' — add it to the "
                    f"*_COUNTER_KEYS registry or it will never be reported",
                )
        if not classes and bumped:
            for key in sorted(registered - bumped):
                yield self.finding(
                    ctx, registries[next(iter(registries))][0],
                    f"registered counter '{key}' is never bumped in this module — "
                    f"dead registry keys hide real drift",
                )


class CounterRegistryProjectRule(ProjectRule):
    """CNT001 at project scope: no counter may be bumped outside every
    ``*_COUNTER_KEYS`` registry in the tree.

    The module rule only sees files that define a registry; a bump added
    to any *other* ``repro`` module would previously escape the check
    entirely.  Here the union of every registry in the project is the
    single source of truth, and a bump keyword in a registry-less module
    must appear in it.
    """

    rules = (
        ("CNT001", "counter bumped in a module outside every *_COUNTER_KEYS registry"),
    )

    def check_project(self, graph) -> Iterable[Finding]:
        union: set[str] = set()
        unregistered: list[ModuleContext] = []
        for ctx in graph.contexts:
            if not ctx.in_package("repro"):
                continue
            registries = _registry_assignments(ctx.tree)
            if registries:
                for _, keys in registries.values():
                    union |= set(keys)
            else:
                unregistered.append(ctx)
        if not union:
            return
        for ctx in unregistered:
            for call, kwarg in _bump_kwargs(ctx.tree):
                if kwarg not in union:
                    yield Finding(
                        rule="CNT001",
                        path=ctx.path,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"bump of '{kwarg}' in a module with no counter "
                            f"registry, and no *_COUNTER_KEYS tuple anywhere in "
                            f"the project registers it — it would never appear "
                            f"in any snapshot or bench artifact"
                        ),
                    )
