"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding survives
suppression — so CI can gate on it directly.  ``--format json`` (plus
``--out``) emits a machine-readable findings artifact; ``--lock-graph``
additionally writes the static lock-acquisition-order graph that the
test suite cross-checks against the runtime lock witness.

Results are cached per file (mtime+hash) in ``.ftlint-cache.json`` by
default; ``--no-cache`` bypasses it and ``--cache-file`` relocates it.
Cache-hit statistics appear under ``"cache"`` in the JSON payload.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from .cache import DEFAULT_CACHE_FILE, AnalysisCache
from .engine import ALL_PROJECT_RULES, run_lint_paths
from .rules import ALL_RULES

__all__ = ["main"]


def _rule_catalogue() -> dict:
    rules = {cls.rule_id: cls.description for cls in ALL_RULES}
    for cls in ALL_PROJECT_RULES():
        for rule_id, description in cls.rules:
            rules[rule_id] = description
    rules["SUP001"] = "suppression without a justification"
    rules["SUP002"] = "suppression whose rule never fires"
    return rules


def _findings_json(paths: list[str], result) -> dict:
    findings = result.findings
    payload = {
        "tool": "repro.analysis",
        "schema_version": 2,
        "paths": paths,
        "rules": _rule_catalogue(),
        "total": len(findings),
        "counts": dict(sorted(Counter(f.rule for f in findings).items())),
        "findings": [f.to_dict() for f in findings],
        "cache": result.cache_stats or {"enabled": False},
    }
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="FT-Cache concurrency & determinism linter",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON findings artifact to FILE")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the result cache")
    parser.add_argument("--cache-file", metavar="FILE", default=DEFAULT_CACHE_FILE,
                        help=f"result cache location (default: {DEFAULT_CACHE_FILE})")
    parser.add_argument("--lock-graph", metavar="FILE",
                        help="write the static lock-acquisition-order graph "
                             "(JSON: edges, cycles, roles) to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, description in _rule_catalogue().items():
            print(f"{rule_id}  {description}")
        return 0

    cache = None if args.no_cache else AnalysisCache(args.cache_file)
    result = run_lint_paths(
        args.paths, cache=cache, want_lock_graph=bool(args.lock_graph)
    )
    findings = result.findings

    if args.lock_graph:
        with open(args.lock_graph, "w") as fh:
            json.dump(result.lock_graph, fh, indent=2, sort_keys=True)
            fh.write("\n")

    payload = _findings_json(list(args.paths), result)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.format_human())
        n = len(findings)
        print(f"repro.analysis: {n} finding{'s' if n != 1 else ''} "
              f"in {len(args.paths)} path(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
