"""CLI: ``python -m repro.analysis [paths...]``.

Exit status 0 when the tree is clean, 1 when any finding survives
suppression — so CI can gate on it directly.  ``--format json`` (plus
``--out``) emits a machine-readable findings artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from .engine import lint_paths
from .rules import ALL_RULES

__all__ = ["main"]


def _findings_json(paths: list[str], findings) -> dict:
    return {
        "tool": "repro.analysis",
        "schema_version": 1,
        "paths": paths,
        "rules": {cls.rule_id: cls.description for cls in ALL_RULES},
        "total": len(findings),
        "counts": dict(sorted(Counter(f.rule for f in findings).items())),
        "findings": [f.to_dict() for f in findings],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="FT-Cache concurrency & determinism linter",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint (default: src tests)")
    parser.add_argument("--format", choices=("human", "json"), default="human")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON findings artifact to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.rule_id}  {cls.description}")
        print("SUP001  suppression without a justification")
        print("SUP002  suppression whose rule never fires")
        return 0

    findings = lint_paths(args.paths)
    payload = _findings_json(list(args.paths), findings)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.format_human())
        n = len(findings)
        print(f"repro.analysis: {n} finding{'s' if n != 1 else ''} "
              f"in {len(args.paths)} path(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
