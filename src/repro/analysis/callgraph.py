"""Project-wide call graph for the interprocedural rules.

The graph is built once per lint run from every parsed module and shared
by RT003 (transitive lock-held-blocking), the RPC conformance rules, and
the static lock-order graph.  Resolution is deliberately conservative —
an unresolvable call simply produces no edge — and covers the call
shapes the runtime actually uses:

* ``f(...)`` — a module-level function of the same module, or a
  ``from mod import f`` import resolved to its defining module;
* ``self.m(...)`` — a method of the enclosing class or (project-local)
  base classes, walked in MRO order;
* ``self.attr.m(...)`` / ``param.m(...)`` — attribute/parameter types
  inferred from ``__init__`` assignments, annotations, and direct
  constructor calls; when the resolved method is defined on a class with
  project-local subclasses that override it, *all* overrides become
  edges (virtual dispatch is a union, not a guess);
* ``mod.f(...)`` — ``import mod`` / ``from pkg import mod`` aliases;
* ``ClassName(...)`` — an edge to ``ClassName.__init__``.

Qualified names are ``<dotted module>:<Class>.<method>`` (or
``<dotted module>:<function>``).  Module dotted names are derived from
the file path: everything from the last path segment that starts a run
of valid identifiers, with ``__init__`` dropped — so ``src/repro/runtime/
client.py`` indexes as ``src.repro.runtime.client`` and an absolute
import of ``repro.runtime.client`` resolves by *dotted-suffix* match.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .visitor import ModuleContext, dotted_name

__all__ = ["CallGraph", "FunctionInfo", "ClassInfo", "module_name_for_path", "iter_scope"]


def iter_scope(func_node: ast.AST):
    """Walk a function body WITHOUT descending into nested ``def``/``lambda``.

    A nested function's body runs when *it* is called (often on another
    thread — ``threading.Thread(target=_push)``), not where it is
    defined, so its calls and blocking operations must not be attributed
    to the enclosing function.
    """
    stack = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def module_name_for_path(path: str) -> str:
    """Dotted module name for a posix file path (best-effort, stable)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    # Keep the longest trailing run of identifier-shaped segments.
    tail: list[str] = []
    for seg in reversed(parts):
        if seg.isidentifier():
            tail.append(seg)
        else:
            break
    tail.reverse()
    return ".".join(tail) if tail else (parts[-1] if parts else path)


def annotation_class_names(node: Optional[ast.expr]) -> list[str]:
    """Candidate class names in an annotation: ``T``, ``"T"``,
    ``Optional[T]``, ``T | None``, ``a.b.T`` (terminal name kept whole)."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    if isinstance(node, (ast.Name, ast.Attribute)):
        dn = dotted_name(node)
        if dn and dn not in ("None",):
            names.append(dn)
    elif isinstance(node, ast.Subscript):  # Optional[T], list[T], dict[K, V]
        inner = node.slice
        elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        for e in elts:
            names.extend(annotation_class_names(e))
    elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # T | None
        names.extend(annotation_class_names(node.left))
        names.extend(annotation_class_names(node.right))
    return names


@dataclass
class FunctionInfo:
    """One function/method definition in the project."""

    qualname: str  # module:Class.method or module:func
    module: str  # dotted module name
    path: str  # source file path (as linted)
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    cls: Optional[str] = None  # "module:Class" of the owner, if a method

    @property
    def name(self) -> str:
        return self.node.name  # type: ignore[attr-defined]

    @property
    def display(self) -> str:
        tail = self.qualname.split(":", 1)[1]
        return tail


@dataclass
class ClassInfo:
    """One class definition: methods, base names, inferred attribute types."""

    qualname: str  # "module:Class"
    module: str
    path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: tuple[str, ...] = ()
    #: attribute name → candidate class qualnames (resolved lazily)
    attr_types: dict[str, tuple[str, ...]] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call edge out of a function."""

    caller: str  # qualname
    callees: tuple[str, ...]  # resolved candidate qualnames
    line: int
    call_text: str  # e.g. "self.policy.on_node_failed"
    node: ast.Call


class _ModuleIndex:
    """Per-module symbol table: imports, top-level functions, classes."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.name = module_name_for_path(ctx.path)
        self.package = self.name.rsplit(".", 1)[0] if "." in self.name else ""
        #: local alias → absolute dotted target (module or module.symbol)
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._scan()

    def _resolve_relative(self, level: int, module: Optional[str]) -> str:
        base = self.name.split(".")
        # level=1: current package; each extra level climbs one package
        base = base[: max(0, len(base) - level)]
        if module:
            base = base + module.split(".")
        return ".".join(base)

    def _scan(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                mod = (
                    self._resolve_relative(node.level, node.module)
                    if node.level
                    else (node.module or "")
                )
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{mod}.{alias.name}" if mod else alias.name
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{self.name}:{node.name}"
                self.functions[node.name] = FunctionInfo(
                    qualname=qn, module=self.name, path=self.ctx.path, node=node
                )
            elif isinstance(node, ast.ClassDef):
                self._scan_class(node)

    def _scan_class(self, node: ast.ClassDef) -> None:
        cq = f"{self.name}:{node.name}"
        info = ClassInfo(
            qualname=cq,
            module=self.name,
            path=self.ctx.path,
            node=node,
            base_names=tuple(n for n in (dotted_name(b) for b in node.bases) if n),
        )
        attr_ann: dict[str, list[str]] = {}
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{cq}.{item.name}"
                info.methods[item.name] = FunctionInfo(
                    qualname=qn, module=self.name, path=self.ctx.path, node=item, cls=cq
                )
            elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                attr_ann.setdefault(item.target.id, []).extend(
                    annotation_class_names(item.annotation)
                )
        init = info.methods.get("__init__")
        if init is not None:
            self._scan_init_attrs(init.node, attr_ann)
        info.attr_types = {k: tuple(v) for k, v in attr_ann.items() if v}
        self.classes[node.name] = info

    def _scan_init_attrs(self, init: ast.AST, attr_ann: dict[str, list[str]]) -> None:
        """Infer ``self.x`` types from ``__init__``: annotated parameters
        assigned straight through, and direct constructor calls."""
        args = init.args  # type: ignore[attr-defined]
        param_ann: dict[str, list[str]] = {}
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = annotation_class_names(a.annotation)
            if names:
                param_ann[a.arg] = names
        for stmt in ast.walk(init):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            tgt = stmt.targets[0]
            if not (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
            ):
                continue
            value = stmt.value
            # Unwrap `x if cond else Y(...)` conservatively: union both arms.
            candidates: list[ast.expr] = (
                [value.body, value.orelse] if isinstance(value, ast.IfExp) else [value]
            )
            for v in candidates:
                if isinstance(v, ast.Name) and v.id in param_ann:
                    attr_ann.setdefault(tgt.attr, []).extend(param_ann[v.id])
                elif isinstance(v, ast.Call):
                    cn = dotted_name(v.func)
                    if cn and cn.split(".")[-1][:1].isupper():
                        attr_ann.setdefault(tgt.attr, []).append(cn)


class CallGraph:
    """The project call graph plus the symbol index it was built from."""

    def __init__(self, contexts: Iterable[ModuleContext]):
        self.modules: dict[str, _ModuleIndex] = {}
        for ctx in contexts:
            idx = _ModuleIndex(ctx)
            self.modules[idx.name] = idx
        #: qualname → FunctionInfo for every function/method in the project
        self.functions: dict[str, FunctionInfo] = {}
        #: "module:Class" → ClassInfo
        self.classes: dict[str, ClassInfo] = {}
        for idx in self.modules.values():
            self.functions.update({f.qualname: f for f in idx.functions.values()})
            for cinfo in idx.classes.values():
                self.classes[cinfo.qualname] = cinfo
                self.functions.update(
                    {m.qualname: m for m in cinfo.methods.values()}
                )
        self._subclasses = self._build_subclass_map()
        #: caller qualname → call sites (resolved edges)
        self.calls: dict[str, list[CallSite]] = {}
        for fi in self.functions.values():
            self.calls[fi.qualname] = list(self._resolve_function_calls(fi))

    # -- module / class resolution --------------------------------------------------
    def resolve_module(self, dotted: str) -> Optional[_ModuleIndex]:
        """Match an absolute dotted module name by suffix (``repro.runtime
        .client`` finds ``src.repro.runtime.client``)."""
        if dotted in self.modules:
            return self.modules[dotted]
        for name, idx in self.modules.items():
            if name.endswith("." + dotted):
                return idx
        return None

    def resolve_class(self, name: str, scope: _ModuleIndex) -> Optional[ClassInfo]:
        """A class named ``name`` (possibly dotted) visible from ``scope``."""
        if "." not in name:
            if name in scope.classes:
                return scope.classes[name]
            target = scope.imports.get(name)
            if target:
                return self._class_by_abs(target)
            return None
        head, _, rest = name.partition(".")
        target = scope.imports.get(head)
        if target:
            return self._class_by_abs(f"{target}.{rest}")
        return None

    def _class_by_abs(self, dotted: str) -> Optional[ClassInfo]:
        if "." not in dotted:
            return None
        mod, cls = dotted.rsplit(".", 1)
        idx = self.resolve_module(mod)
        if idx is not None and cls in idx.classes:
            return idx.classes[cls]
        return None

    def mro(self, cinfo: ClassInfo) -> list[ClassInfo]:
        """Project-local linearisation: the class, then bases depth-first."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [cinfo]
        while stack:
            c = stack.pop(0)
            if c.qualname in seen:
                continue
            seen.add(c.qualname)
            out.append(c)
            scope = self.modules.get(c.module)
            if scope is None:
                continue
            for bname in c.base_names:
                b = self.resolve_class(bname, scope)
                if b is not None:
                    stack.append(b)
        return out

    def _build_subclass_map(self) -> dict[str, list[ClassInfo]]:
        sub: dict[str, list[ClassInfo]] = {}
        for cinfo in self.classes.values():
            scope = self.modules.get(cinfo.module)
            if scope is None:
                continue
            for bname in cinfo.base_names:
                b = self.resolve_class(bname, scope)
                if b is not None:
                    sub.setdefault(b.qualname, []).append(cinfo)
        return sub

    def subclasses(self, qualname: str) -> list[ClassInfo]:
        """Transitive project-local subclasses of ``module:Class``."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = list(self._subclasses.get(qualname, ()))
        while stack:
            c = stack.pop()
            if c.qualname in seen:
                continue
            seen.add(c.qualname)
            out.append(c)
            stack.extend(self._subclasses.get(c.qualname, ()))
        return out

    def lookup_method(self, cinfo: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for c in self.mro(cinfo):
            if name in c.methods:
                return c.methods[name]
        return None

    def _method_candidates(self, cinfo: ClassInfo, name: str) -> list[FunctionInfo]:
        """MRO hit plus every project-local subclass override (virtual
        dispatch as a union)."""
        out: list[FunctionInfo] = []
        hit = self.lookup_method(cinfo, name)
        if hit is not None:
            out.append(hit)
        for sub in self.subclasses(cinfo.qualname):
            if name in sub.methods:
                out.append(sub.methods[name])
        return out

    # -- call resolution ----------------------------------------------------------
    def _local_var_types(self, fi: FunctionInfo) -> dict[str, list[str]]:
        """Local name → candidate class names: parameter annotations,
        ``x: T = ...``, and ``x = ClassName(...)``."""
        types: dict[str, list[str]] = {}
        node = fi.node
        args = node.args  # type: ignore[attr-defined]
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            names = annotation_class_names(a.annotation)
            if names:
                types[a.arg] = names
        for stmt in iter_scope(node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names = annotation_class_names(stmt.annotation)
                if names:
                    types.setdefault(stmt.target.id, []).extend(names)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                tgt = stmt.targets[0]
                if isinstance(tgt, ast.Name) and isinstance(stmt.value, ast.Call):
                    cn = dotted_name(stmt.value.func)
                    if cn and cn.split(".")[-1][:1].isupper():
                        types.setdefault(tgt.id, []).append(cn)
        return types

    def _resolve_function_calls(self, fi: FunctionInfo):
        scope = self.modules.get(fi.module)
        if scope is None:
            return
        own_class = self.classes.get(fi.cls) if fi.cls else None
        var_types = self._local_var_types(fi)
        # iter_scope, not ast.walk: a call inside a nested def/lambda runs
        # when that closure is invoked (often on another thread), so it is
        # not an edge out of *this* function
        for call in iter_scope(fi.node):
            if not isinstance(call, ast.Call):
                continue
            name = dotted_name(call.func)
            if not name:
                continue
            callees = self.resolve_name(
                name, scope, own_class=own_class, var_types=var_types
            )
            if callees:
                yield CallSite(
                    caller=fi.qualname,
                    callees=tuple(dict.fromkeys(c.qualname for c in callees)),
                    line=call.lineno,
                    call_text=name,
                    node=call,
                )

    def resolve_name(
        self,
        name: str,
        scope: _ModuleIndex,
        own_class: Optional[ClassInfo] = None,
        var_types: Optional[dict[str, list[str]]] = None,
    ) -> list[FunctionInfo]:
        """Resolve a dotted callable name to project functions (may be [])."""
        parts = name.split(".")
        var_types = var_types or {}

        # self.m() / self.attr.m()
        if parts[0] == "self" and own_class is not None:
            if len(parts) == 2:
                return self._method_candidates(own_class, parts[1])
            if len(parts) == 3:
                attr, meth = parts[1], parts[2]
                out: list[FunctionInfo] = []
                for tname in own_class.attr_types.get(attr, ()):
                    cinfo = self.resolve_class(tname, scope) or self._class_by_abs(tname)
                    if cinfo is not None:
                        out.extend(self._method_candidates(cinfo, meth))
                return out
            return []

        # var.m() where var has an inferred type
        if len(parts) == 2 and parts[0] in var_types:
            out = []
            for tname in var_types[parts[0]]:
                cinfo = self.resolve_class(tname, scope) or self._class_by_abs(tname)
                if cinfo is not None:
                    out.extend(self._method_candidates(cinfo, parts[1]))
            return out

        # f() — local function, imported function, or constructor
        if len(parts) == 1:
            if name in scope.functions:
                return [scope.functions[name]]
            if name in scope.classes:
                init = self.lookup_method(scope.classes[name], "__init__")
                return [init] if init else []
            target = scope.imports.get(name)
            if target:
                return self._resolve_absolute(target)
            return []

        # mod.f() / pkg.mod.f() through an import alias
        head = parts[0]
        target = scope.imports.get(head)
        if target:
            return self._resolve_absolute(".".join([target, *parts[1:]]))
        return []

    def _resolve_absolute(self, dotted: str) -> list[FunctionInfo]:
        """``pkg.mod.f`` or ``pkg.mod.Class`` → project functions."""
        if "." in dotted:
            mod, sym = dotted.rsplit(".", 1)
            idx = self.resolve_module(mod)
            if idx is not None:
                if sym in idx.functions:
                    return [idx.functions[sym]]
                if sym in idx.classes:
                    init = self.lookup_method(idx.classes[sym], "__init__")
                    return [init] if init else []
        return []

    # -- views ---------------------------------------------------------------------
    @property
    def contexts(self) -> list[ModuleContext]:
        return [idx.ctx for idx in self.modules.values()]

    def context_for(self, path: str) -> Optional[ModuleContext]:
        for idx in self.modules.values():
            if idx.ctx.path == path:
                return idx.ctx
        return None

    def callees_of(self, qualname: str) -> list[CallSite]:
        return self.calls.get(qualname, [])

    def function_for_node(self, path: str, node: ast.AST) -> Optional[FunctionInfo]:
        for fi in self.functions.values():
            if fi.path == path and fi.node is node:
                return fi
        return None

    def functions_in(self, path: str) -> list[FunctionInfo]:
        return [fi for fi in self.functions.values() if fi.path == path]
