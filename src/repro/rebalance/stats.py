"""Join observability: the report a completed (or aborted) join leaves.

One :class:`JoinReport` per join attempt, combining the plan summary, the
warmup's measured traffic (where each key's bytes actually came from, how
often the mover's bounded queue pushed back), and the cutover epochs.
``to_dict()`` is the BENCH ``rebalance`` block (schema v3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .ringdiff import MovePlan

__all__ = ["JoinReport"]


@dataclass
class JoinReport:
    """Everything one join attempt did, for bench JSON and assertions."""

    node: object
    state: str = "PLANNED"
    plan: Optional[MovePlan] = None
    #: keys successfully pushed into the joining node's mover
    warmed_keys: int = 0
    warmed_bytes: int = 0
    #: where the warmup bytes came from (owner cache vs owner-side PFS
    #: fallthrough vs coordinator's direct PFS fallback)
    source_cache_reads: int = 0
    source_pfs_reads: int = 0
    pfs_fallback_reads: int = 0
    #: transfers the joining node's mover refused (closed) — should be 0
    transfers_rejected: int = 0
    #: times the coordinator paused because the mover queue was at its
    #: high watermark (the "bounded" in bounded rebalancing, observable)
    throttle_pauses: int = 0
    warmup_seconds: float = 0.0
    planned_epoch: int = 0
    cutover_epoch: int = 0
    abort_reason: str = ""
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "node": self.node,
            "state": self.state,
            "warmed_keys": self.warmed_keys,
            "warmed_bytes": self.warmed_bytes,
            "source_cache_reads": self.source_cache_reads,
            "source_pfs_reads": self.source_pfs_reads,
            "pfs_fallback_reads": self.pfs_fallback_reads,
            "transfers_rejected": self.transfers_rejected,
            "throttle_pauses": self.throttle_pauses,
            "warmup_seconds": self.warmup_seconds,
            "planned_epoch": self.planned_epoch,
            "cutover_epoch": self.cutover_epoch,
        }
        if self.plan is not None:
            out["plan"] = self.plan.to_dict()
        if self.abort_reason:
            out["abort_reason"] = self.abort_reason
        out.update(self.extras)
        return out
