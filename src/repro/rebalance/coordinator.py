"""Join state machine: PLANNED → WARMING → SERVING, with ABORTED rollback.

The coordinator owns exactly one join attempt and drives it through three
irreversible-only-forward phases:

``PLANNED``
    The :class:`~repro.rebalance.ringdiff.MovePlan` exists and has been
    announced to the joining node (``OP_JOIN_PLAN``), but no placement
    anywhere knows the node.  Every client still routes every key to its
    old owner.
``WARMING``
    Moved keys are backfilled into the joining node: each key is read
    from its *current* owner (whose cache most likely holds it; a miss
    there falls through to the PFS server-side), with a direct PFS read
    as the coordinator's last resort, then pushed via ``OP_TRANSFER``
    into the node's bounded ``DataMoverPool``.  The pool's queue depth is
    the rate limit: when the queue reports at or above the high
    watermark, the coordinator *pauses* (counted, observable) — warmup
    yields to the serving hot path instead of competing with it.
``SERVING``
    The cutover callback flips membership + every client placement under
    a new ring epoch.  Only now can any lookup route to the node — and
    its cache already holds the moved keys, so first reads are warm.

Any failure before SERVING transitions to ``ABORTED`` and runs the
rollback callback.  Because the node never entered a placement before
cutover, rollback has nothing to unwind in routing state — abort is
always safe, which is the point of ordering the phases this way.

Locking: ``named_lock("rebalance-coord")`` guards only the state field;
it is never held across socket I/O, PFS reads, or throttle sleeps.
"""

from __future__ import annotations

import contextlib
import enum
import time
from typing import Callable, Optional

from ..analysis import lockwitness
from ..obs.events import get_event_log
from .ringdiff import MovePlan
from .stats import JoinReport

__all__ = ["JoinCoordinator", "JoinState", "JoinAborted"]

#: mover queue occupancy (fraction of depth) above which warmup pauses
DEFAULT_THROTTLE_FRACTION = 0.75


class JoinState(enum.Enum):
    PLANNED = "PLANNED"
    WARMING = "WARMING"
    SERVING = "SERVING"
    ABORTED = "ABORTED"


#: legal forward transitions; anything else is a coordinator bug
_TRANSITIONS = {
    JoinState.PLANNED: {JoinState.WARMING, JoinState.ABORTED},
    JoinState.WARMING: {JoinState.SERVING, JoinState.ABORTED},
    JoinState.SERVING: set(),
    JoinState.ABORTED: set(),
}


class JoinAborted(RuntimeError):
    """The join was rolled back before cutover; placement is unchanged."""


class JoinCoordinator:
    """Drives one node join through plan → warm → cutover.

    Parameters
    ----------
    plan:
        The moved-key plan from :class:`~repro.rebalance.ringdiff.RingDiff`.
    control:
        An :class:`~repro.runtime.client.FTCacheClient` whose address book
        knows the joining node and every source owner.  Only explicit-node
        RPCs are used (``read_from``/``transfer``/``join_plan``); the
        client's placement policy is never consulted, so the joining node
        being absent from it is exactly right.
    pfs:
        Direct PFS access for the last-resort read path.
    cutover:
        Zero-argument callback that atomically admits the node into
        membership + placements; returns the new ring epoch.  Runs only
        after every planned key was offered to the joining node.
    rollback:
        Optional callback run on abort (e.g. shut the spawned server
        down).  Routing state needs no rollback by construction.
    queue_depth:
        The joining node's mover queue depth (the bound being respected).
    """

    def __init__(
        self,
        plan: MovePlan,
        control,
        pfs,
        cutover: Callable[[], int],
        rollback: Optional[Callable[[], None]] = None,
        queue_depth: int = 64,
        throttle_fraction: float = DEFAULT_THROTTLE_FRACTION,
        throttle_sleep: float = 0.005,
        max_throttle_pauses: int = 10_000,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if not 0.0 < throttle_fraction <= 1.0:
            raise ValueError(f"throttle_fraction must be in (0, 1], got {throttle_fraction}")
        self.plan = plan
        self.control = control
        self.pfs = pfs
        self._cutover = cutover
        self._rollback = rollback
        self.queue_depth = queue_depth
        self._watermark = max(1, int(queue_depth * throttle_fraction))
        self._throttle_sleep = throttle_sleep
        self._max_throttle_pauses = max_throttle_pauses
        self._state = JoinState.PLANNED
        self._state_lock = lockwitness.named_lock("rebalance-coord")
        self.report = JoinReport(node=plan.node, plan=plan, planned_epoch=plan.planned_epoch)

    @property
    def state(self) -> JoinState:
        with self._state_lock:
            return self._state

    def _transition(self, new: JoinState) -> None:
        with self._state_lock:
            if new not in _TRANSITIONS[self._state]:
                raise RuntimeError(f"illegal join transition {self._state.name} → {new.name}")
            old, self._state = self._state, new
        self.report.state = new.value
        get_event_log().emit(
            "join_state", node=self.plan.node, from_state=old.value, to_state=new.value
        )

    # -- phases -----------------------------------------------------------------
    def run(self) -> JoinReport:
        """Execute the whole join; raises :class:`JoinAborted` on failure."""
        try:
            self._announce()
            self._transition(JoinState.WARMING)
            t0 = time.perf_counter()
            self._warm()
            self.report.warmup_seconds = time.perf_counter() - t0
            self.report.cutover_epoch = self._cutover()
            self._transition(JoinState.SERVING)
        except JoinAborted:
            raise
        except Exception as exc:
            self._abort(f"{type(exc).__name__}: {exc}")
            raise JoinAborted(self.report.abort_reason) from exc
        return self.report

    def _announce(self) -> None:
        """Tell the joining node what is coming (plan visibility + liveness
        check: an unreachable candidate aborts before any data moves)."""
        ok = self.control.join_plan(
            self.plan.node,
            planned_keys=self.plan.moved_keys,
            planned_bytes=self.plan.moved_bytes,
            epoch=self.plan.planned_epoch,
        )
        if not ok:
            self._abort("joining node did not acknowledge the move plan")
            raise JoinAborted(self.report.abort_reason)

    def _fetch(self, path: str, source) -> Optional[bytes]:
        """Bytes for one moved key: owner first, PFS as last resort."""
        from ..runtime.client import ReadError

        try:
            outcome = self.control.read_from(source, path)
        except ReadError:
            outcome = None
        if outcome is not None:
            data, src = outcome
            if src == "pfs":
                self.report.source_pfs_reads += 1
            else:
                self.report.source_cache_reads += 1
            return data
        try:
            data = self.pfs.read(path)
        except FileNotFoundError:
            return None  # key vanished between plan and warmup: skip
        self.report.pfs_fallback_reads += 1
        return data

    def _trace_key(self, path: str, source) -> contextlib.AbstractContextManager:
        """Per-key warmup trace via the control client's tracer; a control
        object without ``trace_op`` (unit-test stubs) runs untraced."""
        trace_op = getattr(self.control, "trace_op", None)
        if trace_op is None:
            return contextlib.nullcontext()
        return trace_op("join.warm_key", path=path, source=source)

    def _warm(self) -> None:
        for path, source in self.plan.moves:
            # One trace per moved key: the read_from + transfer pair (and
            # their server-side stages on both the source and the joining
            # node) stitch into a single cross-node warmup trace.
            with self._trace_key(path, source):
                data = self._fetch(path, source)
                if data is None:
                    self.report.extras["missing_keys"] = (
                        self.report.extras.get("missing_keys", 0) + 1
                    )
                    continue
                resp = self.control.transfer(self.plan.node, path, data)
            if resp is None:
                raise RuntimeError(f"joining node unreachable during warmup ({path!r})")
            if not resp.get("accepted", False):
                self.report.transfers_rejected += 1
                continue
            self.report.warmed_keys += 1
            self.report.warmed_bytes += len(data)
            self._throttle(int(resp.get("queue_len", 0)))

    def _throttle(self, queue_len: int) -> None:
        """Pause while the joining node's mover queue is above watermark —
        the bounded pool, not the coordinator, sets the backfill rate."""
        pauses = 0
        while queue_len >= self._watermark and pauses < self._max_throttle_pauses:
            time.sleep(self._throttle_sleep)
            pauses += 1
            self.report.throttle_pauses += 1
            stat = self.control.server_stat(self.plan.node)
            if stat is None:
                break  # liveness handled by the next transfer attempt
            queue_len = int(stat.get("mover_queue_len", 0))

    def _abort(self, reason: str) -> None:
        self.report.abort_reason = reason
        self._transition(JoinState.ABORTED)
        if self._rollback is not None:
            self._rollback()
