"""Elastic scale-out: planned, bounded, zero-client-error node joins.

The paper's hash-ring fault tolerance handles node *loss*; this package
adds the symmetric operation — node *addition under load* — as a planned
three-phase protocol rather than a restart:

1. **Plan** (:class:`~repro.rebalance.ringdiff.RingDiff`) — snapshot the
   live ring, compute exactly which keys the candidate would steal
   (primary-owner changes only; minimal movement is the ring's promise
   and the plan proves it per-join), with per-source-node key/byte counts
   and the predicted vs theoretical ``weight / total_weight`` fraction.
2. **Warm** (:class:`~repro.rebalance.coordinator.JoinCoordinator`) —
   backfill the planned keys into the joining node *before* it owns
   anything, reading from current owners (falling back to the PFS) and
   installing via the node's bounded ``DataMoverPool`` so a join can
   never stampede the PFS or the hot path.
3. **Cutover** — flip the node into ``MembershipView`` and every client's
   placement under a new ring epoch; in-flight reads still route to old
   owners, which keep serving the moved keys from their caches, so the
   transition is zero-client-error by construction.

A failed warmup rolls back (``ABORTED``): the candidate never entered any
placement, so rollback is discarding it.
"""

from .coordinator import JoinAborted, JoinCoordinator, JoinState
from .epoch import RingEpoch
from .ringdiff import MovePlan, RingDiff
from .stats import JoinReport

__all__ = [
    "RingDiff",
    "MovePlan",
    "RingEpoch",
    "JoinCoordinator",
    "JoinState",
    "JoinAborted",
    "JoinReport",
]
