"""Join planning: diff the ring against its post-join self, before joining.

A node addition on a consistent-hashing ring moves exactly the keys whose
primary owner becomes the new node — nothing else (minimal movement, the
ring's core promise).  :class:`RingDiff` turns that promise into an
explicit, auditable artifact: it snapshots the live ring, computes owners
with and without the candidate (via the non-mutating
:meth:`~repro.core.hash_ring.HashRing.lookup_hashes_including` view, so
the live ring is never touched), and emits a :class:`MovePlan` listing
every moved key with its current owner, per-source key/byte counts, and
the predicted vs theoretical ``weight / total_weight`` moved fraction.

The plan is what makes the join *bounded*: the coordinator warms exactly
``plan.moves`` — no scanning, no guessing — and the bench report can
assert the measured fraction against ``theoretical_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Optional, Sequence

from ..core.hash_ring import HashRing
from ..core.hashing import bulk_hash64

__all__ = ["RingDiff", "MovePlan"]

NodeId = Hashable


@dataclass(frozen=True)
class MovePlan:
    """Exact moved-key plan for one candidate join."""

    node: NodeId
    weight: float
    #: (path, current owner) for every key whose primary owner changes
    moves: tuple[tuple[str, NodeId], ...]
    total_keys: int
    total_bytes: int
    keys_by_source: dict = field(default_factory=dict)
    bytes_by_source: dict = field(default_factory=dict)
    #: fraction of the examined keyspace the plan actually moves
    predicted_fraction: float = 0.0
    #: weight / total_weight — what consistent hashing promises
    theoretical_fraction: float = 0.0
    #: ring epoch the plan was computed against (staleness check at cutover)
    planned_epoch: int = 0

    @property
    def moved_keys(self) -> int:
        return len(self.moves)

    @property
    def moved_bytes(self) -> int:
        return sum(self.bytes_by_source.values())

    def to_dict(self) -> dict:
        """JSON-ready summary (the BENCH ``rebalance.plan`` block)."""
        return {
            "node": self.node,
            "weight": self.weight,
            "moved_keys": self.moved_keys,
            "moved_bytes": self.moved_bytes,
            "total_keys": self.total_keys,
            "total_bytes": self.total_bytes,
            "keys_by_source": {str(k): v for k, v in self.keys_by_source.items()},
            "bytes_by_source": {str(k): v for k, v in self.bytes_by_source.items()},
            "predicted_fraction": self.predicted_fraction,
            "theoretical_fraction": self.theoretical_fraction,
            "planned_epoch": self.planned_epoch,
        }


class RingDiff:
    """Computes :class:`MovePlan`\\ s against a frozen ring snapshot."""

    def __init__(self, ring: HashRing):
        #: private clone — planning must see a stable ring even if the
        #: live one keeps mutating under traffic
        self.ring = ring.clone()

    def plan_join(
        self,
        node: NodeId,
        keys: Sequence[str],
        weight: Optional[float] = None,
        sizes: Optional[Mapping[str, int]] = None,
        planned_epoch: int = 0,
    ) -> MovePlan:
        """Moved-key plan for admitting ``node`` at ``weight``.

        ``keys`` is the key population to plan over (for the local
        cluster: every dataset path).  ``sizes`` maps key → bytes; when
        omitted, byte counts are zero and the plan is key-count only.
        """
        if node in self.ring.nodes:
            raise ValueError(f"node {node!r} already on the ring")
        w = float(weight) if weight is not None else self.ring.weight_of(node)
        keys = list(keys)
        if not keys:
            total_w = sum(self.ring.weight_of(n) for n in self.ring.nodes) + w
            return MovePlan(
                node=node, weight=w, moves=(), total_keys=0, total_bytes=0,
                theoretical_fraction=w / total_w, planned_epoch=planned_epoch,
            )
        hashes = bulk_hash64(keys, self.ring.algo)
        before = self.ring.lookup_hashes(hashes)
        after = self.ring.lookup_hashes_including(hashes, node, weight=weight)
        moved_idx = (before != after).nonzero()[0]
        moves = []
        keys_by_source: dict = {}
        bytes_by_source: dict = {}
        for i in moved_idx:
            path, source = keys[int(i)], before[int(i)]
            moves.append((path, source))
            keys_by_source[source] = keys_by_source.get(source, 0) + 1
            if sizes is not None:
                bytes_by_source[source] = bytes_by_source.get(source, 0) + int(
                    sizes.get(path, 0)
                )
        total_w = sum(self.ring.weight_of(n) for n in self.ring.nodes) + w
        total_bytes = sum(int(sizes.get(p, 0)) for p in keys) if sizes is not None else 0
        return MovePlan(
            node=node,
            weight=w,
            moves=tuple(moves),
            total_keys=len(keys),
            total_bytes=total_bytes,
            keys_by_source=keys_by_source,
            bytes_by_source=bytes_by_source,
            predicted_fraction=len(moves) / len(keys),
            theoretical_fraction=w / total_w,
            planned_epoch=planned_epoch,
        )
