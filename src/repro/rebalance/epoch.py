"""Versioned ring epoch: a monotone counter naming each placement state.

Every membership change (join cutover, failure declaration, repair)
advances the epoch, so any component can cheaply answer "has placement
changed since I looked?" without comparing rings.  The join coordinator
records the epoch at plan time and at cutover; a client admitted at epoch
``e`` knows every pooled connection opened before ``e`` may be stale —
the same lazy-invalidation idea as the client's per-node connection
epochs, lifted to the whole placement.
"""

from __future__ import annotations

from ..analysis import lockwitness
from ..obs.events import get_event_log

__all__ = ["RingEpoch"]


class RingEpoch:
    """Thread-safe monotone epoch counter for placement versions."""

    def __init__(self, initial: int = 0):
        if initial < 0:
            raise ValueError(f"initial epoch must be >= 0, got {initial}")
        self._value = int(initial)
        # Guards only the counter — never held across I/O.
        self._lock = lockwitness.named_lock("ring-epoch")

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def advance(self) -> int:
        """Bump and return the new epoch (one per placement change)."""
        with self._lock:
            self._value += 1
            value = self._value
        get_event_log().emit("ring_epoch", epoch=value)
        return value

    def __repr__(self) -> str:  # pragma: no cover
        return f"RingEpoch({self.value})"
