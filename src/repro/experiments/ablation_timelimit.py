"""Ablation ``timelimit``: job time-limit violations (Sec IV-A.2).

The paper argues that PFS redirection threatens runtime predictability:
"even a modest 5–10% increase in runtime could push the job beyond its
allocated time slot, resulting in premature termination by the job
scheduler".  This experiment quantifies that risk: for a job whose SLURM
limit was provisioned with a fixed margin over the no-failure runtime,
what fraction of failure-bearing runs blow the limit, per policy?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.config import frontier
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from .common import ExperimentScale
from .report import heading, render_table

__all__ = [
    "TimeLimitRow",
    "TimeLimitAblationResult",
    "run_timelimit_ablation",
    "format_timelimit_ablation",
]


@dataclass(frozen=True)
class TimeLimitRow:
    n_nodes: int
    margin_pct: float
    #: fraction of failure-bearing runs exceeding the limit, per policy
    violation_rate: dict


@dataclass
class TimeLimitAblationResult:
    rows: list[TimeLimitRow]
    n_failures: int
    trials: int


def run_timelimit_ablation(
    scale: Optional[ExperimentScale] = None,
    margins_pct: tuple[float, ...] = (10.0, 25.0, 50.0, 100.0, 200.0, 400.0),
    trials: int = 10,
) -> TimeLimitAblationResult:
    """Violation probability vs provisioning margin, per FT policy.

    The limit is ``no-failure runtime × (1 + margin)``; each trial runs
    the paper's five-random-failures protocol with a fresh seed.
    """
    scale = scale if scale is not None else ExperimentScale.quick()
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    cfg = scale.training_config()
    rows = []
    for n in scale.node_counts:
        cc = frontier(n)
        base = FluidTrainingModel(cc, dataset, "FT w/ NVMe", cfg, 0, seed=scale.seed).run()
        totals = {"FT w/ PFS": [], "FT w/ NVMe": []}
        for policy in totals:
            for t in range(trials):
                res = FluidTrainingModel(
                    cc, dataset, policy, cfg, scale.n_failures, seed=scale.seed + 77 * t
                ).run()
                totals[policy].append(res.total_time)
        for margin in margins_pct:
            limit = base.total_time * (1 + margin / 100.0)
            rows.append(
                TimeLimitRow(
                    n_nodes=n,
                    margin_pct=margin,
                    violation_rate={
                        p: float(np.mean(np.asarray(ts) > limit)) for p, ts in totals.items()
                    },
                )
            )
    return TimeLimitAblationResult(rows=rows, n_failures=scale.n_failures, trials=trials)


def format_timelimit_ablation(result: TimeLimitAblationResult) -> str:
    out = [
        heading(
            f"Time-limit ablation — violation probability with {result.n_failures} failures "
            f"({result.trials} trials/cell)"
        )
    ]
    rows = [
        (
            r.n_nodes,
            f"+{r.margin_pct:.0f}%",
            f"{100 * r.violation_rate['FT w/ PFS']:.0f}%",
            f"{100 * r.violation_rate['FT w/ NVMe']:.0f}%",
        )
        for r in result.rows
    ]
    out.append(
        render_table(["Nodes", "Limit margin", "FT w/ PFS violates", "FT w/ NVMe violates"], rows)
    )
    out.append("")
    out.append(
        "Sec IV-A.2 quantified: with tight allocations, PFS redirection turns node\n"
        "failures into scheduler kills far more often than hash-ring recaching."
    )
    return "\n".join(out)
