"""Ablation ``placement``: the Sec IV-B strategy comparison.

The paper argues for the hash ring over three alternatives it discusses:
hash-mod-N (original HVAC), "multiple hash functions" (realised here as
rendezvous/HRW hashing), and range partitioning [19].  This experiment
quantifies the argument on two axes:

* **data movement on failure** — keys relocated when one node dies
  (lost keys must move; *collateral* moves are pure waste);
* **lookup/update cost** — bulk-lookup throughput and the membership-
  update cost, including the paper's ``std::map`` ring
  (:class:`~repro.core.avl.TreeHashRing`) vs the NumPy-array ring.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core import (
    HashRing,
    MovementReport,
    RangePartition,
    RendezvousHash,
    StaticHash,
    TreeHashRing,
    bulk_hash64,
    movement_on_removal,
)
from .report import heading, render_table

__all__ = ["PlacementAblationResult", "run_placement_ablation", "format_placement_ablation"]


@dataclass
class PlacementAblationResult:
    movement: list[MovementReport]
    n_nodes: int
    n_keys: int
    #: name -> (bulk lookup seconds for n_keys, membership-update seconds)
    timing: dict


def _strategies(n_nodes: int, vnodes: int):
    return {
        "HashRing (paper)": HashRing(nodes=range(n_nodes), vnodes_per_node=vnodes),
        "TreeHashRing (std::map)": TreeHashRing(nodes=range(n_nodes), vnodes_per_node=vnodes),
        "StaticHash (orig. HVAC)": StaticHash(nodes=range(n_nodes)),
        "Rendezvous (multi-hash)": RendezvousHash(nodes=range(n_nodes)),
        "Range (rebalance)": RangePartition(nodes=range(n_nodes), rebalance=True),
        "Range (absorb)": RangePartition(nodes=range(n_nodes), rebalance=False),
    }


def run_placement_ablation(
    n_nodes: int = 64, n_keys: int = 100_000, vnodes: int = 100, victim: Optional[int] = None
) -> PlacementAblationResult:
    key_hashes = bulk_hash64(np.arange(n_keys))
    victim = n_nodes // 2 if victim is None else victim
    movement = []
    timing = {}
    for name, strategy in _strategies(n_nodes, vnodes).items():
        if isinstance(strategy, TreeHashRing):
            # Tree ring has no vectorised bulk path; measure it on a slice
            # and report movement from its array twin (they are equivalent,
            # which the property tests assert).
            t0 = time.perf_counter()
            for h in key_hashes[:2000]:
                strategy.lookup_hash(int(h))
            lookup_s = (time.perf_counter() - t0) * (n_keys / 2000)
            t0 = time.perf_counter()
            strategy.remove_node(victim)
            strategy.add_node(victim)
            update_s = (time.perf_counter() - t0) / 2
            timing[name] = (lookup_s, update_s)
            continue
        movement.append(movement_on_removal(strategy, key_hashes, victim, label=name))
        t0 = time.perf_counter()
        strategy.lookup_hashes(key_hashes)
        lookup_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        strategy.remove_node(victim)
        strategy.add_node(victim)
        update_s = (time.perf_counter() - t0) / 2
        timing[name] = (lookup_s, update_s)
    return PlacementAblationResult(
        movement=movement, n_nodes=n_nodes, n_keys=n_keys, timing=timing
    )


def format_placement_ablation(result: PlacementAblationResult) -> str:
    out = [
        heading(
            f"Placement ablation — one failure among {result.n_nodes} nodes, "
            f"{result.n_keys} keys"
        )
    ]
    rows = [
        (
            m.policy,
            m.lost_keys,
            m.collateral_moves,
            f"{100 * m.movement_fraction:.1f}%",
            "yes" if m.is_minimal else "NO",
        )
        for m in result.movement
    ]
    out.append(
        render_table(["Strategy", "Lost keys", "Collateral moves", "Total moved", "Minimal"], rows)
    )
    out.append("")
    trows = [
        (name, f"{lookup * 1e3:.1f} ms", f"{update * 1e3:.2f} ms")
        for name, (lookup, update) in result.timing.items()
    ]
    out.append(render_table(["Strategy", f"Bulk lookup ({result.n_keys} keys)", "Membership update"], trows))
    out.append("")
    out.append(
        "The ring moves only the failed node's keys (minimal); hash-mod-N moves\n"
        "nearly everything — the Sec IV-B motivation for consistent hashing."
    )
    return "\n".join(out)
