"""Experiment ``fig6a``: in-depth analysis of the victim epoch (paper Fig 6a).

One node failure is injected partway through a chosen epoch; the chart
compares that epoch's duration across three scenarios at 64–1024 nodes:

* no failure (shortest);
* PFS redirection post-failure — "significantly longer epoch durations,
  particularly at smaller scales (64–128 nodes)";
* NVMe recaching — "times approaching those of the no-failure condition
  as the node count increases".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.config import frontier
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from .common import ExperimentScale
from .report import heading, minutes, render_table

__all__ = ["Fig6aRow", "Fig6aResult", "run_fig6a", "format_fig6a"]

#: the epoch the failure lands in (after the cache is fully populated)
VICTIM_EPOCH = 2


@dataclass
class Fig6aRow:
    n_nodes: int
    no_failure: float
    pfs_redirect: float
    nvme_recache: float

    @property
    def pfs_penalty_pct(self) -> float:
        return 100.0 * (self.pfs_redirect - self.no_failure) / self.no_failure

    @property
    def nvme_penalty_pct(self) -> float:
        return 100.0 * (self.nvme_recache - self.no_failure) / self.no_failure


@dataclass
class Fig6aResult:
    rows: list[Fig6aRow]
    victim_epoch: int = VICTIM_EPOCH
    scale_name: str = "paper"


class _PinnedFailureModel(FluidTrainingModel):
    """Fluid model with the failure pinned to (epoch, fraction)."""

    def __init__(self, *args, pin_epoch: int = VICTIM_EPOCH, pin_frac: float = 0.4, **kwargs):
        self._pin = (pin_epoch, pin_frac)
        super().__init__(*args, **kwargs)

    def _draw_failure_plan(self, rng):
        if self.n_failures <= 0:
            return []
        return [self._pin]


def _victim_epoch_time(cc, dataset, policy: str, cfg, seed: int, pin_epoch: int) -> float:
    """Victim-epoch *processing* time: I/O + compute + cache-layer recovery.

    The Horovod tear-down/restart mechanics (detect + rendezvous) are a
    framework cost identical across cache policies; Fig 6(a) analyses the
    epoch's data-path behaviour, so we report the epoch duration with the
    elastic-restart mechanics subtracted (the TTL-based cache-layer
    detection cost remains included — it *is* part of the cache design).
    """
    m = _PinnedFailureModel(
        cc, dataset, policy, cfg, n_failures=1, seed=seed, pin_epoch=pin_epoch, pin_frac=0.4
    )
    r = m.run()
    total = r.epoch_times[pin_epoch]
    records = [rec for rec in r.timeline.epochs if rec.epoch == pin_epoch]
    for rec in records:
        mechanics = rec.restarts * (
            cfg.elastic.detect_time + cfg.elastic.restart_time(max(1, rec.n_nodes - 1))
        )
        total -= mechanics
    return total


def run_fig6a(scale: Optional[ExperimentScale] = None) -> Fig6aResult:
    scale = scale if scale is not None else ExperimentScale.paper()
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    cfg = scale.training_config()
    pin_epoch = min(VICTIM_EPOCH, cfg.epochs - 1)
    rows = []
    for n in scale.node_counts:
        cc = frontier(n)
        nofail, pfs_t, nvme_t = [], [], []
        for rep in range(scale.repeats):
            seed = scale.seed + 1000 * rep
            base = FluidTrainingModel(cc, dataset, "FT w/ NVMe", cfg, n_failures=0, seed=seed).run()
            nofail.append(base.epoch_times[pin_epoch])
            pfs_t.append(_victim_epoch_time(cc, dataset, "FT w/ PFS", cfg, seed, pin_epoch))
            nvme_t.append(_victim_epoch_time(cc, dataset, "FT w/ NVMe", cfg, seed, pin_epoch))
        rows.append(
            Fig6aRow(
                n_nodes=n,
                no_failure=float(np.mean(nofail)),
                pfs_redirect=float(np.mean(pfs_t)),
                nvme_recache=float(np.mean(nvme_t)),
            )
        )
    return Fig6aResult(rows=rows, victim_epoch=pin_epoch, scale_name=scale.name)


def format_fig6a(result: Fig6aResult) -> str:
    out = [
        heading(
            f"Fig 6(a) — victim-epoch duration (failure mid-epoch {result.victim_epoch}, "
            f"scale={result.scale_name})"
        )
    ]
    rows = [
        (
            r.n_nodes,
            minutes(r.no_failure, 2),
            f"{minutes(r.pfs_redirect, 2)} (+{r.pfs_penalty_pct:.0f}%)",
            f"{minutes(r.nvme_recache, 2)} (+{r.nvme_penalty_pct:.0f}%)",
        )
        for r in result.rows
    ]
    out.append(render_table(["Nodes", "No failure", "PFS redirection", "NVMe recache"], rows))
    out.append("")
    out.append(
        "Expected shape: no-failure shortest; PFS redirection worst, especially at 64-128\n"
        "nodes; NVMe recaching approaches the no-failure time as node count grows."
    )
    return "\n".join(out)
