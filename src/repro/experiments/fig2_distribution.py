"""Experiment ``fig2``: failure-type distribution (paper Fig 2).

(a) by allocation size — Node Fail share must *rise* with node count,
    reaching ~46% (and Node Fail + Timeout ~78.6%) in the 7,750–9,300
    bucket;
(b) by elapsed time — the type mix must stay roughly flat ("the duration
    of runtime does not significantly affect the ratio of failure types").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..failures import (
    BucketShare,
    SlurmLog,
    distribution_by_elapsed,
    distribution_by_nodes,
    generate_frontier_log,
)
from .report import heading, render_table

__all__ = ["Fig2Result", "run_fig2", "format_fig2", "PAPER_TOP_BUCKET"]

#: published numbers for the largest allocation bucket
PAPER_TOP_BUCKET = {"node_fail_pct": 46.04, "node_fail_plus_timeout_pct": 78.60}


@dataclass(frozen=True)
class Fig2Result:
    by_nodes: list[BucketShare]
    by_elapsed: list[BucketShare]

    @property
    def top_bucket(self) -> BucketShare:
        populated = [b for b in self.by_nodes if b.n_failures > 0]
        return populated[-1]

    def node_fail_trend_increasing(self) -> bool:
        """Is Node Fail share (weakly) trending upward across size buckets?"""
        shares = [b.share["NODE_FAIL"] for b in self.by_nodes if b.n_failures >= 50]
        if len(shares) < 2:
            return False
        slope = np.polyfit(np.arange(len(shares)), shares, 1)[0]
        return bool(slope > 0)

    def elapsed_mix_flat(self, tolerance_pts: float = 15.0) -> bool:
        """Does each type's share vary by less than ``tolerance_pts`` across
        the well-populated elapsed buckets (Fig 2b's 'duration does not
        significantly affect the ratio of failure types')?  Sparse buckets
        (a few hundred jobs) are skipped — their shares are noise."""
        populated = [b for b in self.by_elapsed if b.n_failures >= 1000]
        for t in ("JOB_FAIL", "TIMEOUT", "NODE_FAIL"):
            vals = [b.share[t] for b in populated]
            if max(vals) - min(vals) > tolerance_pts:
                return False
        return True


def run_fig2(seed: int = 2024, log: SlurmLog | None = None) -> Fig2Result:
    if log is None:
        log = generate_frontier_log(seed=seed)
    return Fig2Result(by_nodes=distribution_by_nodes(log), by_elapsed=distribution_by_elapsed(log))


def _rows(buckets: list[BucketShare]):
    return [
        (
            b.label,
            b.n_failures,
            f"{b.share['JOB_FAIL']:.1f}%",
            f"{b.share['TIMEOUT']:.1f}%",
            f"{b.share['NODE_FAIL']:.1f}%",
        )
        for b in buckets
    ]


def format_fig2(result: Fig2Result) -> str:
    out = [heading("Fig 2(a) — failure-type mix by allocation size")]
    out.append(render_table(["Nodes", "Failures", "JOB_FAIL", "TIMEOUT", "NODE_FAIL"], _rows(result.by_nodes)))
    top = result.top_bucket
    out.append("")
    out.append(
        f"Top bucket ({top.label} nodes): NODE_FAIL {top.share['NODE_FAIL']:.1f}% "
        f"(paper {PAPER_TOP_BUCKET['node_fail_pct']}%), "
        f"NODE_FAIL+TIMEOUT {top.node_fail_plus_timeout:.1f}% "
        f"(paper {PAPER_TOP_BUCKET['node_fail_plus_timeout_pct']}%)"
    )
    out.append(f"Node Fail share rising with node count: {result.node_fail_trend_increasing()}")
    out.append("")
    out.append(heading("Fig 2(b) — failure-type mix by elapsed time", "-"))
    out.append(render_table(["Elapsed", "Failures", "JOB_FAIL", "TIMEOUT", "NODE_FAIL"], _rows(result.by_elapsed)))
    out.append("")
    out.append(f"Mix roughly independent of elapsed time: {result.elapsed_mix_flat()}")
    return "\n".join(out)
