"""Experiment ``fig5``: end-to-end training time (paper Fig 5).

(a) no failures: all three systems, 64–1024 nodes — times fall with node
    count; NoFT is consistently (slightly) fastest because the FT variants
    pay per-step bookkeeping.
(b) five random single-node failures after the first epoch: NoFT dies
    (dashed no-failure line is its reference); FT w/ PFS suffers the most
    (paper: +32.2% → +68.7% vs no-failure from 64 → 1024 nodes); FT w/
    NVMe recovers cheapest (+12.5% → +26.7%), beating FT w/ PFS by 14.8%
    (64) and 24.9% (1024).

The sweep runs on the fluid model by default (full CosmoFlow scale,
seconds of wall-clock per point) or on the event-level DES (``model=
"des"``, small scale) — the two are cross-validated in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cluster.config import ClusterConfig, frontier
from ..cluster.slurm import SlurmController
from ..cluster.topology import Cluster
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from ..dl.training import TrainingJob
from ..failures import FailureInjector
from ..metrics import speedup
from .common import ExperimentScale
from .report import heading, minutes, render_table

__all__ = ["Fig5Row", "Fig5Result", "run_fig5", "format_fig5", "PAPER_FIG5"]

POLICIES = ("NoFT", "FT w/ PFS", "FT w/ NVMe")

#: published Fig 5(b) overhead/speedup figures for the comparison column
PAPER_FIG5 = {
    64: {"pfs_overhead_pct": 32.2, "nvme_overhead_pct": 12.5, "nvme_vs_pfs_pct": 14.8},
    1024: {"pfs_overhead_pct": 68.7, "nvme_overhead_pct": 26.7, "nvme_vs_pfs_pct": 24.9},
}


@dataclass
class Fig5Row:
    n_nodes: int
    #: mean no-failure total time per policy (Fig 5a)
    nofail: dict = field(default_factory=dict)
    #: mean with-failures total time per FT policy (Fig 5b)
    withfail: dict = field(default_factory=dict)
    failures_injected: float = 0.0

    def overhead_pct(self, policy: str) -> float:
        base = self.nofail[policy]
        return 100.0 * (self.withfail[policy] - base) / base

    @property
    def nvme_vs_pfs_pct(self) -> float:
        """Paper's headline: runtime reduction of NVMe recaching vs PFS redirect."""
        return speedup(self.withfail["FT w/ PFS"], self.withfail["FT w/ NVMe"])


@dataclass
class Fig5Result:
    rows: list[Fig5Row]
    scale_name: str
    model: str


def _one_fluid(cc: ClusterConfig, dataset, policy: str, cfg, n_failures: int, seed: int):
    m = FluidTrainingModel(cc, dataset, policy, cfg, n_failures=n_failures, seed=seed)
    r = m.run()
    return r.total_time, len(r.timeline.failures)


def _one_des(n_nodes: int, dataset, policy: str, cfg, n_failures: int, seed: int):
    cluster = Cluster.frontier(n_nodes=n_nodes, seed=seed)
    job = TrainingJob(cluster, dataset, policy, cfg)
    if n_failures > 0:
        injector = FailureInjector(SlurmController(cluster))
        injector.inject_after_first_epoch(job, n_failures=n_failures)
    r = job.run()
    return r.total_time, len(r.timeline.failures)


def run_fig5(
    scale: Optional[ExperimentScale] = None, model: str = "fluid", verbose: bool = False
) -> Fig5Result:
    """Run the full Fig 5 sweep (both panels)."""
    scale = scale if scale is not None else ExperimentScale.paper()
    if model not in ("fluid", "des"):
        raise ValueError(f"model must be 'fluid' or 'des', got {model!r}")
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    cfg = scale.training_config()
    rows: list[Fig5Row] = []
    for n in scale.node_counts:
        row = Fig5Row(n_nodes=n)
        for policy in POLICIES:
            nofail_times = []
            withfail_times = []
            fail_counts = []
            for rep in range(scale.repeats):
                seed = scale.seed + 1000 * rep
                if model == "fluid":
                    t0, _ = _one_fluid(frontier(n), dataset, policy, cfg, 0, seed)
                else:
                    t0, _ = _one_des(n, dataset, policy, cfg, 0, seed)
                nofail_times.append(t0)
                if policy != "NoFT":
                    if model == "fluid":
                        t1, nf = _one_fluid(frontier(n), dataset, policy, cfg, scale.n_failures, seed)
                    else:
                        t1, nf = _one_des(n, dataset, policy, cfg, scale.n_failures, seed)
                    withfail_times.append(t1)
                    fail_counts.append(nf)
            row.nofail[policy] = float(np.mean(nofail_times))
            if withfail_times:
                row.withfail[policy] = float(np.mean(withfail_times))
                row.failures_injected = float(np.mean(fail_counts))
        rows.append(row)
        if verbose:  # pragma: no cover - progress printing
            print(f"  fig5 n={n} done")
    return Fig5Result(rows=rows, scale_name=scale.name, model=model)


def format_fig5(result: Fig5Result) -> str:
    out = [heading(f"Fig 5(a) — end-to-end training time, no failures ({result.model} model, scale={result.scale_name})")]
    rows_a = [
        (
            r.n_nodes,
            minutes(r.nofail["NoFT"]),
            minutes(r.nofail["FT w/ PFS"]),
            minutes(r.nofail["FT w/ NVMe"]),
            "yes" if r.nofail["NoFT"] <= min(r.nofail.values()) + 1e-9 else "no",
        )
        for r in result.rows
    ]
    out.append(render_table(["Nodes", "NoFT", "FT w/ PFS", "FT w/ NVMe", "NoFT fastest"], rows_a))
    out.append("")
    out.append(heading("Fig 5(b) — with five random single-node failures after epoch 1", "-"))
    rows_b = []
    for r in result.rows:
        paper = PAPER_FIG5.get(r.n_nodes, {})
        rows_b.append(
            (
                r.n_nodes,
                "aborted",
                minutes(r.withfail["FT w/ PFS"]),
                minutes(r.withfail["FT w/ NVMe"]),
                f"{r.overhead_pct('FT w/ PFS'):.1f}%"
                + (f" ({paper['pfs_overhead_pct']}%)" if paper else ""),
                f"{r.overhead_pct('FT w/ NVMe'):.1f}%"
                + (f" ({paper['nvme_overhead_pct']}%)" if paper else ""),
                f"{r.nvme_vs_pfs_pct:.1f}%" + (f" ({paper['nvme_vs_pfs_pct']}%)" if paper else ""),
            )
        )
    out.append(
        render_table(
            [
                "Nodes",
                "NoFT",
                "FT w/ PFS",
                "FT w/ NVMe",
                "PFS ovh (paper)",
                "NVMe ovh (paper)",
                "NVMe vs PFS (paper)",
            ],
            rows_b,
        )
    )
    out.append("")
    out.append("NoFT aborts on the first failure; its no-failure time is the dashed reference line.")
    return "\n".join(out)
