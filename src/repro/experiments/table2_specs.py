"""Experiment ``table2``: node specifications (paper Table II).

Table II lists the Frontier compute-node hardware the evaluation ran on.
This "experiment" prints the paper's attributes beside the values this
repository's calibrated models actually use — the provenance table for
every simulated number, and the place to look when adapting the models to
a different machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.config import ClusterConfig, GiB, MiB, TiB, frontier
from .report import heading, render_table

__all__ = ["Table2Row", "run_table2", "format_table2"]


@dataclass(frozen=True)
class Table2Row:
    attribute: str
    paper: str
    model: str
    note: str = ""


def run_table2(config: ClusterConfig | None = None) -> list[Table2Row]:
    cc = config if config is not None else frontier()
    return [
        Table2Row("Supercomputer", "Frontier", "calibrated simulator", "see DESIGN.md substitutions"),
        Table2Row(
            "CPU",
            "AMD Trento EPYC 7A53",
            "(not modelled)",
            "compute enters as step_compute_time",
        ),
        Table2Row(
            "GPU",
            "8 x MI250X, 64 GiB HBM",
            f"step compute {cc.compute.step_compute_time * 1e3:.0f} ms/batch",
            "per-node local-batch fwd+bwd",
        ),
        Table2Row("Memory", "512 GiB DDR4", "(not modelled)", "never binding for data loading"),
        Table2Row(
            "Node-local storage",
            "2 x 1.9 TB PM9A3 NVMe (RAID-0, XFS)",
            f"{cc.nvme.capacity / TiB:.1f} TiB, "
            f"{cc.nvme.read_bw / GiB:.0f}/{cc.nvme.write_bw / GiB:.0f} GiB/s r/w",
            "paper: 3.5 TB usable, ~8/4 GB/s",
        ),
        Table2Row(
            "Interconnect",
            "Cray Slingshot",
            f"{cc.network.link_bw / GiB:.0f} GiB/s NIC, "
            f"{cc.network.base_latency * 1e6:.0f} µs latency",
            "endpoint-contended model",
        ),
        Table2Row(
            "PFS",
            "Lustre (Orion), center-wide",
            f"{cc.pfs.aggregate_bw / GiB:.1f} GiB/s job share, "
            f"{cc.pfs.per_stream_bw / MiB:.0f} MiB/s/stream, "
            f"MDS x{cc.pfs.metadata_concurrency}",
            "shared-system share, not hardware peak",
        ),
    ]


def format_table2(rows: list[Table2Row]) -> str:
    out = [heading("Table II — compute-node specifications vs calibrated model")]
    out.append(
        render_table(
            ["Attribute", "Paper (Frontier)", "This model", "Note"],
            [(r.attribute, r.paper, r.model, r.note) for r in rows],
        )
    )
    return "\n".join(out)
