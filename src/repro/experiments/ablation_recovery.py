"""Ablation ``recovery``: epoch-level vs step-level elastic rollback.

The paper describes Horovod elastic "reverting to the start of the failed
epoch"; its measured overheads, however, are only reconcilable with
sub-epoch recovery (five failures each losing half an epoch on average
would alone exceed +50%).  This ablation runs both recovery granularities
on the fluid model so the difference is explicit and the modelling
decision in EXPERIMENTS.md is backed by numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.config import frontier
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from .common import ExperimentScale
from .report import heading, minutes, render_table

__all__ = ["RecoveryRow", "RecoveryAblationResult", "run_recovery_ablation", "format_recovery_ablation"]


@dataclass(frozen=True)
class RecoveryRow:
    n_nodes: int
    nofail: float
    step_recovery: float
    epoch_recovery: float

    @property
    def step_overhead_pct(self) -> float:
        return 100.0 * (self.step_recovery - self.nofail) / self.nofail

    @property
    def epoch_overhead_pct(self) -> float:
        return 100.0 * (self.epoch_recovery - self.nofail) / self.nofail


@dataclass
class RecoveryAblationResult:
    rows: list[RecoveryRow]
    n_failures: int


def run_recovery_ablation(scale: Optional[ExperimentScale] = None) -> RecoveryAblationResult:
    scale = scale if scale is not None else ExperimentScale.paper()
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    rows = []
    for n in scale.node_counts:
        cc = frontier(n)
        base_t, step_t, epoch_t = [], [], []
        for rep in range(scale.repeats):
            seed = scale.seed + 1000 * rep
            cfg_step = scale.training_config(recovery="step")
            cfg_epoch = scale.training_config(recovery="epoch")
            base_t.append(
                FluidTrainingModel(cc, dataset, "FT w/ NVMe", cfg_step, n_failures=0, seed=seed)
                .run()
                .total_time
            )
            step_t.append(
                FluidTrainingModel(
                    cc, dataset, "FT w/ NVMe", cfg_step, n_failures=scale.n_failures, seed=seed
                )
                .run()
                .total_time
            )
            epoch_t.append(
                FluidTrainingModel(
                    cc, dataset, "FT w/ NVMe", cfg_epoch, n_failures=scale.n_failures, seed=seed
                )
                .run()
                .total_time
            )
        rows.append(
            RecoveryRow(
                n_nodes=n,
                nofail=float(np.mean(base_t)),
                step_recovery=float(np.mean(step_t)),
                epoch_recovery=float(np.mean(epoch_t)),
            )
        )
    return RecoveryAblationResult(rows=rows, n_failures=scale.n_failures)


def format_recovery_ablation(result: RecoveryAblationResult) -> str:
    out = [
        heading(
            f"Recovery ablation — FT w/ NVMe, {result.n_failures} failures, "
            f"step-level vs epoch-level rollback"
        )
    ]
    rows = [
        (
            r.n_nodes,
            minutes(r.nofail),
            f"{minutes(r.step_recovery)} (+{r.step_overhead_pct:.1f}%)",
            f"{minutes(r.epoch_recovery)} (+{r.epoch_overhead_pct:.1f}%)",
        )
        for r in result.rows
    ]
    out.append(render_table(["Nodes", "No failure", "Step recovery", "Epoch recovery"], rows))
    out.append("")
    out.append(
        "Epoch-level rollback loses E[1/2 epoch] per failure; with five failures its\n"
        "overhead cannot fall near the paper's +12.5%/+26.7% — hence 'step' is the\n"
        "default recovery model (see EXPERIMENTS.md, modelling decisions)."
    )
    return "\n".join(out)
