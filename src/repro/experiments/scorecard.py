"""Experiment ``scorecard``: automated reproduction-quality report.

Runs every experiment and checks each published *shape criterion* —
the orderings, trends, and magnitudes the paper reports — producing a
PASS/FAIL table with the measured value beside the published one.  This is
the one-command answer to "does this repository still reproduce the
paper?", and what CI should gate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .common import ExperimentScale
from .fig1_weekly import run_fig1
from .fig2_distribution import run_fig2
from .fig5_end_to_end import PAPER_FIG5, run_fig5
from .fig6a_victim_epoch import run_fig6a
from .fig6b_load_distribution import run_fig6b
from .report import heading, render_table
from .table1_failures import PAPER_TABLE1, run_table1

__all__ = ["Criterion", "Scorecard", "run_scorecard", "format_scorecard"]


@dataclass(frozen=True)
class Criterion:
    experiment: str
    name: str
    published: str
    measured: str
    passed: bool


@dataclass
class Scorecard:
    criteria: list[Criterion] = field(default_factory=list)

    def add(self, experiment: str, name: str, published: str, measured: str, passed: bool) -> None:
        self.criteria.append(Criterion(experiment, name, published, measured, bool(passed)))

    @property
    def passed(self) -> int:
        return sum(1 for c in self.criteria if c.passed)

    @property
    def total(self) -> int:
        return len(self.criteria)

    @property
    def all_passed(self) -> bool:
        return self.passed == self.total


def run_scorecard(scale: Optional[ExperimentScale] = None, seed: int = 2024) -> Scorecard:
    scale = scale if scale is not None else ExperimentScale.quick()
    card = Scorecard()

    # --- Table I ------------------------------------------------------------
    t1 = run_table1(seed=seed)
    card.add(
        "table1",
        "exact failure counts",
        f"{PAPER_TABLE1['total_failures']} failures / {PAPER_TABLE1['total_jobs']} jobs",
        f"{t1.census.total_failures} / {t1.census.total_jobs}",
        t1.census.total_failures == PAPER_TABLE1["total_failures"]
        and t1.census.total_jobs == PAPER_TABLE1["total_jobs"],
    )
    card.add(
        "table1",
        "combined node-failure share",
        "'about half' (~47.5%)",
        f"{t1.combined_node_failure_pct:.1f}%",
        40.0 < t1.combined_node_failure_pct < 55.0,
    )

    # --- Fig 1 ---------------------------------------------------------------
    f1 = run_fig1(seed=seed)
    card.add(
        "fig1",
        "mean elapsed before failure",
        "~75 min",
        f"{f1.weekly.overall:.0f} min",
        55.0 < f1.weekly.overall < 95.0,
    )
    card.add(
        "fig1",
        "hardware-failure 2h+ spike weeks",
        "'some weeks ... two to three hours'",
        f"{f1.spike_weeks} of {f1.n_weeks} weeks",
        f1.spike_weeks >= 1,
    )
    card.add(
        "fig1",
        "failures every week",
        "27/27 weeks",
        f"{f1.weeks_with_failures}/{f1.n_weeks}",
        f1.weeks_with_failures == f1.n_weeks,
    )

    # --- Fig 2 ---------------------------------------------------------------
    f2 = run_fig2(seed=seed)
    card.add(
        "fig2",
        "Node Fail share rises with node count",
        "monotone trend, 46.04% in top bucket",
        f"trend={f2.node_fail_trend_increasing()}, top={f2.top_bucket.share['NODE_FAIL']:.1f}%",
        f2.node_fail_trend_increasing() and f2.top_bucket.share["NODE_FAIL"] > 25.0,
    )
    card.add(
        "fig2",
        "type mix flat vs elapsed time",
        "'does not significantly affect'",
        f"flat={f2.elapsed_mix_flat()}",
        f2.elapsed_mix_flat(),
    )

    # --- Fig 5 ---------------------------------------------------------------
    f5 = run_fig5(scale=scale, model="fluid")
    baselines = [r.nofail["FT w/ NVMe"] for r in f5.rows]
    card.add(
        "fig5a",
        "time falls with node count",
        "strong scaling",
        f"{baselines[0] / 60:.1f} → {baselines[-1] / 60:.1f} min",
        baselines[0] > baselines[-1],
    )
    noft_ok = all(r.nofail["NoFT"] <= min(r.nofail.values()) * 1.01 for r in f5.rows)
    card.add(
        "fig5a",
        "NoFT (slightly) fastest",
        "consistently best, within error margins",
        str(noft_ok),
        noft_ok,
    )
    nvme_wins = all(r.withfail["FT w/ NVMe"] < r.withfail["FT w/ PFS"] for r in f5.rows)
    card.add(
        "fig5b",
        "hash-ring recaching beats PFS redirect",
        "at every node count (14.8%-24.9% faster)",
        f"wins at {sum(r.withfail['FT w/ NVMe'] < r.withfail['FT w/ PFS'] for r in f5.rows)}"
        f"/{len(f5.rows)} scales",
        nvme_wins,
    )
    first, last = f5.rows[0], f5.rows[-1]
    card.add(
        "fig5b",
        "FT w/ NVMe overhead grows with scale",
        f"{PAPER_FIG5[64]['nvme_overhead_pct']}% → {PAPER_FIG5[1024]['nvme_overhead_pct']}%",
        f"{first.overhead_pct('FT w/ NVMe'):.1f}% → {last.overhead_pct('FT w/ NVMe'):.1f}%",
        last.overhead_pct("FT w/ NVMe") > first.overhead_pct("FT w/ NVMe"),
    )
    # Absolute magnitude is only meaningful at the full published scale:
    # smaller datasets shrink the baseline under the same failure costs.
    if scale.name == "paper" and first.n_nodes == 64:
        nvme64 = first.overhead_pct("FT w/ NVMe")
        card.add(
            "fig5b",
            "64-node NVMe overhead magnitude",
            f"{PAPER_FIG5[64]['nvme_overhead_pct']}% (x2 band)",
            f"{nvme64:.1f}%",
            PAPER_FIG5[64]["nvme_overhead_pct"] / 2
            <= nvme64
            <= PAPER_FIG5[64]["nvme_overhead_pct"] * 2,
        )

    # --- Fig 6a ----------------------------------------------------------------
    f6a = run_fig6a(scale=scale)
    ordering = all(
        r.no_failure < r.pfs_redirect and r.nvme_recache <= r.pfs_redirect for r in f6a.rows
    )
    card.add(
        "fig6a",
        "victim epoch: none < recache <= redirect",
        "redirect worst, esp. at 64-128 nodes",
        str(ordering),
        ordering,
    )
    pfs_excess = [r.pfs_redirect - r.no_failure for r in f6a.rows]
    card.add(
        "fig6a",
        "redirect penalty largest at small scale",
        "'particularly at smaller scales'",
        f"{pfs_excess[0]:.1f}s @ {f6a.rows[0].n_nodes} vs {pfs_excess[-1]:.1f}s @ {f6a.rows[-1].n_nodes}",
        pfs_excess[0] == max(pfs_excess),
    )

    # --- Fig 6b ----------------------------------------------------------------
    f6b = run_fig6b(scale=scale, seed=seed)
    receivers = [r.receiver_nodes_mean for r in f6b.rows]
    files = [r.files_per_node_mean for r in f6b.rows]
    stds = [r.files_per_node_std for r in f6b.rows]
    card.add(
        "fig6b",
        "receivers rise with vnode ratio",
        "~3 at 10:1 → ~300 at 1000:1",
        f"{receivers[0]:.0f} → {receivers[-1]:.0f}",
        receivers == sorted(receivers) and receivers[-1] > 3 * max(receivers[0], 1),
    )
    card.add(
        "fig6b",
        "balance improves (files/receiver std falls)",
        "'reduction in standard deviation'",
        f"σ {stds[0]:.1f} → {stds[-1]:.1f}",
        stds[0] > stds[-1] and files[0] > files[-1],
    )
    card.add(
        "fig6b",
        "diminishing returns at high ratios",
        "'declines significantly beyond 500'",
        f"saturating={f6b.saturating()}",
        f6b.saturating(),
    )
    return card


def format_scorecard(card: Scorecard) -> str:
    out = [heading("Reproduction scorecard — published shape criteria")]
    rows = [
        (c.experiment, c.name, c.published, c.measured, "PASS" if c.passed else "FAIL")
        for c in card.criteria
    ]
    out.append(render_table(["Exp", "Criterion", "Published", "Measured", "Result"], rows))
    out.append("")
    out.append(f"{card.passed}/{card.total} criteria passed")
    return "\n".join(out)
