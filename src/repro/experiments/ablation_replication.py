"""Ablation ``replication``: k-way cache replication (extension).

The paper's FT-Cache stores one copy per file, so every failure costs one
PFS refetch per lost file plus the straggler steps until recaching
completes.  Replicating entries on ``k`` salted ring positions
(:mod:`repro.core.replication`) makes single-node failures lossless: a
surviving replica serves immediately.  This ablation measures the
end-to-end effect and the capacity price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.config import frontier
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from .common import ExperimentScale
from .report import heading, minutes, render_table

__all__ = [
    "ReplicationRow",
    "ReplicationAblationResult",
    "run_replication_ablation",
    "format_replication_ablation",
]


@dataclass(frozen=True)
class ReplicationRow:
    n_nodes: int
    nofail: float
    single_copy: float
    replicated: float
    single_pfs_files: int
    replicated_pfs_files: int

    @property
    def single_overhead_pct(self) -> float:
        return 100.0 * (self.single_copy - self.nofail) / self.nofail

    @property
    def replicated_overhead_pct(self) -> float:
        return 100.0 * (self.replicated - self.nofail) / self.nofail


@dataclass
class ReplicationAblationResult:
    rows: list[ReplicationRow]
    replicas: int
    n_failures: int


def run_replication_ablation(
    scale: Optional[ExperimentScale] = None, replicas: int = 2
) -> ReplicationAblationResult:
    scale = scale if scale is not None else ExperimentScale.paper()
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    cfg = scale.training_config()
    rows = []
    for n in scale.node_counts:
        cc = frontier(n)
        base_t, single_t, repl_t = [], [], []
        single_pfs, repl_pfs = [], []
        for rep in range(scale.repeats):
            seed = scale.seed + 1000 * rep
            base = FluidTrainingModel(cc, dataset, "FT w/ NVMe", cfg, 0, seed=seed).run()
            single = FluidTrainingModel(
                cc, dataset, "FT w/ NVMe", cfg, scale.n_failures, seed=seed
            ).run()
            repl = FluidTrainingModel(
                cc, dataset, "FT w/ NVMe", cfg, scale.n_failures, seed=seed, replication=replicas
            ).run()
            base_t.append(base.total_time)
            single_t.append(single.total_time)
            repl_t.append(repl.total_time)
            # Post-failure refetches: total PFS file reads minus the cold
            # epoch's one-per-sample population pass.
            single_pfs.append(single.pfs_files - dataset.n_samples)
            repl_pfs.append(repl.pfs_files - dataset.n_samples)
        rows.append(
            ReplicationRow(
                n_nodes=n,
                nofail=float(np.mean(base_t)),
                single_copy=float(np.mean(single_t)),
                replicated=float(np.mean(repl_t)),
                single_pfs_files=int(np.mean(single_pfs)),
                replicated_pfs_files=int(np.mean(repl_pfs)),
            )
        )
    return ReplicationAblationResult(rows=rows, replicas=replicas, n_failures=scale.n_failures)


def format_replication_ablation(result: ReplicationAblationResult) -> str:
    out = [
        heading(
            f"Replication ablation — {result.replicas}-way cache copies vs single copy, "
            f"{result.n_failures} failures"
        )
    ]
    rows = [
        (
            r.n_nodes,
            minutes(r.nofail),
            f"{minutes(r.single_copy)} (+{r.single_overhead_pct:.1f}%)",
            f"{minutes(r.replicated)} (+{r.replicated_overhead_pct:.1f}%)",
            r.single_pfs_files,
            r.replicated_pfs_files,
        )
        for r in result.rows
    ]
    out.append(
        render_table(
            ["Nodes", "No failure", "Single copy", f"{result.replicas}x replicated",
             "PFS refetches (1x)", f"PFS refetches ({result.replicas}x)"],
            rows,
        )
    )
    out.append("")
    out.append(
        "Replication removes the post-failure PFS refetch (surviving replicas serve\n"
        f"immediately) at {result.replicas}x cache capacity — the paper's single-copy "
        "design's natural extension."
    )
    return "\n".join(out)
