"""Machine-readable export of experiment results.

Text tables are for humans; plotting pipelines want JSON.  ``jsonable``
converts any of this package's result objects — nested dataclasses, NumPy
scalars/arrays, dict-keyed histograms — into plain JSON-compatible data,
and ``export_results`` writes a bundle of named results with provenance
(package version, seed, scale) so downstream figures are reproducible.
"""

from __future__ import annotations

import dataclasses
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = ["jsonable", "export_results", "load_results"]


def jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-compatible data.

    Handles dataclasses (including frozen), NumPy scalars and arrays,
    mappings with non-string keys (stringified), sets/tuples (lists), and
    falls back to ``str`` for anything exotic rather than raising —
    an export must not crash on a new field.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        out = {f.name: jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
        # Include computed @property values that cheap introspection finds
        # useful downstream?  No — keep exports structural; properties are
        # derivable from the fields.
        return out
    if isinstance(obj, Mapping):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(x) for x in obj]
    return str(obj)


def export_results(
    results: Mapping[str, Any],
    path: str | Path,
    seed: int | None = None,
    scale: str | None = None,
) -> Path:
    """Write named experiment results as one JSON document with provenance."""
    from .. import __version__

    doc = {
        "meta": {
            "package": "repro",
            "version": __version__,
            "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "seed": seed,
            "scale": scale,
        },
        "results": {name: jsonable(value) for name, value in results.items()},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> dict:
    """Read an :func:`export_results` document back (plain dicts)."""
    doc = json.loads(Path(path).read_text())
    if "results" not in doc or "meta" not in doc:
        raise ValueError(f"{path} is not an experiment export (missing meta/results)")
    return doc
