"""Experiment ``fig6b``: virtual-node count vs load redistribution (Fig 6b).

The paper's simulation: 1024 physical nodes, 500 trials per virtual-node
setting; after one random failure, measure (left axis) how many surviving
nodes receive redistributed files and (right axis) how many files each
receiver gets, with standard deviations.  Published observations:

* receiver count rises with the vnode ratio — ~3 nodes at 10 vnodes,
  approaching ~300 at 1000:1, saturating around ~350 (diminishing
  returns past ~500);
* files per receiver falls and its std dev shrinks (better balance);
* memory/compute cost grows with the ring, so 100/physical was chosen.

Implementation: one ring per vnode setting, one vectorised
``lookup_hashes_excluding`` per trial — no ring rebuilds in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.hash_ring import HashRing
from ..core.hashing import bulk_hash64
from ..dl.cosmoflow import COSMOFLOW_TRAIN_SAMPLES
from ..sim.rng import RngRegistry
from .common import ExperimentScale
from .report import heading, render_table

__all__ = ["Fig6bRow", "Fig6bResult", "run_fig6b", "format_fig6b"]


@dataclass(frozen=True)
class Fig6bRow:
    vnodes_per_node: int
    receiver_nodes_mean: float
    receiver_nodes_std: float
    files_per_node_mean: float
    files_per_node_std: float
    ring_memory_bytes: int
    ring_build_positions: int


@dataclass
class Fig6bResult:
    rows: list[Fig6bRow]
    n_nodes: int
    n_files: int
    trials: int

    def saturating(self) -> bool:
        """Does receiver growth slow at high vnode counts (diminishing returns)?"""
        r = [row.receiver_nodes_mean for row in self.rows]
        if len(r) < 3:
            return True
        early = r[1] - r[0]
        late = r[-1] - r[-2]
        return late < early or r[-1] > 0.8 * max(r)


def run_fig6b(
    scale: Optional[ExperimentScale] = None,
    n_files: int = COSMOFLOW_TRAIN_SAMPLES,
    seed: int = 2024,
) -> Fig6bResult:
    scale = scale if scale is not None else ExperimentScale.paper()
    n_nodes = scale.fig6b_nodes
    trials = scale.fig6b_trials
    rng = RngRegistry(seed).stream("fig6b")
    key_hashes = bulk_hash64(np.arange(n_files))
    rows = []
    for vn in scale.fig6b_vnode_counts:
        ring = HashRing(nodes=range(n_nodes), vnodes_per_node=vn)
        owners = ring.lookup_hashes(key_hashes).astype(np.int64)
        receivers_per_trial = np.empty(trials)
        files_mean_per_trial = np.empty(trials)
        victims = rng.integers(0, n_nodes, size=trials)
        for t in range(trials):
            victim = int(victims[t])
            lost = key_hashes[owners == victim]
            if len(lost) == 0:
                receivers_per_trial[t] = 0
                files_mean_per_trial[t] = 0
                continue
            new_owners = ring.lookup_hashes_excluding(lost, victim)
            uniq, counts = np.unique(new_owners.astype(np.int64), return_counts=True)
            receivers_per_trial[t] = len(uniq)
            files_mean_per_trial[t] = counts.mean()
        rows.append(
            Fig6bRow(
                vnodes_per_node=vn,
                receiver_nodes_mean=float(receivers_per_trial.mean()),
                receiver_nodes_std=float(receivers_per_trial.std()),
                files_per_node_mean=float(files_mean_per_trial.mean()),
                files_per_node_std=float(files_mean_per_trial.std()),
                ring_memory_bytes=ring.memory_footprint(),
                ring_build_positions=ring.ring_size,
            )
        )
    return Fig6bResult(rows=rows, n_nodes=n_nodes, n_files=n_files, trials=trials)


def format_fig6b(result: Fig6bResult) -> str:
    out = [
        heading(
            f"Fig 6(b) — load redistribution after one failure "
            f"({result.n_nodes} nodes, {result.n_files} files, {result.trials} trials)"
        )
    ]
    rows = [
        (
            r.vnodes_per_node,
            f"{r.receiver_nodes_mean:.1f} ± {r.receiver_nodes_std:.1f}",
            f"{r.files_per_node_mean:.1f} ± {r.files_per_node_std:.1f}",
            f"{r.ring_memory_bytes / 1e6:.1f} MB",
        )
        for r in result.rows
    ]
    out.append(
        render_table(["Vnodes/node", "Receiver nodes", "Files per receiver", "Ring memory"], rows)
    )
    out.append("")
    out.append(
        "Expected shape (paper): receivers rise from a handful at 10:1 toward ~300 at\n"
        "1000:1 and saturate (~350); files/receiver falls with shrinking std; ring\n"
        f"memory grows with vnode count.  Saturation observed: {result.saturating()}"
    )
    return "\n".join(out)
