"""Experiment ``fig4``: the hash-ring mechanism illustrated (paper Fig 4).

Figure 4 shows files and nodes on the unit ring, then a failure, then the
reassignment of only the failed node's files to the next clockwise owners.
This experiment regenerates the illustration with live data: a small ring,
a handful of named files (with their actual [0,1) positions, as the paper
prints e.g. ``file E`` at 0.293853), the failure, and the
before/after ownership — asserting the minimal-movement fact the figure
exists to convey.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import HashRing, hash_unit
from .report import heading, render_table

__all__ = ["Fig4File", "Fig4Result", "run_fig4", "format_fig4"]


@dataclass(frozen=True)
class Fig4File:
    name: str
    position: float
    owner_before: int
    owner_after: int

    @property
    def moved(self) -> bool:
        return self.owner_before != self.owner_after


@dataclass
class Fig4Result:
    n_nodes: int
    vnodes_per_node: int
    victim: int
    files: list = field(default_factory=list)

    @property
    def moved_files(self) -> list:
        return [f for f in self.files if f.moved]

    def minimal_movement(self) -> bool:
        """Only the victim's files moved — the figure's entire point."""
        return all(f.owner_before == self.victim for f in self.moved_files)


def run_fig4(n_nodes: int = 4, vnodes_per_node: int = 8, n_files: int = 8) -> Fig4Result:
    ring = HashRing(nodes=range(n_nodes), vnodes_per_node=vnodes_per_node)
    names = [f"file {chr(ord('A') + i)}" for i in range(n_files)]
    before = {name: ring.lookup(name) for name in names}
    # Fail the node owning the first file (the paper fails file E's owner).
    victim = before[names[-4 if n_files >= 4 else 0]]
    ring.remove_node(victim)
    after = {name: ring.lookup(name) for name in names}
    files = [
        Fig4File(
            name=name,
            position=hash_unit(name),
            owner_before=int(before[name]),
            owner_after=int(after[name]),
        )
        for name in names
    ]
    files.sort(key=lambda f: f.position)
    return Fig4Result(
        n_nodes=n_nodes, vnodes_per_node=vnodes_per_node, victim=int(victim), files=files
    )


def _ring_strip(result: Fig4Result, width: int = 64) -> str:
    """One-line ring picture: file letters at their [0,1) positions."""
    strip = ["·"] * width
    for f in result.files:
        idx = min(width - 1, int(f.position * width))
        strip[idx] = f.name[-1]
    return "0 ┤" + "".join(strip) + "├ 1"


def format_fig4(result: Fig4Result) -> str:
    out = [
        heading(
            f"Fig 4 — hash ring before/after failure of node {result.victim} "
            f"({result.n_nodes} nodes x {result.vnodes_per_node} vnodes)"
        )
    ]
    out.append(_ring_strip(result))
    out.append("")
    rows = [
        (
            f.name,
            f"{f.position:.6f}",
            f"node {f.owner_before}",
            f"node {f.owner_after}" + ("  <- reassigned" if f.moved else ""),
        )
        for f in result.files
    ]
    out.append(render_table(["File", "Ring position", "Owner (before)", "Owner (after)"], rows))
    out.append("")
    out.append(
        f"files moved: {len(result.moved_files)}/{len(result.files)} — all previously on "
        f"node {result.victim}: {result.minimal_movement()} (minimal movement, Karger et al.)"
    )
    return "\n".join(out)
