"""Shared experiment configuration.

``ExperimentScale`` centralises the knobs that trade fidelity for runtime:
the benchmark suite runs ``quick()`` by default (CI-sized), while
``paper()`` reproduces the full published parameters.  EXPERIMENTS.md
records which scale produced each reported number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dl.training import TrainingConfig

__all__ = ["ExperimentScale", "PAPER_NODE_COUNTS", "PAPER_FAILURES", "PAPER"]

#: Fig 5/6a sweep points on Frontier
PAPER_NODE_COUNTS = (64, 128, 256, 512, 1024)
#: Fig 5(b): "single-node failures occur randomly five times after the first epoch"
PAPER_FAILURES = 5


@dataclass(frozen=True)
class ExperimentScale:
    """Fidelity preset for the end-to-end experiments."""

    name: str
    #: fraction of the CosmoFlow training set simulated (per-sample size intact)
    dataset_scale: float
    node_counts: tuple[int, ...]
    n_failures: int = PAPER_FAILURES
    epochs: int = 5
    batch_size: int = 8
    #: independent repeats ("all experiments were repeated three times")
    repeats: int = 3
    #: Fig 6(b) trials ("the simulation was conducted 500 times")
    fig6b_trials: int = 500
    fig6b_nodes: int = 1024
    fig6b_vnode_counts: tuple[int, ...] = (1, 10, 50, 100, 200, 500, 1000)
    seed: int = 2024

    def training_config(self, **overrides) -> TrainingConfig:
        base = dict(epochs=self.epochs, batch_size=self.batch_size, seed=self.seed)
        base.update(overrides)
        return TrainingConfig(**base)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Full published parameters (fluid model; minutes of wall-clock)."""
        return cls(name="paper", dataset_scale=1.0, node_counts=PAPER_NODE_COUNTS)

    @classmethod
    def quick(cls) -> "ExperimentScale":
        """CI-sized: 1/16 dataset, three node counts, fewer trials."""
        return cls(
            name="quick",
            dataset_scale=1 / 16,
            node_counts=(64, 256, 1024),
            repeats=1,
            fig6b_trials=100,
        )

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Seconds-fast sanity scale for tests."""
        return cls(
            name="smoke",
            dataset_scale=1 / 128,
            node_counts=(16, 64),
            n_failures=2,
            repeats=1,
            fig6b_trials=20,
            fig6b_nodes=128,
            fig6b_vnode_counts=(10, 100, 500),
        )


PAPER = ExperimentScale.paper()
