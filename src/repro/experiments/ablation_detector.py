"""Ablation ``detector``: TTL / threshold tuning (Sec IV-A discussion).

The paper: the TTL "only needs to be greater than the longest observed
latency" and the timeout counter exists "to mitigate the risk of false
positives".  This experiment quantifies both halves under a heavy-tailed
RPC-latency distribution:

* **false-positive rate** — probability a healthy node is declared failed
  during an epoch's worth of requests, vs (ttl, threshold);
* **detection delay** — time from a real failure to declaration
  (≈ threshold × ttl with back-to-back requests).

Pure Monte-Carlo over the latency model — no simulator needed, so the
whole sweep runs in milliseconds and doubles as a tuning tool.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.failure_detector import TimeoutFailureDetector
from .report import heading, render_table

__all__ = [
    "DetectorPoint",
    "DetectorAblationResult",
    "run_detector_ablation",
    "format_detector_ablation",
]


@dataclass(frozen=True)
class DetectorPoint:
    ttl: float
    threshold: int
    false_positive_rate: float
    mean_detection_delay: float
    p99_latency: float


@dataclass
class DetectorAblationResult:
    points: list[DetectorPoint]
    n_requests: int
    latency_median: float
    latency_sigma: float


def _simulate_false_positives(
    latencies: np.ndarray, ttl: float, threshold: int, trials: int, rng: np.random.Generator
) -> float:
    """Fraction of request streams that wrongly declare a healthy node."""
    n = len(latencies)
    declared = 0
    for _ in range(trials):
        sample = latencies[rng.integers(0, n, size=n)]
        timeouts = sample > ttl
        # Longest run of consecutive timeouts >= threshold ?
        run = 0
        hit = False
        for t in timeouts:
            run = run + 1 if t else 0
            if run >= threshold:
                hit = True
                break
        declared += hit
    return declared / trials


def run_detector_ablation(
    ttls: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0),
    thresholds: tuple[int, ...] = (1, 2, 3, 5),
    n_requests: int = 2000,
    latency_median: float = 0.05,
    latency_sigma: float = 1.0,
    trials: int = 200,
    seed: int = 2024,
) -> DetectorAblationResult:
    """Sweep (ttl, threshold) against a lognormal RPC-latency tail."""
    rng = np.random.default_rng(seed)
    latencies = rng.lognormal(np.log(latency_median), latency_sigma, size=n_requests)
    points = []
    for ttl in ttls:
        for threshold in thresholds:
            fp = _simulate_false_positives(latencies, ttl, threshold, trials, rng)
            det = TimeoutFailureDetector(ttl=ttl, threshold=threshold)
            points.append(
                DetectorPoint(
                    ttl=ttl,
                    threshold=threshold,
                    false_positive_rate=fp,
                    mean_detection_delay=det.worst_case_detection_time,
                    p99_latency=float(np.quantile(latencies, 0.99)),
                )
            )
    return DetectorAblationResult(
        points=points,
        n_requests=n_requests,
        latency_median=latency_median,
        latency_sigma=latency_sigma,
    )


def format_detector_ablation(result: DetectorAblationResult) -> str:
    out = [
        heading(
            f"Detector ablation — lognormal latency (median {result.latency_median * 1e3:.0f} ms, "
            f"sigma {result.latency_sigma}), {result.n_requests} requests/epoch"
        )
    ]
    rows = [
        (
            f"{p.ttl * 1e3:.0f} ms",
            p.threshold,
            f"{100 * p.false_positive_rate:.1f}%",
            f"{p.mean_detection_delay:.2f} s",
        )
        for p in result.points
    ]
    out.append(
        render_table(["TTL", "Threshold", "False-positive rate", "Detection delay"], rows)
    )
    out.append("")
    out.append(
        "Trade-off (Sec IV-A): a TTL above the latency tail with a small threshold\n"
        "gives zero false positives at bounded detection delay; aggressive TTLs need\n"
        "higher thresholds — the counter is what absorbs transient delays."
    )
    return "\n".join(out)
