"""Ablation ``interference``: background PFS load vs the straggler gap.

EXPERIMENTS.md documents one residual: the paper's NVMe-vs-PFS gap *grows*
with node count while this model's shrinks, and the hypothesised cause is
N-dependent interference on the shared production Orion.  This ablation
makes that hypothesis testable: it sweeps the background-load level
(:func:`repro.cluster.interference.with_interference`) and reports, per
node count, the Fig 5(b) overheads and gap — showing directly how much
foreign load the largest scales would need to see for the published gap
to emerge.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster.config import frontier
from ..cluster.interference import with_interference
from ..dl.cosmoflow import cosmoflow_dataset
from ..dl.fastsim import FluidTrainingModel
from ..metrics import speedup
from .common import ExperimentScale
from .report import heading, render_table

__all__ = [
    "InterferenceRow",
    "InterferenceAblationResult",
    "run_interference_ablation",
    "format_interference_ablation",
]


@dataclass(frozen=True)
class InterferenceRow:
    n_nodes: int
    level: float
    nofail: float
    pfs_fail: float
    nvme_fail: float

    @property
    def gap_pct(self) -> float:
        """NVMe's runtime reduction vs PFS redirect (the paper's headline)."""
        return speedup(self.pfs_fail, self.nvme_fail)


@dataclass
class InterferenceAblationResult:
    rows: list[InterferenceRow]
    levels: tuple[float, ...]
    n_failures: int


def run_interference_ablation(
    scale: Optional[ExperimentScale] = None,
    levels: tuple[float, ...] = (0.0, 0.5, 1.0, 2.0),
) -> InterferenceAblationResult:
    scale = scale if scale is not None else ExperimentScale.quick()
    dataset = cosmoflow_dataset(scale=scale.dataset_scale)
    cfg = scale.training_config()
    rows = []
    for n in scale.node_counts:
        for level in levels:
            base_cc = frontier(n)
            cc = replace(base_cc, pfs=with_interference(base_cc.pfs, level))
            nofail = FluidTrainingModel(cc, dataset, "FT w/ NVMe", cfg, 0, seed=scale.seed).run()
            pfs = FluidTrainingModel(
                cc, dataset, "FT w/ PFS", cfg, scale.n_failures, seed=scale.seed
            ).run()
            nvme = FluidTrainingModel(
                cc, dataset, "FT w/ NVMe", cfg, scale.n_failures, seed=scale.seed
            ).run()
            rows.append(
                InterferenceRow(
                    n_nodes=n,
                    level=level,
                    nofail=nofail.total_time,
                    pfs_fail=pfs.total_time,
                    nvme_fail=nvme.total_time,
                )
            )
    return InterferenceAblationResult(rows=rows, levels=levels, n_failures=scale.n_failures)


def format_interference_ablation(result: InterferenceAblationResult) -> str:
    out = [
        heading(
            f"Interference ablation — background PFS load vs the NVMe-vs-PFS gap "
            f"({result.n_failures} failures)"
        )
    ]
    rows = [
        (
            r.n_nodes,
            f"{r.level:.1f}x",
            f"{r.nofail / 60:.1f} min",
            f"{100 * (r.pfs_fail / r.nofail - 1):.1f}%",
            f"{100 * (r.nvme_fail / r.nofail - 1):.1f}%",
            f"{r.gap_pct:.1f}%",
        )
        for r in result.rows
    ]
    out.append(
        render_table(
            ["Nodes", "Bg load", "No-failure", "PFS ovh", "NVMe ovh", "NVMe vs PFS"], rows
        )
    )
    out.append("")
    out.append(
        "Reading: the NVMe-vs-PFS gap widens with background load at every scale —\n"
        "the paper's growing gap at 1024 nodes is consistent with the production\n"
        "Orion seeing heavier interference than the calibrated baseline assumes."
    )
    return "\n".join(out)
