"""Experiment harness: one module per paper table/figure plus ablations.

Run from the command line::

    python -m repro.experiments all --scale quick
    python -m repro.experiments fig5 --scale paper
    ftcache-experiments fig6b

or programmatically::

    from repro.experiments import run_fig6b, format_fig6b
    print(format_fig6b(run_fig6b()))
"""

from .ablation_detector import format_detector_ablation, run_detector_ablation
from .ablation_interference import format_interference_ablation, run_interference_ablation
from .ablation_placement import format_placement_ablation, run_placement_ablation
from .ablation_recovery import format_recovery_ablation, run_recovery_ablation
from .ablation_replication import format_replication_ablation, run_replication_ablation
from .ablation_timelimit import format_timelimit_ablation, run_timelimit_ablation
from .common import PAPER_FAILURES, PAPER_NODE_COUNTS, ExperimentScale
from .fig1_weekly import Fig1Result, format_fig1, run_fig1
from .fig2_distribution import Fig2Result, format_fig2, run_fig2
from .fig3_sequences import Fig3Result, format_fig3, run_fig3
from .fig4_ring_diagram import Fig4Result, format_fig4, run_fig4
from .fig5_end_to_end import Fig5Result, Fig5Row, format_fig5, run_fig5
from .fig6a_victim_epoch import Fig6aResult, format_fig6a, run_fig6a
from .fig6b_load_distribution import Fig6bResult, format_fig6b, run_fig6b
from .scorecard import Criterion, Scorecard, format_scorecard, run_scorecard
from .table1_failures import Table1Result, format_table1, run_table1
from .table2_specs import Table2Row, format_table2, run_table2

__all__ = [
    "format_detector_ablation",
    "run_detector_ablation",
    "format_interference_ablation",
    "run_interference_ablation",
    "format_placement_ablation",
    "run_placement_ablation",
    "format_recovery_ablation",
    "run_recovery_ablation",
    "format_replication_ablation",
    "run_replication_ablation",
    "format_timelimit_ablation",
    "run_timelimit_ablation",
    "PAPER_FAILURES",
    "PAPER_NODE_COUNTS",
    "ExperimentScale",
    "Fig1Result",
    "format_fig1",
    "run_fig1",
    "Fig2Result",
    "format_fig2",
    "run_fig2",
    "Fig3Result",
    "format_fig3",
    "run_fig3",
    "Fig4Result",
    "format_fig4",
    "run_fig4",
    "Fig5Result",
    "Fig5Row",
    "format_fig5",
    "run_fig5",
    "Fig6aResult",
    "format_fig6a",
    "run_fig6a",
    "Fig6bResult",
    "format_fig6b",
    "run_fig6b",
    "Criterion",
    "Scorecard",
    "format_scorecard",
    "run_scorecard",
    "Table1Result",
    "Table2Row",
    "format_table2",
    "run_table2",
    "format_table1",
    "run_table1",
]
