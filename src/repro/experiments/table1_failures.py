"""Experiment ``table1``: the Frontier job-failure census (paper Table I).

Generates the synthetic six-month SLURM log (whose Table I marginals hold
by construction — see :mod:`repro.failures.slurm_log`) and runs the same
census the paper reports, printing reproduced vs published side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..failures import (
    FailureCensus,
    SlurmLog,
    combined_node_failure_share,
    failure_census,
    generate_frontier_log,
)
from .report import heading, render_table

__all__ = ["Table1Result", "run_table1", "format_table1", "PAPER_TABLE1"]

#: Published Table I values for side-by-side comparison.
PAPER_TABLE1 = {
    "total_jobs": 181_933,
    "total_failures": 45_556,
    "node_fail": 1_174,
    "timeout": 20_464,
    "job_fail": 23_918,
    "failure_overall_pct": 25.04,
    "node_fail_of_failures_pct": 2.58,
    "timeout_of_failures_pct": 44.92,
    "job_fail_of_failures_pct": 52.50,
}


@dataclass(frozen=True)
class Table1Result:
    census: FailureCensus
    combined_node_failure_pct: float
    mean_elapsed_failed_min: float


def run_table1(seed: int = 2024, log: SlurmLog | None = None) -> Table1Result:
    """Generate (or take) a log and compute the Table I census."""
    if log is None:
        log = generate_frontier_log(seed=seed)
    census = failure_census(log)
    fail_mask = log.failures_mask
    mean_elapsed = float(log.elapsed_min[fail_mask].mean()) if fail_mask.any() else float("nan")
    return Table1Result(
        census=census,
        combined_node_failure_pct=combined_node_failure_share(census),
        mean_elapsed_failed_min=mean_elapsed,
    )


def format_table1(result: Table1Result) -> str:
    c = result.census
    fr = c.failure_ratio
    orr = c.overall_ratio
    rows = [
        ("Total Jobs", c.total_jobs, PAPER_TABLE1["total_jobs"], "N/A", "100%"),
        (
            "Total Failures",
            c.total_failures,
            PAPER_TABLE1["total_failures"],
            "100%",
            f"{orr['FAILURES']:.2f}% (paper {PAPER_TABLE1['failure_overall_pct']}%)",
        ),
        (
            "Node Fail",
            c.node_fail,
            PAPER_TABLE1["node_fail"],
            f"{fr['NODE_FAIL']:.2f}% (paper {PAPER_TABLE1['node_fail_of_failures_pct']}%)",
            f"{orr['NODE_FAIL']:.2f}%",
        ),
        (
            "Timeout",
            c.timeout,
            PAPER_TABLE1["timeout"],
            f"{fr['TIMEOUT']:.2f}% (paper {PAPER_TABLE1['timeout_of_failures_pct']}%)",
            f"{orr['TIMEOUT']:.2f}%",
        ),
        (
            "Job Fail",
            c.job_fail,
            PAPER_TABLE1["job_fail"],
            f"{fr['JOB_FAIL']:.2f}% (paper {PAPER_TABLE1['job_fail_of_failures_pct']}%)",
            f"{orr['JOB_FAIL']:.2f}%",
        ),
    ]
    out = [heading("Table I — job failures on Frontier over six months")]
    out.append(render_table(["Type", "Count", "Paper count", "Failure ratio", "Overall ratio"], rows))
    out.append("")
    out.append(
        f"Combined 'node failure' share (NODE_FAIL + TIMEOUT): "
        f"{result.combined_node_failure_pct:.1f}% of failures (paper: ~47.5%, 'about half')"
    )
    out.append(
        f"Mean elapsed time before failure: {result.mean_elapsed_failed_min:.0f} min "
        f"(paper: 'an average of 75 minutes')"
    )
    return "\n".join(out)
