"""Experiment ``fig1``: weekly elapsed-before-failure series (paper Fig 1).

Fig 1 plots, for 27 production weeks, the mean elapsed minutes of failed
jobs per week and failure type, with the overall mean as a dashed line.
The published observations this reproduction must match:

* overall mean just over an hour (~75 min);
* NODE_FAIL / TIMEOUT spiking to 2–3 hours in some weeks;
* failures present in *every* week ("a persistent issue").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..failures import SlurmLog, WeeklyElapsed, generate_frontier_log, weekly_elapsed
from .report import heading, render_table

__all__ = ["Fig1Result", "run_fig1", "format_fig1"]


@dataclass(frozen=True)
class Fig1Result:
    weekly: WeeklyElapsed
    #: weeks in which the hardware failure types exceeded 120 minutes
    spike_weeks: int
    #: weeks with at least one failure of any type
    weeks_with_failures: int
    n_weeks: int


def run_fig1(seed: int = 2024, log: SlurmLog | None = None) -> Fig1Result:
    if log is None:
        log = generate_frontier_log(seed=seed)
    weekly = weekly_elapsed(log)
    hw = np.vstack(
        [weekly.by_type["NODE_FAIL"], weekly.by_type["TIMEOUT"]]
    )
    spikes = int(np.nansum(np.nanmax(hw, axis=0) >= 120.0))
    any_fail = np.zeros(len(weekly.weeks), dtype=bool)
    for series in weekly.by_type.values():
        any_fail |= ~np.isnan(series)
    return Fig1Result(
        weekly=weekly,
        spike_weeks=spikes,
        weeks_with_failures=int(any_fail.sum()),
        n_weeks=len(weekly.weeks),
    )


def format_fig1(result: Fig1Result) -> str:
    w = result.weekly
    rows = []
    for i in w.weeks:
        rows.append(
            (
                int(i) + 1,
                f"{w.by_type['JOB_FAIL'][i]:.0f}",
                f"{w.by_type['TIMEOUT'][i]:.0f}",
                f"{w.by_type['NODE_FAIL'][i]:.0f}",
            )
        )
    out = [heading("Fig 1 — mean elapsed minutes of failed jobs, per week")]
    out.append(render_table(["Week", "JOB_FAIL", "TIMEOUT", "NODE_FAIL"], rows))
    out.append("")
    out.append(f"Overall mean (dashed line): {w.overall:.0f} min (paper: ~75 min)")
    out.append(
        f"Weeks where NODE_FAIL/TIMEOUT reached 2h+: {result.spike_weeks} "
        f"(paper: 'in some weeks … two to three hours')"
    )
    out.append(
        f"Weeks with failures: {result.weeks_with_failures}/{result.n_weeks} "
        f"(paper: 'job failures occur consistently every week')"
    )
    return "\n".join(out)
