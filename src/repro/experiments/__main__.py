"""Command-line entry point: ``python -m repro.experiments <exp> [--scale s]``."""

from __future__ import annotations

import argparse
import sys

from .ablation_detector import format_detector_ablation, run_detector_ablation
from .ablation_interference import format_interference_ablation, run_interference_ablation
from .ablation_placement import format_placement_ablation, run_placement_ablation
from .ablation_recovery import format_recovery_ablation, run_recovery_ablation
from .ablation_replication import format_replication_ablation, run_replication_ablation
from .ablation_timelimit import format_timelimit_ablation, run_timelimit_ablation
from .common import ExperimentScale
from .fig1_weekly import format_fig1, run_fig1
from .fig2_distribution import format_fig2, run_fig2
from .fig3_sequences import format_fig3, run_fig3
from .fig4_ring_diagram import format_fig4, run_fig4
from .fig5_end_to_end import format_fig5, run_fig5
from .fig6a_victim_epoch import format_fig6a, run_fig6a
from .fig6b_load_distribution import format_fig6b, run_fig6b
from .export import export_results
from .scorecard import format_scorecard, run_scorecard
from .table1_failures import format_table1, run_table1
from .table2_specs import format_table2, run_table2
from ..viz import bar_chart, line_plot

EXPERIMENTS = (
    "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6a", "fig6b",
    "placement", "detector", "recovery", "replication", "timelimit", "interference", "scorecard",
)


def _scale(name: str) -> ExperimentScale:
    try:
        return {"paper": ExperimentScale.paper, "quick": ExperimentScale.quick, "smoke": ExperimentScale.smoke}[name]()
    except KeyError:
        raise SystemExit(f"unknown scale {name!r}; choose paper/quick/smoke")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ftcache-experiments",
        description="Regenerate the paper's tables and figures (FT-Cache reproduction).",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument("--scale", default="paper", help="paper | quick | smoke (default: paper)")
    parser.add_argument("--model", default="fluid", help="fig5 engine: fluid | des")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--chart", action="store_true", help="also render terminal charts of the series"
    )
    parser.add_argument(
        "--json", default="", metavar="PATH", help="also export the structured results as JSON"
    )
    args = parser.parse_args(argv)
    scale = _scale(args.scale)

    todo = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    collected: dict = {}
    for name in todo:
        if name == "table1":
            result = run_table1(seed=args.seed)
            collected[name] = result
            print(format_table1(result))
        elif name == "fig1":
            result = run_fig1(seed=args.seed)
            collected[name] = result
            print(format_fig1(result))
            if args.chart:
                w = result.weekly
                print()
                print(
                    line_plot(
                        {
                            t: (w.weeks + 1, series)
                            for t, series in w.by_type.items()
                        },
                        title="Fig 1 — mean elapsed minutes per week",
                        y_label="minutes",
                    )
                )
        elif name == "table2":
            rows = run_table2()
            collected[name] = rows
            print(format_table2(rows))
        elif name == "fig2":
            result = run_fig2(seed=args.seed)
            collected[name] = result
            print(format_fig2(result))
        elif name == "fig3":
            result = run_fig3(seed=args.seed)
            collected[name] = result
            print(format_fig3(result))
        elif name == "fig4":
            result = run_fig4()
            collected[name] = result
            print(format_fig4(result))
        elif name == "fig5":
            result = run_fig5(scale=scale, model=args.model)
            collected[name] = result
            print(format_fig5(result))
            if args.chart:
                print()
                labels, values = [], []
                for row in result.rows:
                    labels.append(f"{row.n_nodes} no-fail")
                    values.append(row.nofail["FT w/ NVMe"] / 60)
                    labels.append(f"{row.n_nodes} PFS+5f")
                    values.append(row.withfail["FT w/ PFS"] / 60)
                    labels.append(f"{row.n_nodes} NVMe+5f")
                    values.append(row.withfail["FT w/ NVMe"] / 60)
                print(bar_chart(labels, values, title="Fig 5 — end-to-end time (min)", unit=" min"))
        elif name == "fig6a":
            result = run_fig6a(scale=scale)
            collected[name] = result
            print(format_fig6a(result))
        elif name == "fig6b":
            result = run_fig6b(scale=scale, seed=args.seed)
            collected[name] = result
            print(format_fig6b(result))
            if args.chart:
                print()
                print(
                    bar_chart(
                        [r.vnodes_per_node for r in result.rows],
                        [r.receiver_nodes_mean for r in result.rows],
                        title="Fig 6(b) — receiver nodes vs vnodes/node",
                    )
                )
        elif name == "placement":
            result = run_placement_ablation()
            collected[name] = result
            print(format_placement_ablation(result))
        elif name == "detector":
            result = run_detector_ablation(seed=args.seed)
            collected[name] = result
            print(format_detector_ablation(result))
        elif name == "recovery":
            result = run_recovery_ablation(scale=scale)
            collected[name] = result
            print(format_recovery_ablation(result))
        elif name == "replication":
            result = run_replication_ablation(scale=scale)
            collected[name] = result
            print(format_replication_ablation(result))
        elif name == "timelimit":
            result = run_timelimit_ablation(scale=scale)
            collected[name] = result
            print(format_timelimit_ablation(result))
        elif name == "interference":
            result = run_interference_ablation(scale=scale)
            collected[name] = result
            print(format_interference_ablation(result))
        elif name == "scorecard":
            card = run_scorecard(scale=scale, seed=args.seed)
            collected[name] = card
            print(format_scorecard(card))
            if not card.all_passed:
                return 1
        print()
    if args.json:
        path = export_results(collected, args.json, seed=args.seed, scale=args.scale)
        print(f"exported {len(collected)} result set(s) to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
