"""Plain-text rendering of experiment results.

The generic helpers live in :mod:`repro.viz.text`; this module re-exports
them under the historical name used throughout the experiment modules.
"""

from ..viz.text import heading, minutes, pct, render_series, render_table

__all__ = ["render_table", "render_series", "heading", "pct", "minutes"]
