"""Experiment ``fig3``: the two fault-tolerance sequences (paper Fig 3).

Figure 3 is the paper's protocol diagram: (a) the PFS-redirection sequence
— intercept ①, repeated RPC timeouts ②, redirect to PFS ③, return to the
training job ④ — and (b) the elastic-recaching sequence — intercept and
hash-ring routing, timeout → node removed from the ring, re-route to the
new owner, which fetches-serves-recaches.

This experiment *executes* both sequences on the simulated stack and
emits the observed event list, so the diagram is reproduced from running
code rather than redrawn.  Each event carries its simulation timestamp;
tests assert the causal order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.config import MiB
from ..cluster.topology import Cluster
from ..core import (
    ElasticRecache,
    HashRing,
    MembershipView,
    PFSRedirect,
    StaticHash,
)
from ..hvac import HvacClient, HvacServer, RpcFabric
from .report import heading

__all__ = ["SequenceEvent", "Fig3Result", "run_fig3", "format_fig3"]


@dataclass(frozen=True)
class SequenceEvent:
    t: float
    step: str
    detail: str


@dataclass
class Fig3Result:
    pfs_redirect: list = field(default_factory=list)
    elastic_recache: list = field(default_factory=list)


def _run_sequence(policy_name: str, seed: int = 1) -> list[SequenceEvent]:
    n = 4
    cluster = Cluster.frontier(n_nodes=n, seed=seed)
    env = cluster.env
    fabric = RpcFabric(cluster)
    servers = [HvacServer(cluster, i, fabric) for i in range(n)]
    for s in servers:
        s.start()
    if policy_name == "pfs":
        policy = PFSRedirect(StaticHash(nodes=range(n)))
    else:
        policy = ElasticRecache(HashRing(nodes=range(n), vnodes_per_node=50))
    membership = MembershipView(range(n))
    client = HvacClient(
        cluster, 0, policy, fabric, membership=membership, ttl=0.4, timeout_threshold=2
    )
    events: list[SequenceEvent] = []

    def log(step: str, detail: str) -> None:
        events.append(SequenceEvent(t=env.now, step=step, detail=detail))

    membership.subscribe(lambda node, state: log("detect", f"node {node} marked {state.value}"))

    file_id, nbytes = 7, 2.0 * MiB
    victim = policy.target_for(file_id).node

    def scenario():
        log("intercept", f"training job read() of file {file_id} intercepted (LD_PRELOAD)")
        log("route", f"hash(file {file_id}) -> server S{victim}")
        yield from client.read_files([(file_id, nbytes)])
        log("serve", f"file {file_id} cached on S{victim} (miss -> PFS fetch -> recache)")
        cluster.fail_node(victim)
        log("failure", f"node {victim} drained (sacct State=DRAIN)")
        log("intercept", f"next epoch: read() of file {file_id} intercepted")
        timeouts_before = client.metrics.get("client.rpc_timeouts")
        pfs_before = client.metrics.get("client.pfs_direct_files")
        yield from client.read_files([(file_id, nbytes)])
        n_timeouts = int(client.metrics.get("client.rpc_timeouts") - timeouts_before)
        log("timeout", f"RPC to S{victim} timed out x{n_timeouts} (TTL 0.4s, threshold 2)")
        if policy_name == "pfs":
            assert client.metrics.get("client.pfs_direct_files") > pfs_before
            log("redirect", "request redirected to the PFS (placement unchanged)")
        else:
            new_owner = policy.target_for(file_id).node
            log("re-ring", f"node {victim} removed from the ring; file {file_id} -> S{new_owner}")
            log("recache", f"S{new_owner}: PFS fetch -> serve -> cache (one extra PFS access)")
        log("return", "data returned to the training job")

    proc = env.process(scenario())
    env.run(until=proc)
    return events


def run_fig3(seed: int = 1) -> Fig3Result:
    return Fig3Result(
        pfs_redirect=_run_sequence("pfs", seed=seed),
        elastic_recache=_run_sequence("ring", seed=seed),
    )


def _render(events: list[SequenceEvent]) -> str:
    lines = []
    for i, e in enumerate(events, start=1):
        lines.append(f"  {i}. [{e.t:7.3f}s] {e.step:<9s} {e.detail}")
    return "\n".join(lines)


def format_fig3(result: Fig3Result) -> str:
    out = [heading("Fig 3 — fault-tolerance sequences, executed")]
    out.append("(a) PFS redirection (Sec IV-A):")
    out.append(_render(result.pfs_redirect))
    out.append("")
    out.append("(b) Elastic recaching with the hash ring (Sec IV-B):")
    out.append(_render(result.elastic_recache))
    return "\n".join(out)
