"""Training-dataset model: file-per-sample, the I/O pattern that hurts PFS.

DL vision datasets are "often composed of many small files" (Sec II-A);
CosmoFlow's cosmoUniverse set is ~1.3 TB of TFRecord files.  The simulator
only needs each file's identity and size — contents never matter for
timing — so a dataset is an id space plus a byte-size array, with a
path catalog for the POSIX interception facade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Dataset", "combine_datasets"]


@dataclass(frozen=True)
class Dataset:
    """Immutable description of a file-per-sample training set."""

    name: str
    n_samples: int
    #: bytes of each sample file; scalar (uniform) or per-sample array
    sample_bytes: float | np.ndarray = 2.6e6
    path_template: str = "/{name}/train/sample_{fid:08d}.tfrecord"

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {self.n_samples}")
        if isinstance(self.sample_bytes, np.ndarray):
            if len(self.sample_bytes) != self.n_samples:
                raise ValueError("sample_bytes array length must equal n_samples")
            if (self.sample_bytes <= 0).any():
                raise ValueError("sample sizes must be positive")
        elif self.sample_bytes <= 0:
            raise ValueError("sample_bytes must be positive")

    # -- sizes -------------------------------------------------------------------
    def file_size(self, fid: int) -> float:
        if not (0 <= fid < self.n_samples):
            raise IndexError(f"sample id {fid} out of range [0, {self.n_samples})")
        if isinstance(self.sample_bytes, np.ndarray):
            return float(self.sample_bytes[fid])
        return float(self.sample_bytes)

    @property
    def total_bytes(self) -> float:
        if isinstance(self.sample_bytes, np.ndarray):
            return float(self.sample_bytes.sum())
        return float(self.sample_bytes) * self.n_samples

    def sizes_array(self) -> np.ndarray:
        """Per-sample sizes as an array (materialised for uniform datasets)."""
        if isinstance(self.sample_bytes, np.ndarray):
            return self.sample_bytes
        return np.full(self.n_samples, float(self.sample_bytes))

    # -- identity -----------------------------------------------------------------
    def path_of(self, fid: int) -> str:
        return self.path_template.format(name=self.name, fid=fid)

    def catalog(self) -> dict[str, tuple[int, float]]:
        """``path -> (fid, nbytes)`` for the POSIX interceptor."""
        return {self.path_of(fid): (fid, self.file_size(fid)) for fid in range(self.n_samples)}

    def files(self, fids: Sequence[int] | np.ndarray) -> list[tuple[int, float]]:
        """``(fid, nbytes)`` pairs for a batch of sample ids."""
        return [(int(f), self.file_size(int(f))) for f in fids]

    def iter_files(self) -> Iterator[tuple[int, float]]:
        for fid in range(self.n_samples):
            yield fid, self.file_size(fid)

    def __len__(self) -> int:
        return self.n_samples


def combine_datasets(train: Dataset, valid: Dataset) -> Dataset:
    """One id space over train + validation files.

    Train samples keep ids ``[0, len(train))``; validation samples follow
    at ``[len(train), len(train) + len(valid))``.  The cache layer sees a
    single file population (as HVAC does — it caches whatever the job
    reads), while samplers address the two ranges separately.
    """
    sizes = np.concatenate([train.sizes_array(), valid.sizes_array()])
    return Dataset(
        name=f"{train.name}+{valid.name}",
        n_samples=train.n_samples + valid.n_samples,
        sample_bytes=sizes,
    )
