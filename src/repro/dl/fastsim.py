"""Fluid (analytic) training model for full-scale sweeps.

The discrete-event simulation in :mod:`repro.dl.training` resolves every
RPC and every bandwidth share; at the paper's full scale (1024 nodes ×
524,288 samples × 5 epochs) that is tens of millions of events — hours of
Python.  This module implements the standard macro-scale companion: a
**fluid-flow model** that advances time one *training step* at a time and
computes each rank's I/O duration from closed-form fair-share and queueing
expressions over exactly the same calibrated hardware constants
(:mod:`repro.cluster.config`) and exactly the same placement, sampler,
cache-state, failure, detection, and elastic-rollback logic.

The two models are cross-validated: ``tests/dl/test_fastsim.py`` asserts
that at small scale the fluid model agrees with the DES on epoch times and
policy orderings.  The benchmark harness uses the fluid model for the
Fig 5 / Fig 6(a) sweeps at full scale and the DES for micro-scale runs.

Per-step cost model (mirrors the DES component for component):

* local reads — NVMe op latency + bytes at the device's read bandwidth;
* remote reads — RPC overhead + wire latency + bytes at the server's
  serve rate (min of NIC and NVMe read bandwidth) divided fairly among the
  streams hitting that server this step (this reproduces post-failure
  incast on recache targets);
* PFS reads — access latency + per-file metadata service including MDS
  admission queueing, + bytes at ``min(per_stream, aggregate/streams)``,
  multiplied by a heavy-tailed (lognormal) service-noise factor.  The
  *max* over ranks of these noisy PFS times is what makes the straggler
  effect intensify with node count (Sec V-B.1's key observation);
* step time — ``max over ranks of I/O`` + compute + allreduce, matching
  the per-batch synchronisation barrier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.config import ClusterConfig
from ..core.fault_policy import make_policy
from ..core.hash_ring import HashRing
from ..core.hashing import bulk_hash64
from ..core.static_hash import StaticHash
from ..metrics import Timeline
from ..sim.rng import RngRegistry
from .dataset import Dataset, combine_datasets
from .sampler import DistributedSampler
from .training import TrainingConfig

__all__ = ["FluidTrainingModel", "FluidResult"]


@dataclass
class FluidResult:
    """Fluid-model analogue of :class:`repro.dl.training.TrainingResult`."""

    policy_name: str
    n_nodes_start: int
    n_nodes_end: int
    completed: bool
    total_time: float
    epoch_times: dict[int, float]
    restarts: int
    timeline: Timeline
    #: total bytes read from the PFS over the whole run
    pfs_bytes: float = 0.0
    #: total PFS file-read operations
    pfs_files: int = 0
    #: simulation time spent pre-staging the cache (warmup option)
    warmup_time: float = 0.0
    abort_reason: str = ""

    @property
    def failures(self) -> int:
        return len(self.timeline.failures)


class FluidTrainingModel:
    """Step-resolution training-run model; see module docstring."""

    def __init__(
        self,
        cluster_config: ClusterConfig,
        dataset: Dataset,
        policy_name: str = "FT w/ NVMe",
        config: TrainingConfig = TrainingConfig(),
        n_failures: int = 0,
        failure_spread: float = 0.9,
        seed: int = 0,
        replication: int = 1,
        val_dataset: Optional[Dataset] = None,
        record_steps: bool = False,
    ):
        self.cc = cluster_config
        self.train_samples = dataset.n_samples
        if val_dataset is not None:
            dataset = combine_datasets(dataset, val_dataset)
        self.val_samples = dataset.n_samples - self.train_samples
        self.dataset = dataset
        self.policy_name = policy_name
        self.config = config
        self.n_failures = int(n_failures)
        self.failure_spread = failure_spread
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if replication > 1 and policy_name not in ("FT w/ NVMe", "nvme"):
            raise ValueError("cache replication requires the ring-based FT w/ NVMe policy")
        self.replication = int(replication)
        self.rng = RngRegistry(seed)
        train_view = (
            Dataset(
                name=dataset.name,
                n_samples=self.train_samples,
                sample_bytes=dataset.sizes_array()[: self.train_samples],
            )
            if self.val_samples
            else dataset
        )
        self.sampler = DistributedSampler(
            train_view, batch_size=config.batch_size, seed=config.seed, shuffle=config.shuffle
        )

        n = cluster_config.n_nodes
        if policy_name in ("FT w/ NVMe", "nvme"):
            placement = HashRing(nodes=range(n), vnodes_per_node=config.vnodes_per_node)
        else:
            placement = StaticHash(nodes=range(n))
        self.policy = make_policy(policy_name, placement)

        # Per-file state.
        self._file_hashes = bulk_hash64(np.arange(dataset.n_samples))
        self._sizes = dataset.sizes_array()
        self._cached = np.zeros(dataset.n_samples, dtype=bool)
        self._owners = self._lookup_owners()
        if config.preload:
            self._cached[:] = True

        self._alive = list(range(n))
        #: failed nodes whose TTL detection penalty has not been charged yet
        self._undeclared: list[int] = []
        #: simulation time at which pre-staging finished (warmup option)
        self.warmup_time = 0.0
        #: per-step records (epoch, duration, straggler_ratio) when enabled;
        #: straggler_ratio = slowest rank's I/O over the median rank's —
        #: the amplification the paper's Sec V-B.1 analysis is about
        self.record_steps = bool(record_steps)
        self.step_records: list[tuple[int, float, float]] = []
        self._current_epoch_for_record = 0
        self.timeline = Timeline()
        self.pfs_bytes = 0.0
        self.pfs_files = 0

    # -- helpers ------------------------------------------------------------------
    def _lookup_owners(self) -> np.ndarray:
        owners = self.policy.placement.lookup_hashes(self._file_hashes)
        return owners.astype(np.int64)

    def _allreduce_time(self, n_ranks: int) -> float:
        cc = self.cc.compute
        return cc.allreduce_base + cc.allreduce_per_log2_node * math.log2(max(2, n_ranks))

    def _pfs_time(self, m_files: np.ndarray, b_bytes: np.ndarray, total_streams: int, noise: np.ndarray) -> np.ndarray:
        """Per-rank PFS read time for ``m_files`` files totalling ``b_bytes``."""
        pc = self.cc.pfs
        if total_streams <= 0:
            return np.zeros_like(b_bytes)
        # MDS admission: beyond `metadata_concurrency` concurrent openers the
        # queue adds ~service × (excess / concurrency) of average wait.
        excess = max(0.0, (total_streams - pc.metadata_concurrency) / pc.metadata_concurrency)
        per_meta = pc.metadata_service_time * (1.0 + 0.5 * excess)
        rate = min(pc.per_stream_bw, pc.aggregate_bw / total_streams)
        # Noise hits the latency-bound stages only; the bandwidth share is
        # deterministic fluid (matching the DES model in repro.cluster.pfs).
        latency = pc.access_latency + m_files * (per_meta + pc.random_read_latency)
        return latency * noise + b_bytes / rate

    # -- main loop -----------------------------------------------------------------
    def _draw_failure_plan(self, rng: np.random.Generator) -> list[tuple[int, float]]:
        """(epoch, position) pairs: epoch uniform in [1, epochs-1], position
        uniform in the epoch — "randomly injected after the completion of
        the first epoch … timing and node selection were randomized"."""
        if self.n_failures <= 0:
            return []
        if self.config.epochs < 2:
            raise ValueError("failure injection needs at least 2 epochs")
        epochs = rng.integers(1, self.config.epochs, size=self.n_failures)
        fracs = rng.uniform(0.0, 0.95, size=self.n_failures)
        return sorted(zip(epochs.tolist(), fracs.tolist()))

    def run(self) -> FluidResult:
        cfg = self.config
        noise_rng = self.rng.stream("pfs.noise")
        fail_rng = self.rng.stream("injector")
        plan = self._draw_failure_plan(fail_rng)
        plan_idx = 0

        now = 0.0
        epoch = 0
        restarts = 0
        completed = True
        abort_reason = ""
        n_start = len(self._alive)

        compute = self.cc.compute.step_compute_time
        if self.policy_name not in ("NoFT", "noft"):
            compute = compute + cfg.ft_step_overhead

        if cfg.warmup and not self._cached.all():
            # Pre-staging: all servers pull their shards concurrently at
            # full pipeline depth — aggregate-bandwidth-bound plus the
            # per-server metadata stream (servers fetch in parallel, files
            # within a server sequentially).
            pc = self.cc.pfs
            n_srv = max(1, len(self._alive))
            files_per_srv = self.dataset.n_samples / n_srv
            meta = files_per_srv * (pc.metadata_service_time + pc.random_read_latency)
            now += pc.access_latency + meta + self.dataset.total_bytes / pc.aggregate_bw
            self._cached[:] = True
            self.pfs_bytes += self.dataset.total_bytes
            self.pfs_files += self.dataset.n_samples
            self.warmup_time = now

        while epoch < cfg.epochs:
            if not self._alive:
                completed = False
                abort_reason = "all nodes failed"
                break
            rec = self.timeline.begin_epoch(epoch, now, len(self._alive))
            self._current_epoch_for_record = epoch
            n_epoch_samples = self.train_samples
            remaining = self.sampler.epoch_permutation(epoch)
            consumed = 0  # samples of this epoch already committed
            aborted = False
            done = False

            while not done:
                n_ranks = len(self._alive)
                allreduce = self._allreduce_time(n_ranks)

                # Declare any not-yet-detected failures: the first step of
                # this attempt pays the TTL×threshold declaration cost (all
                # clients block through it concurrently), then the shared
                # placement updates.
                detect_penalty = 0.0
                while self._undeclared:
                    node = self._undeclared.pop()
                    detect_penalty += cfg.ttl * cfg.timeout_threshold
                    self._declare(node)
                    if cfg.proactive_recache and self.policy_name in ("FT w/ NVMe", "nvme"):
                        # Push-based recovery: the new owners bulk-fetch
                        # the lost files off the critical path; training
                        # sees them as cached (the prefetch races demand at
                        # aggregate bandwidth, which at per-failure volumes
                        # of dataset/N completes within the first steps).
                        lost = ~self._cached
                        n_lost = int(lost.sum())
                        if n_lost:
                            self._cached[:] = True
                            self.pfs_bytes += float(self._sizes[lost].sum())
                            self.pfs_files += n_lost

                samples_m = DistributedSampler.shard_matrix(remaining, n_ranks, cfg.batch_size)
                owners_m = np.where(samples_m >= 0, self._owners[np.clip(samples_m, 0, None)], -1)
                node_of_rank = np.asarray(self._alive, dtype=np.int64)
                steps = samples_m.shape[1] // cfg.batch_size

                # Next planned failure inside this epoch, as a threshold on
                # samples consumed (position × epoch size).
                next_pos: Optional[int] = None
                if plan_idx < len(plan) and plan[plan_idx][0] == epoch:
                    next_pos = int(plan[plan_idx][1] * n_epoch_samples)

                failed_mid: Optional[int] = None
                completed_steps = 0
                for step in range(steps):
                    lo = step * cfg.batch_size
                    sub = samples_m[:, lo : lo + cfg.batch_size]
                    own = owners_m[:, lo : lo + cfg.batch_size]
                    n_step = int((sub >= 0).sum())
                    if n_step == 0:
                        break
                    now += self._step_time(sub, own, node_of_rank, compute, allreduce, noise_rng)
                    now += detect_penalty
                    detect_penalty = 0.0
                    consumed += n_step
                    completed_steps = step + 1
                    if next_pos is not None and consumed >= next_pos:
                        failed_mid = self._inject_failure(now, epoch, fail_rng)
                        plan_idx += 1
                        next_pos = (
                            int(plan[plan_idx][1] * n_epoch_samples)
                            if plan_idx < len(plan) and plan[plan_idx][0] == epoch
                            else None
                        )
                        if failed_mid is not None:
                            break

                if failed_mid is None:
                    done = True  # epoch attempt ran to completion
                    continue

                if self.policy_name in ("NoFT", "noft"):
                    completed = False
                    aborted = True
                    abort_reason = f"node {failed_mid} failed under NoFT"
                    break

                # Horovod elastic: detection + fixed restart; with "step"
                # recovery the committed progress survives (the survivors
                # re-shard the unconsumed remainder), with "epoch" recovery
                # the whole epoch restarts from zero.
                now += cfg.elastic.detect_time + cfg.elastic.restart_time(len(self._alive))
                rec.restarts += 1
                restarts += 1
                if cfg.recovery == "epoch":
                    rec.end = now
                    rec = self.timeline.begin_epoch(epoch, now, len(self._alive))
                    remaining = self.sampler.epoch_permutation(epoch)
                    consumed = 0
                else:
                    left = samples_m[:, completed_steps * cfg.batch_size :]
                    remaining = left[left >= 0]

            if self.val_samples and not aborted:
                # Per-epoch validation: forward-only batches over the
                # held-out split, same barrier structure and cache path.
                n_ranks = len(self._alive)
                val_ids = np.arange(self.train_samples, self.dataset.n_samples)
                val_m = DistributedSampler.shard_matrix(val_ids, n_ranks, cfg.batch_size)
                val_own = np.where(val_m >= 0, self._owners[np.clip(val_m, 0, None)], -1)
                node_of_rank = np.asarray(self._alive, dtype=np.int64)
                val_compute = (
                    self.cc.compute.step_compute_time * cfg.validation_compute_fraction
                )
                allreduce = self._allreduce_time(n_ranks)
                for step in range(val_m.shape[1] // cfg.batch_size):
                    lo = step * cfg.batch_size
                    sub = val_m[:, lo : lo + cfg.batch_size]
                    if int((sub >= 0).sum()) == 0:
                        break
                    own = val_own[:, lo : lo + cfg.batch_size]
                    now += self._step_time(sub, own, node_of_rank, val_compute, allreduce, noise_rng)

            rec.end = now
            if aborted:
                break
            epoch += 1

        return FluidResult(
            policy_name=self.policy_name,
            n_nodes_start=n_start,
            n_nodes_end=len(self._alive),
            completed=completed,
            total_time=now,
            epoch_times=self.timeline.epoch_durations(),
            restarts=restarts,
            timeline=self.timeline,
            pfs_bytes=self.pfs_bytes,
            pfs_files=self.pfs_files,
            warmup_time=self.warmup_time,
            abort_reason=abort_reason,
        )

    # -- epoch machinery --------------------------------------------------------------
    def _step_time(
        self,
        sub: np.ndarray,
        own: np.ndarray,
        node_of_rank: np.ndarray,
        compute: float,
        allreduce: float,
        noise_rng: np.random.Generator,
    ) -> float:
        """One synchronised training step: max-rank I/O + compute + allreduce."""
        cc = self.cc
        n_ranks = sub.shape[0]
        valid = sub >= 0
        sizes = self._sizes[np.clip(sub, 0, None)] * valid

        failed_set = np.asarray(sorted(self.policy.failed_nodes), dtype=np.int64)
        pfs_direct = valid & np.isin(own, failed_set) if failed_set.size else np.zeros_like(valid)
        local = valid & (own == node_of_rank[:, None]) & ~pfs_direct
        remote = valid & ~local & ~pfs_direct

        cached = np.zeros_like(valid)
        cached[valid] = self._cached[sub[valid]]
        # Misses go through the owner server to the PFS (cold epoch or
        # post-failure recache); they then become cached.
        miss = valid & ~cached & ~pfs_direct
        if miss.any():
            fids = sub[miss]
            self._cached[fids] = True

        # --- local path ------------------------------------------------------
        hit_local = local & ~miss
        local_bytes = (sizes * hit_local).sum(axis=1)
        t_local = np.where(
            local_bytes > 0, cc.nvme.per_op_latency + local_bytes / cc.nvme.read_bw, 0.0
        )

        # --- remote path (cache hits on other nodes) ---------------------------
        hit_remote = remote & ~miss
        t_remote = np.zeros(n_ranks)
        if hit_remote.any():
            r_idx = np.broadcast_to(np.arange(n_ranks)[:, None], own.shape)[hit_remote]
            srv = own[hit_remote]
            nbytes = sizes[hit_remote]
            pair = r_idx * (srv.max() + 1) + srv
            uniq_pair, inv = np.unique(pair, return_inverse=True)
            pair_bytes = np.bincount(inv, weights=nbytes)
            pair_rank = uniq_pair // (srv.max() + 1)
            pair_srv = uniq_pair % (srv.max() + 1)
            streams_per_srv = np.bincount(pair_srv, minlength=int(pair_srv.max()) + 1)
            serve_rate = min(cc.network.link_bw, cc.nvme.read_bw)
            pair_t = (
                cc.network.rpc_overhead
                + cc.network.base_latency
                + pair_bytes * streams_per_srv[pair_srv] / serve_rate
            )
            np.maximum.at(t_remote, pair_rank.astype(np.intp), pair_t)

        # --- PFS path (direct redirect + server misses) ---------------------------
        # Redirected reads are client-side chunked (latency-amplified);
        # cache-miss fetches are one sequential server-side read each.
        m_direct = pfs_direct.sum(axis=1).astype(np.float64)
        m_miss = miss.sum(axis=1).astype(np.float64)
        b_bytes = (sizes * (pfs_direct | miss)).sum(axis=1)
        total_streams = int(((m_direct + m_miss) > 0).sum())
        t_pfs = np.zeros(n_ranks)
        if total_streams > 0:
            sigma = self.cc.pfs.service_noise_sigma
            if sigma > 0:
                noise = noise_rng.lognormal(mean=0.0, sigma=sigma, size=n_ranks)
            else:
                noise = np.ones(n_ranks)
            amp = self.cc.pfs.redirect_read_amplification
            eff_files = m_direct * amp + m_miss
            t_pfs = self._pfs_time(eff_files, b_bytes, total_streams, noise)
            t_pfs = np.where(b_bytes > 0, t_pfs, 0.0)
            self.pfs_bytes += float(b_bytes.sum())
            self.pfs_files += int((m_direct + m_miss).sum())
            # Misses are served via the remote/local channel too; the PFS
            # stage dominates, and the serve stage is already covered by the
            # RPC/NVMe terms for cached traffic, so we take the max below.

        io = np.maximum(np.maximum(t_local, t_remote), t_pfs)
        if self.record_steps:
            med = float(np.median(io))
            ratio = float(io.max()) / med if med > 0 else 1.0
            step_total = (
                max(float(io.max()), compute) + allreduce
                if self.config.pipelined_loader
                else float(io.max()) + compute + allreduce
            )
            self.step_records.append((self._current_epoch_for_record, step_total, ratio))
        if self.config.pipelined_loader:
            # Prefetch pipeline: reads overlap the previous batch's compute,
            # so the barrier waits for max(io, compute), not their sum.
            return max(float(io.max()), compute) + allreduce
        return float(io.max()) + compute + allreduce

    def straggler_summary(self) -> dict:
        """Distribution of the per-step straggler ratio (needs record_steps).

        Returns mean/p50/p99 of ``max_rank_io / median_rank_io`` — >1 means
        batches wait on their slowest reader, the effect that makes PFS
        redirection expensive at scale (Sec V-B.1).
        """
        if not self.step_records:
            raise ValueError("no step records: construct with record_steps=True and run()")
        ratios = np.array([r for _, _, r in self.step_records])
        return {
            "steps": int(ratios.size),
            "mean": float(ratios.mean()),
            "p50": float(np.percentile(ratios, 50)),
            "p99": float(np.percentile(ratios, 99)),
            "max": float(ratios.max()),
        }

    # -- failure machinery --------------------------------------------------------------
    def _inject_failure(self, now: float, epoch: int, rng: np.random.Generator) -> Optional[int]:
        if len(self._alive) <= 1:
            return None
        victim = int(self._alive[int(rng.integers(0, len(self._alive)))])
        self._alive.remove(victim)
        self.timeline.note_failure(now, victim, epoch)
        # Cache contents on the dead NVMe are gone instantly.  With k-way
        # replication a file is only *lost* when every replica sat on the
        # victim (salted placements make that ~N^{1-k}-rare); a surviving
        # replica keeps serving and redundancy is restored off the
        # critical path.
        if self.replication > 1:
            from ..core.replication import salted_hashes

            lost = np.ones(self.dataset.n_samples, dtype=bool)
            for r in range(self.replication):
                owners_r = self.policy.placement.lookup_hashes(
                    salted_hashes(self._file_hashes, r)
                ).astype(np.int64)
                lost &= owners_r == victim
            self._cached[lost] = False
        else:
            self._cached[self._owners == victim] = False
        # Clients have not *detected* it yet: the TTL penalty and the
        # placement update happen at first touch after the rollback.
        self._undeclared.append(victim)
        return victim

    def _declare(self, node: int) -> None:
        """Apply the fault policy once detection completes."""
        try:
            self.policy.on_node_failed(node)
        except Exception:
            raise
        self._owners = self._lookup_owners()
