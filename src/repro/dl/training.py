"""Data-parallel training job over the HVAC cache — the end-to-end harness.

Assembles the whole stack for one training run (Fig 5's unit of
measurement): HVAC servers and clients on every node, a shared placement +
fault policy, a per-epoch distributed sampler, per-batch synchronisation
barriers, Horovod-elastic rollback, and a timeline recorder.

Flow per epoch:

* every alive node runs a *rank* process: read batch through the HVAC
  client → compute → barrier (allreduce);
* a node failure leaves survivors hung at the barrier; the elastic
  controller notices after ``ElasticConfig.detect_time``, interrupts all
  ranks, pays ``restart_overhead``, and restarts the epoch with N−1 ranks
  (the paper's "reverting to the start of the failed epoch");
* during the restarted epoch, surviving HVAC clients independently hit the
  dead server, time out, declare it failed, and the fault policy takes
  over (abort / PFS redirect / ring recache).

The policy and membership view are shared across clients by default: all
clients converge to the same post-failure view, and the per-client
detection *cost* (TTL expiries) is still paid by whichever clients touch
the dead node.  Pass ``shared_policy=False`` to give every client its own
placement instance (exact per-client views; memory grows with N²).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cluster.topology import Cluster
from ..core.fault_policy import FaultPolicy, UnrecoverableNodeFailure, make_policy
from ..core.hash_ring import HashRing
from ..core.membership import MembershipView
from ..core.placement import PlacementPolicy
from ..core.static_hash import StaticHash
from ..hvac.client import HvacClient
from ..hvac.rpc import RpcFabric
from ..hvac.server import HvacServer
from ..metrics import MetricsCollector, Timeline
from ..metrics.trace import Tracer
from ..sim import AnyOf, Event, Interrupt, Process
from .dataset import Dataset, combine_datasets
from .elastic import ElasticConfig, StepBarrier
from .sampler import DistributedSampler

__all__ = ["TrainingConfig", "TrainingResult", "TrainingJob", "JobAborted"]


class JobAborted(RuntimeError):
    """The training job terminated without completing all epochs (NoFT path)."""

    def __init__(self, reason: str, node_id: Optional[int] = None):
        super().__init__(reason)
        self.node_id = node_id


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs for one training run (defaults follow the paper's setup)."""

    epochs: int = 5
    batch_size: int = 8  # samples per rank per step
    seed: int = 0
    shuffle: bool = True
    # --- cache-layer fault tolerance (artifact's TIMEOUT_SECONDS / TIMEOUT_LIMIT)
    ttl: float = 1.0
    timeout_threshold: int = 3
    #: virtual nodes per physical node for ring placement (paper: 100)
    vnodes_per_node: int = 100
    #: extra per-step cost of FT bookkeeping (conditional checks, timeout
    #: monitoring, mutexes — why NoFT wins slightly in Fig 5a)
    ft_step_overhead: float = 0.4e-3
    elastic: ElasticConfig = field(default_factory=ElasticConfig)
    #: start with the cache already populated (skip the cold first epoch)
    preload: bool = False
    #: pipelined data loading (tf.data/DataLoader prefetch): the next
    #: batch's reads overlap the current batch's compute, so a step costs
    #: max(io, compute) instead of io + compute.  Off by default — the
    #: paper's straggler analysis presumes synchronous, on-critical-path
    #: reads — and exposed for the prefetch ablation.
    pipelined_loader: bool = False
    #: pre-stage the cache before training starts: every server bulk-reads
    #: its shard from the PFS at full pipeline depth (aggregate-bound),
    #: so even the first epoch runs warm.  An operational extension — the
    #: paper's HVAC populates on demand during epoch 1.
    warmup: bool = False
    #: push-based recovery: when a failure is declared, the new owners
    #: bulk-fetch the lost files in the background instead of waiting for
    #: demand misses.  The paper's artifact "reactively caches the files
    #: upon missing" — this flag is the proactive alternative; demand
    #: misses racing ahead of the prefetch still work normally.
    proactive_recache: bool = False
    #: forward-pass cost of a validation batch relative to a training step
    validation_compute_fraction: float = 0.4
    #: elastic recovery granularity: "step" resumes from the last committed
    #: batch (Horovod elastic with per-batch ``state.commit()``, the
    #: behaviour required to reconcile the paper's Fig 5b percentages with
    #: five failures per run); "epoch" re-runs the failed epoch from its
    #: start (the paper's textual description) — kept for the ablation.
    recovery: str = "step"

    def __post_init__(self) -> None:
        if self.recovery not in ("step", "epoch"):
            raise ValueError(f"recovery must be 'step' or 'epoch', got {self.recovery!r}")


@dataclass
class TrainingResult:
    """Everything the experiment harness needs from one run."""

    policy_name: str
    n_nodes_start: int
    n_nodes_end: int
    completed: bool
    total_time: float
    #: wall-clock attributed to each epoch index (rollback attempts included)
    epoch_times: dict[int, float]
    restarts: int
    timeline: Timeline
    metrics: MetricsCollector
    abort_reason: str = ""

    @property
    def failures(self) -> int:
        return len(self.timeline.failures)


def _default_placement(policy_name: str, nodes: range, config: TrainingConfig) -> PlacementPolicy:
    """The paper's pairing: ring for elastic recaching, HVAC's static hash
    for NoFT and PFS redirection (their placement never changes)."""
    if policy_name in ("FT w/ NVMe", "nvme"):
        return HashRing(nodes=nodes, vnodes_per_node=config.vnodes_per_node)
    return StaticHash(nodes=nodes)


class TrainingJob:
    """One CosmoFlow-style run on a cluster under a fault-tolerance policy."""

    def __init__(
        self,
        cluster: Cluster,
        dataset: Dataset,
        policy_name: str = "FT w/ NVMe",
        config: TrainingConfig = TrainingConfig(),
        placement: Optional[PlacementPolicy] = None,
        metrics: Optional[MetricsCollector] = None,
        shared_policy: bool = True,
        trace: bool = False,
        val_dataset: Optional[Dataset] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.train_samples = dataset.n_samples
        if val_dataset is not None:
            # One cache-visible id space: validation files follow training
            # files (the paper evaluates the 65,536-sample split each epoch).
            dataset = combine_datasets(dataset, val_dataset)
        self.val_samples = dataset.n_samples - self.train_samples
        self.dataset = dataset
        self.config = config
        self.policy_name = policy_name
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.timeline = Timeline()
        train_view = (
            Dataset(
                name=dataset.name,
                n_samples=self.train_samples,
                sample_bytes=dataset.sizes_array()[: self.train_samples],
            )
            if self.val_samples
            else dataset
        )
        self.sampler = DistributedSampler(
            train_view, batch_size=config.batch_size, seed=config.seed, shuffle=config.shuffle
        )

        n = cluster.n_nodes
        self.tracer = Tracer() if trace else None
        self.fabric = RpcFabric(cluster)
        self.servers = [
            HvacServer(cluster, i, self.fabric, metrics=self.metrics, tracer=self.tracer)
            for i in range(n)
        ]
        self.membership = MembershipView(range(n))

        base_placement = placement if placement is not None else _default_placement(
            policy_name, range(n), config
        )
        self.clients: list[HvacClient] = []
        self._shared_policy = shared_policy
        if shared_policy:
            shared = make_policy(policy_name, base_placement)
            self.policy: Optional[FaultPolicy] = shared
            policies = [shared] * n
        else:
            self.policy = None
            policies = [make_policy(policy_name, copy.deepcopy(base_placement)) for _ in range(n)]
        for i in range(n):
            self.clients.append(
                HvacClient(
                    cluster,
                    i,
                    policies[i],
                    self.fabric,
                    membership=self.membership,
                    metrics=self.metrics,
                    ttl=config.ttl,
                    timeout_threshold=config.timeout_threshold,
                    tracer=self.tracer,
                )
            )

        self._epoch_end_events: dict[int, Event] = {}
        self._ranks: list[int] = list(range(n))
        self._proc: Optional[Process] = None
        self.current_epoch = 0
        #: pre-failure owner map, kept for proactive recovery
        self._owner_snapshot: Optional[np.ndarray] = None
        if config.proactive_recache:
            self._owner_snapshot = policies[0].placement.lookup_many(
                np.arange(dataset.n_samples)
            )
            self.membership.subscribe(self._on_membership_change)
            self._recovery_policy = policies[0]

        if config.preload:
            self._preload_caches(policies[0])

    # -- setup helpers ---------------------------------------------------------------
    def _preload_caches(self, policy: FaultPolicy) -> None:
        """Populate every server as if epoch 1 had already run."""
        fids = np.arange(self.dataset.n_samples)
        owners = policy.placement.lookup_many(fids)
        sizes = self.dataset.sizes_array()
        for node_id in range(self.cluster.n_nodes):
            mask = owners == node_id
            files = [(int(f), float(s)) for f, s in zip(fids[mask], sizes[mask])]
            self.servers[node_id].preload(files)

    def epoch_end_event(self, epoch: int) -> Event:
        """Event fired when ``epoch`` completes (used by failure injectors)."""
        evt = self._epoch_end_events.get(epoch)
        if evt is None:
            evt = Event(self.env)
            self._epoch_end_events[epoch] = evt
        return evt

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(self._ranks)

    def _allreduce_time(self, n_ranks: int) -> float:
        cc = self.cluster.config.compute
        return cc.allreduce_base + cc.allreduce_per_log2_node * math.log2(max(2, n_ranks))

    # -- run --------------------------------------------------------------------------
    def start(self) -> Process:
        """Launch servers + controller; returns the controller process."""
        if self._proc is not None:
            raise RuntimeError("job already started")
        for s in self.servers:
            s.start()
        self._proc = self.env.process(self._controller(), name="training-controller")
        return self._proc

    # -- proactive recovery (push-based recaching extension) --------------------------
    def _on_membership_change(self, node_id, state) -> None:
        from ..core.membership import NodeState

        if state is NodeState.FAILED:
            self.env.process(
                self._proactive_recache(int(node_id)), name=f"proactive-recache-{node_id}"
            )

    def _proactive_recache(self, failed_node: int):
        """Process body: new owners bulk-fetch the failed node's files.

        Runs concurrently with training; demand misses for files the
        prefetch has not reached yet still take the normal recache path
        (the server-side inflight set dedupes the PFS fetches).
        """
        assert self._owner_snapshot is not None
        fids = np.arange(self.dataset.n_samples)
        lost = fids[self._owner_snapshot == failed_node]
        if len(lost) == 0:
            return
        sizes = self.dataset.sizes_array()
        new_owners = self._recovery_policy.placement.lookup_many(lost)
        # Refresh the snapshot so cascading failures recover correctly.
        self._owner_snapshot = self._recovery_policy.placement.lookup_many(fids)

        def _pull(server, files):
            pending = [(int(f), float(s)) for f, s in files if int(f) not in server.store]
            if not pending:
                return
            total = sum(nb for _, nb in pending)
            yield from self.cluster.pfs.read(total, n_files=len(pending))
            server.preload(pending)
            self.metrics.add("proactive.bytes", total)
            self.metrics.inc("proactive.files", len(pending))

        procs = []
        for owner in set(new_owners.tolist()):
            if not self.cluster.nodes[int(owner)].alive:
                continue
            mask = new_owners == owner
            files = list(zip(lost[mask], sizes[lost[mask]]))
            procs.append(self.env.process(_pull(self.servers[int(owner)], files)))
        if procs:
            yield self.env.all_of(procs)

    # -- warmup (pre-staging extension) ---------------------------------------------
    def _warmup(self):
        """Process body: every server bulk-fetches its shard from the PFS.

        Runs before epoch 0; transfers share the PFS aggregate bandwidth
        concurrently (deep pipelines, no training barrier), after which the
        caches are populated and the first epoch behaves like a warm one.
        """
        policy_placement = self.clients[0].policy.placement
        fids = np.arange(self.dataset.n_samples)
        owners = policy_placement.lookup_many(fids)
        sizes = self.dataset.sizes_array()

        def _stage(server, files):
            total = float(sum(nb for _, nb in files))
            if not files:
                return
            yield from self.cluster.pfs.read(total, n_files=len(files))
            server.preload(files)
            self.metrics.add("warmup.bytes", total)

        procs = []
        for node_id in range(self.cluster.n_nodes):
            mask = owners == node_id
            files = [(int(f), float(s)) for f, s in zip(fids[mask], sizes[mask])]
            procs.append(self.env.process(_stage(self.servers[node_id], files)))
        if procs:
            yield self.env.all_of(procs)
        self.metrics.record("warmup.done", self.env.now, 1.0)

    def run(self) -> TrainingResult:
        """Convenience: start and drive the simulation to completion."""
        proc = self.start()
        self.env.run(until=proc)
        return proc.value

    # -- controller ---------------------------------------------------------------------
    def _controller(self):
        cfg = self.config
        t_start = self.env.now
        n_start = len(self._ranks)
        if cfg.warmup:
            yield from self._warmup()
        restarts = 0
        epoch = 0
        abort_reason = ""
        completed = True
        remaining = None  # unconsumed sample tail of the current epoch
        remaining_epoch = -1

        while epoch < cfg.epochs:
            self.current_epoch = epoch
            # Nodes that died while we were rolling back (detect/restart
            # window) were never seen by the AnyOf below — record them here
            # so the timeline counts every injected failure.
            dead_unnoticed = [
                n
                for n in self._ranks
                if not self.cluster.nodes[n].alive
                and not any(f.node_id == n for f in self.timeline.failures)
            ]
            for n in dead_unnoticed:
                self.timeline.note_failure(self.env.now, n, epoch)
                self.metrics.inc("job.node_failures")
            self._ranks = [n for n in self._ranks if self.cluster.nodes[n].alive]
            if not self._ranks:
                completed = False
                abort_reason = "all nodes failed"
                break
            n_ranks = len(self._ranks)
            rec = self.timeline.begin_epoch(epoch, self.env.now, n_ranks)
            barrier = StepBarrier(self.env, n_ranks, self._allreduce_time(n_ranks))
            # Shard whatever remains of this epoch over the current ranks.
            # A fresh epoch starts from its full permutation; after a
            # step-level rollback `remaining` holds the unconsumed tail.
            if remaining_epoch != epoch or remaining is None:
                remaining = self.sampler.epoch_permutation(epoch)
                remaining_epoch = epoch
            samples_m = DistributedSampler.shard_matrix(remaining, n_ranks, cfg.batch_size)
            rank_procs = [
                self.env.process(
                    self._rank_epoch(node, samples_m[rank], barrier),
                    name=f"rank{rank}-epoch{epoch}",
                )
                for rank, node in enumerate(self._ranks)
            ]
            epoch_done = self.env.all_of(rank_procs)
            fail_events = [self.cluster.nodes[n].failed_event for n in self._ranks]
            fired = yield AnyOf(self.env, [epoch_done] + fail_events)

            if epoch_done in fired:
                # A rank may have surfaced a NoFT abort as its return value.
                aborted = [p.value for p in rank_procs if isinstance(p.value, JobAborted)]
                if aborted:
                    rec.end = self.env.now
                    completed = False
                    abort_reason = str(aborted[0])
                    break
                if self.val_samples:
                    # Per-epoch validation over the held-out split (forward
                    # passes + metric allreduce; same barrier structure).
                    val_ids = np.arange(self.train_samples, self.dataset.n_samples)
                    val_m = DistributedSampler.shard_matrix(val_ids, n_ranks, cfg.batch_size)
                    val_barrier = StepBarrier(self.env, n_ranks, self._allreduce_time(n_ranks))
                    val_procs = [
                        self.env.process(
                            self._rank_validation(node, val_m[rank], val_barrier),
                            name=f"val-rank{rank}-epoch{epoch}",
                        )
                        for rank, node in enumerate(self._ranks)
                    ]
                    yield self.env.all_of(val_procs)
                    self.metrics.inc("job.validation_passes")
                rec.end = self.env.now
                evt = self._epoch_end_events.get(epoch)
                if evt is not None and not evt.triggered:
                    evt.succeed(self.env.now)
                epoch += 1
                remaining = None
                continue

            # --- a participating node failed mid-epoch ---
            failed_node = next(iter(fired.values()))
            self.timeline.note_failure(self.env.now, int(failed_node), epoch)
            self.metrics.inc("job.node_failures")

            if self.policy_name in ("NoFT", "noft"):
                # Baseline HVAC: no recovery — the job dies here (Fig 5b's
                # dashed line is the *no-failure* reference for this case).
                for p in rank_procs:
                    if p.is_alive:
                        p.interrupt("job-abort")
                yield epoch_done
                rec.end = self.env.now
                completed = False
                abort_reason = f"node {failed_node} failed under NoFT"
                break

            # Horovod elastic: detection delay, tear-down, fixed restart
            # cost, then re-enter the same epoch with the survivors.
            yield self.env.timeout(cfg.elastic.detect_time)
            for p in rank_procs:
                if p.is_alive:
                    p.interrupt("elastic-rollback")
            yield epoch_done  # all ranks unwound (AllOf of their processes)
            rec.end = self.env.now
            rec.restarts += 1
            restarts += 1
            self.metrics.inc("job.elastic_restarts")
            if cfg.recovery == "step":
                # Progress up to the last completed barrier generation is
                # committed; survivors re-shard only the unconsumed tail.
                committed = barrier.generations * cfg.batch_size
                left = samples_m[:, committed:]
                remaining = left[left >= 0]
            else:
                remaining = None  # epoch rollback: start the epoch over
            yield self.env.timeout(cfg.elastic.restart_time(len(self._ranks)))
            # epoch NOT incremented: re-enter it (fully or from the tail).

        total = self.env.now - t_start
        return TrainingResult(
            policy_name=self.policy_name,
            n_nodes_start=n_start,
            n_nodes_end=len([n for n in self._ranks if self.cluster.nodes[n].alive]),
            completed=completed,
            total_time=total,
            epoch_times=self.timeline.epoch_durations(),
            restarts=restarts,
            timeline=self.timeline,
            metrics=self.metrics,
            abort_reason=abort_reason,
        )

    # -- per-rank epoch ------------------------------------------------------------------
    def _rank_epoch(self, node_id: int, shard: "np.ndarray", barrier: StepBarrier):
        """One rank's pass over its padded shard row (-1 entries are holes)."""
        cfg = self.config
        client = self.clients[node_id]
        node = self.cluster.nodes[node_id]
        compute = self.cluster.config.compute.step_compute_time
        if self.policy_name not in ("NoFT", "noft"):
            compute = compute + cfg.ft_step_overhead
        steps = len(shard) // cfg.batch_size
        try:
            if cfg.pipelined_loader:
                return (yield from self._rank_epoch_pipelined(
                    client, node, shard, steps, compute, barrier
                ))
            for step in range(steps):
                if not node.alive:
                    # This node died: its rank silently stops contributing
                    # (survivors hang at the barrier until the controller
                    # rolls the epoch back).
                    return "node-dead"
                batch = shard[step * cfg.batch_size : (step + 1) * cfg.batch_size]
                batch = batch[batch >= 0]
                if batch.size:
                    try:
                        yield from client.read_files(self.dataset.files(batch))
                    except UnrecoverableNodeFailure as exc:
                        # NoFT: the cache layer has no recovery; surface the
                        # abort to the controller via the return value.
                        return JobAborted(str(exc), node_id=exc.node)
                    yield self.env.timeout(compute)
                else:
                    yield self.env.timeout(compute * 0.1)  # tail step, no data
                yield barrier.arrive()
            return "epoch-complete"
        except Interrupt as intr:
            return f"interrupted:{intr.cause}"

    def _rank_validation(self, node_id: int, shard: "np.ndarray", barrier: StepBarrier):
        """One rank's validation pass: forward-only batches + metric allreduce."""
        cfg = self.config
        client = self.clients[node_id]
        node = self.cluster.nodes[node_id]
        compute = self.cluster.config.compute.step_compute_time * cfg.validation_compute_fraction
        steps = len(shard) // cfg.batch_size
        try:
            for step in range(steps):
                if not node.alive:
                    return "node-dead"
                batch = shard[step * cfg.batch_size : (step + 1) * cfg.batch_size]
                batch = batch[batch >= 0]
                if batch.size:
                    try:
                        yield from client.read_files(self.dataset.files(batch))
                    except UnrecoverableNodeFailure as exc:
                        return JobAborted(str(exc), node_id=exc.node)
                    yield self.env.timeout(compute)
                else:
                    yield self.env.timeout(compute * 0.1)
                yield barrier.arrive()
            return "validation-complete"
        except Interrupt as intr:
            return f"interrupted:{intr.cause}"

    def _rank_epoch_pipelined(self, client, node, shard, steps, compute, barrier):
        """Rank loop with a one-batch prefetch pipeline.

        The loader fetches batch ``k+1`` while batch ``k`` computes, so a
        steady-state step costs ``max(io, compute)`` — the tf.data /
        DataLoader behaviour, used by the prefetch ablation.
        """
        cfg = self.config

        def _read(step):
            batch = shard[step * cfg.batch_size : (step + 1) * cfg.batch_size]
            batch = batch[batch >= 0]
            if batch.size:
                yield from client.read_files(self.dataset.files(batch))
            return None

        pending = self.env.process(_read(0), name=f"prefetch-{node.node_id}-0")
        for step in range(steps):
            if not node.alive:
                return "node-dead"
            try:
                yield pending  # data for this step (may already be done)
            except UnrecoverableNodeFailure as exc:
                return JobAborted(str(exc), node_id=exc.node)
            if step + 1 < steps:
                pending = self.env.process(
                    _read(step + 1), name=f"prefetch-{node.node_id}-{step + 1}"
                )
            yield self.env.timeout(compute)
            yield barrier.arrive()
        return "epoch-complete"
