"""Horovod-elastic semantics: synchronisation barrier and rollback costs.

CosmoFlow in the paper runs under ``horovodrun --elastic``: on a rank
failure, training "revert[s] to the start of the failed epoch" and resumes
with the surviving ranks.  Two costs dominate (Sec V-B.1): the *detection*
delay before the collective notices a dead peer, and the *fixed
re-initialisation* overhead of the elastic restart — "the fixed time
required for Horovod's elastic run resumption, which becomes more
significant as baseline training time decreases with increased
parallelism" (this is why relative overheads grow with node count in
Fig 5b even though per-failure data loss shrinks).

:class:`StepBarrier` is the per-batch gradient synchronisation point that
creates the straggler effect: a step ends only when the *slowest* rank
arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import Environment, Event

__all__ = ["ElasticConfig", "StepBarrier"]


@dataclass(frozen=True)
class ElasticConfig:
    """Rollback cost model for Horovod elastic run."""

    #: time for the collective to notice a dead rank and tear down
    detect_time: float = 5.0
    #: base re-initialisation cost of an elastic restart (rendezvous,
    #: topology rebuild, optimizer state broadcast)
    restart_overhead: float = 5.0
    #: additional restart cost per log2(node count): re-forming collectives
    #: and broadcasting state takes longer on wider allocations, which is
    #: why "the fixed time required for Horovod's elastic run resumption
    #: becomes more significant" at scale (Sec V-B.1)
    restart_per_log2_node: float = 2.5

    def restart_time(self, n_ranks: int) -> float:
        """Total elastic-restart cost for an ``n_ranks``-wide job."""
        import math

        return self.restart_overhead + self.restart_per_log2_node * math.log2(max(2, n_ranks))


class StepBarrier:
    """Cyclic barrier over ``parties`` ranks with an allreduce delay.

    Every rank calls :meth:`arrive` once per step and yields the returned
    event; the event fires ``allreduce_time`` after the last rank arrives
    (the gradient exchange).  The barrier then resets for the next step.

    A dead rank simply never arrives — survivors block until the elastic
    controller interrupts them, which is exactly how a hung collective
    behaves.
    """

    def __init__(self, env: Environment, parties: int, allreduce_time: float = 0.0):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        if allreduce_time < 0:
            raise ValueError("allreduce_time must be >= 0")
        self.env = env
        self.parties = parties
        self.allreduce_time = allreduce_time
        self._count = 0
        self._release = Event(env)
        self.generations = 0

    def arrive(self) -> Event:
        """Register this rank's arrival; yield the returned event to wait."""
        release = self._release
        self._count += 1
        if self._count == self.parties:
            # Last one in runs the allreduce, then releases everyone.
            self._count = 0
            self._release = Event(self.env)
            self.generations += 1
            if self.allreduce_time > 0:
                gate = self.env.timeout(self.allreduce_time)
                gate.callbacks.append(lambda _e: release.succeed())
            else:
                release.succeed()
        return release

    @property
    def waiting(self) -> int:
        """Ranks currently blocked at the barrier."""
        return self._count
