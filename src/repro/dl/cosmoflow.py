"""CosmoFlow workload preset (Sec V-A.2).

The paper trains CosmoFlow (MLPerf HPC) on the cosmoUniverse dataset:
1.3 TB of preprocessed TFRecords, 524,288 training and 65,536 validation
samples, 5 epochs per experiment.  ``scale`` shrinks the sample count for
tractable simulation while keeping the per-sample size (and therefore all
bandwidth/latency ratios) intact — the experiment harness documents which
scale each reproduced figure used.
"""

from __future__ import annotations

from .dataset import Dataset

__all__ = [
    "COSMOFLOW_TRAIN_SAMPLES",
    "COSMOFLOW_VALID_SAMPLES",
    "COSMOFLOW_TOTAL_BYTES",
    "COSMOFLOW_SAMPLE_BYTES",
    "COSMOFLOW_EPOCHS",
    "cosmoflow_dataset",
]

COSMOFLOW_TRAIN_SAMPLES = 524_288
COSMOFLOW_VALID_SAMPLES = 65_536
COSMOFLOW_TOTAL_BYTES = 1.3e12  # "1.3TB TFRecord files"
#: 1.3 TB spread over train+validation samples
COSMOFLOW_SAMPLE_BYTES = COSMOFLOW_TOTAL_BYTES / (COSMOFLOW_TRAIN_SAMPLES + COSMOFLOW_VALID_SAMPLES)
COSMOFLOW_EPOCHS = 5


def cosmoflow_dataset(scale: float = 1.0, split: str = "train") -> Dataset:
    """CosmoFlow training (or validation) set, optionally scaled down.

    ``scale=1.0`` is the paper's full 524,288-sample set; ``scale=1/16``
    keeps per-sample bytes and produces 32,768 samples — the default used
    by the end-to-end simulation benchmarks.
    """
    if not (0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    if split == "train":
        base = COSMOFLOW_TRAIN_SAMPLES
    elif split == "valid":
        base = COSMOFLOW_VALID_SAMPLES
    else:
        raise ValueError(f"unknown split {split!r}")
    n = max(1, int(round(base * scale)))
    return Dataset(
        name=f"cosmoUniverse_{split}",
        n_samples=n,
        sample_bytes=COSMOFLOW_SAMPLE_BYTES,
    )
