"""Deep-learning workload model: dataset, sampler, elastic training loop."""

from .cosmoflow import (
    COSMOFLOW_EPOCHS,
    COSMOFLOW_SAMPLE_BYTES,
    COSMOFLOW_TOTAL_BYTES,
    COSMOFLOW_TRAIN_SAMPLES,
    COSMOFLOW_VALID_SAMPLES,
    cosmoflow_dataset,
)
from .dataset import Dataset, combine_datasets
from .fastsim import FluidResult, FluidTrainingModel
from .elastic import ElasticConfig, StepBarrier
from .sampler import DistributedSampler
from .training import JobAborted, TrainingConfig, TrainingJob, TrainingResult

__all__ = [
    "COSMOFLOW_EPOCHS",
    "COSMOFLOW_SAMPLE_BYTES",
    "COSMOFLOW_TOTAL_BYTES",
    "COSMOFLOW_TRAIN_SAMPLES",
    "COSMOFLOW_VALID_SAMPLES",
    "cosmoflow_dataset",
    "Dataset",
    "combine_datasets",
    "FluidResult",
    "FluidTrainingModel",
    "ElasticConfig",
    "StepBarrier",
    "DistributedSampler",
    "JobAborted",
    "TrainingConfig",
    "TrainingJob",
    "TrainingResult",
]
