"""Distributed epoch-shuffled sampling.

Data-parallel DL reshuffles the whole dataset every epoch and shards it
across ranks (Sec II-A: "subsequent epochs involve shuffling, requiring
random access to different data segments").  The sampler is:

* **deterministic** — the permutation is a pure function of
  ``(seed, epoch)``, so every rank computes the same global order with no
  communication, and a rollback of the same epoch re-reads the same data;
* **elastic** — sharding is a function of the *current* rank count, so
  after a failure the surviving ``N-1`` ranks re-shard the full epoch
  (Horovod-elastic semantics: the epoch restarts from its beginning).

Sharding interleaves (``perm[rank::n_ranks]``) rather than chunking so
every rank's share stays balanced to within one sample.
"""

from __future__ import annotations

import numpy as np

from ..sim.rng import derive_seed
from .dataset import Dataset

__all__ = ["DistributedSampler"]


class DistributedSampler:
    """Per-epoch global shuffle + per-rank interleaved shard + batching."""

    def __init__(self, dataset: Dataset, batch_size: int, seed: int = 0, shuffle: bool = True):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.seed = int(seed)
        self.shuffle = bool(shuffle)
        self._perm_cache: dict[int, np.ndarray] = {}

    # -- global order ---------------------------------------------------------
    def epoch_permutation(self, epoch: int) -> np.ndarray:
        """The global sample order for ``epoch`` (cached; shared by ranks)."""
        perm = self._perm_cache.get(epoch)
        if perm is None:
            if self.shuffle:
                rng = np.random.default_rng(derive_seed(self.seed, f"epoch:{epoch}"))
                perm = rng.permutation(self.dataset.n_samples)
            else:
                perm = np.arange(self.dataset.n_samples)
            # Keep the cache bounded: ranks only ever need the current epoch
            # (and its rollback repeats), so one entry suffices.
            self._perm_cache = {epoch: perm}
        return perm

    # -- per-rank view -----------------------------------------------------------
    def rank_samples(self, epoch: int, rank: int, n_ranks: int) -> np.ndarray:
        """Sample ids rank ``rank`` of ``n_ranks`` reads this epoch."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if not (0 <= rank < n_ranks):
            raise ValueError(f"rank {rank} out of range [0, {n_ranks})")
        return self.epoch_permutation(epoch)[rank::n_ranks]

    def steps_per_epoch(self, n_ranks: int) -> int:
        """Synchronised step count: every rank takes the same number of
        batches (shorter shards simply have a smaller final batch), so the
        per-batch barrier lines up."""
        per_rank_max = -(-self.dataset.n_samples // n_ranks)  # ceil
        return -(-per_rank_max // self.batch_size)

    def batch(self, epoch: int, step: int, rank: int, n_ranks: int) -> np.ndarray:
        """Sample ids for one ``(epoch, step, rank)`` batch (may be empty)."""
        shard = self.rank_samples(epoch, rank, n_ranks)
        lo = step * self.batch_size
        return shard[lo : lo + self.batch_size]

    def iter_batches(self, epoch: int, rank: int, n_ranks: int):
        """Yield this rank's batches for ``epoch`` in step order."""
        for step in range(self.steps_per_epoch(n_ranks)):
            yield self.batch(epoch, step, rank, n_ranks)

    # -- elastic step-level resume -------------------------------------------------
    def remaining_after(self, epoch: int, completed_steps: int, n_ranks: int) -> np.ndarray:
        """Sample ids not yet consumed after ``completed_steps`` barriers.

        Used by step-level elastic recovery: the survivors re-shard exactly
        the unconsumed remainder of the epoch.  With the interleaved shard,
        index ``i`` of the permutation sits at position ``i // n_ranks``
        within its rank's shard, so consumption is a simple threshold.
        """
        if completed_steps < 0:
            raise ValueError("completed_steps must be >= 0")
        perm = self.epoch_permutation(epoch)
        consumed = completed_steps * self.batch_size
        within_shard = np.arange(len(perm)) // n_ranks
        return perm[within_shard >= consumed]

    @staticmethod
    def shard_matrix(samples: np.ndarray, n_ranks: int, batch_size: int) -> np.ndarray:
        """Pad ``samples`` into a ``[n_ranks, steps×batch]`` matrix (-1 = hole).

        Row ``r`` is the interleaved shard ``samples[r::n_ranks]``; every
        rank gets the same step count so per-batch barriers line up.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        per_rank_max = -(-len(samples) // n_ranks) if len(samples) else 0
        steps = -(-per_rank_max // batch_size) if per_rank_max else 0
        width = max(1, steps) * batch_size
        out = np.full((n_ranks, width), -1, dtype=np.int64)
        for r in range(n_ranks):
            shard = samples[r::n_ranks]
            out[r, : len(shard)] = shard
        return out
