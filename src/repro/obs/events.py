"""Structured JSONL event log for runtime lifecycle events.

Counters say *how often*; the event log says *when and in what order* —
the difference between "3 nodes were declared dead" and "node 2 was
declared dead 40 ms after the chaos kill, its keys re-homed, and the
mover finished recaching them 1.8 s later".  Every record carries **both**
clocks:

``t_wall``
    ``time.time()`` — correlates events across processes and with
    external logs;
``t_mono``
    ``time.monotonic()`` — orders events within this process immune to
    NTP steps.

Events live in a bounded drop-oldest ring (same policy as
:class:`~repro.obs.spans.SpanBuffer`; loss is counted, never silent) and,
when a sink path is configured, are appended to a JSONL file — one
``json.dumps`` line per event, written *outside* the ring lock with
``O_APPEND`` so concurrent emitters interleave whole lines, not bytes.

The process-global default log (:func:`get_event_log`) exists because
emitters are deep in the stack (the LRU evictor, the ring epoch counter)
where threading a handle through every constructor would be pure noise;
components that want isolation (tests, multi-cluster processes) construct
their own :class:`EventLog` and pass it down.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

from ..analysis import lockwitness

__all__ = ["EventLog", "get_event_log", "reset_event_log"]

DEFAULT_CAPACITY = 4096

#: lifecycle event kinds the runtime emits (documentation, not an enum —
#: new subsystems add kinds freely; the analysis side treats them as data)
KNOWN_KINDS = (
    "death_declared",
    "node_admitted",
    "node_killed",
    "node_restarted",
    "recache_begin",
    "recache_end",
    "join_state",
    "ring_epoch",
    "eviction",
    "chaos",
)


class EventLog:
    """Bounded in-memory event ring with an optional JSONL file sink."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, path: Optional[str | Path] = None,
                 node=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.node = node
        self._lock = lockwitness.named_lock("obs-events")
        self._ring: list[dict] = []
        self._head = 0
        self.events_emitted = 0
        self.events_dropped = 0
        self._fd: Optional[int] = None
        self.path: Optional[Path] = None
        if path is not None:
            self.open_sink(path)

    # -- sink lifecycle ----------------------------------------------------------
    def open_sink(self, path: str | Path) -> None:
        """Start appending every event to ``path`` as JSONL."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        with self._lock:
            old, self._fd, self.path = self._fd, fd, path
        if old is not None:
            os.close(old)

    def close_sink(self) -> None:
        with self._lock:
            fd, self._fd, self.path = self._fd, None, None
        if fd is not None:
            os.close(fd)

    # -- emission ----------------------------------------------------------------
    def emit(self, kind: str, **fields) -> dict:
        """Record one event; returns the record (for tests/chaining)."""
        record = {
            "kind": kind,
            "t_wall": time.time(),
            "t_mono": time.monotonic(),
            **({"node": self.node} if self.node is not None else {}),
            **fields,
        }
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._head] = record
                self._head = (self._head + 1) % self.capacity
                self.events_dropped += 1
            self.events_emitted += 1
            fd = self._fd
        if fd is not None:
            # One whole line per write() on an O_APPEND fd: concurrent
            # emitters interleave records, never bytes.  Outside the lock
            # so a slow disk cannot convoy emitters.
            try:
                os.write(fd, (json.dumps(record, default=str) + "\n").encode("utf-8"))
            except OSError:
                pass  # a full/odd disk must not take the runtime down
        return record

    # -- queries -----------------------------------------------------------------
    def snapshot(self, kind: Optional[str] = None, limit: Optional[int] = None) -> list[dict]:
        """Oldest-first copy of retained events, optionally filtered by kind."""
        with self._lock:
            ordered = self._ring[self._head:] + self._ring[: self._head]
        if kind is not None:
            ordered = [e for e in ordered if e.get("kind") == kind]
        if limit is not None and limit >= 0:
            ordered = ordered[-limit:]
        return list(ordered)

    def counters(self) -> dict:
        with self._lock:
            return {
                "events_emitted": self.events_emitted,
                "events_dropped": self.events_dropped,
                "events_retained": len(self._ring),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


_default_lock = threading.Lock()  # module bootstrap only; never nested
_default: Optional[EventLog] = None


def get_event_log() -> EventLog:
    """The process-global event log (created lazily, in-memory only)."""
    global _default
    if _default is not None:
        return _default
    # Construct outside the lock (the ctor *can* open a file sink); the
    # lock only arbitrates which candidate wins the race.
    candidate = EventLog()
    with _default_lock:
        if _default is None:
            _default = candidate
        return _default


def reset_event_log(capacity: int = DEFAULT_CAPACITY, path: Optional[str | Path] = None) -> EventLog:
    """Replace the global log (tests; loadgen runs opening a file sink)."""
    global _default
    fresh = EventLog(capacity=capacity, path=path)
    with _default_lock:
        old, _default = _default, fresh
    if old is not None:
        old.close_sink()
    return fresh
