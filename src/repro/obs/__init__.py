"""repro.obs — end-to-end observability for the threaded runtime.

Three pillars, one subsystem (see DESIGN.md "Observability contract"):

* **distributed request tracing** (:mod:`~repro.obs.context`,
  :mod:`~repro.obs.spans`) — a ``trace_id``/``span_id``/``parent_id``
  context injected into RPC headers by the client and propagated through
  every server-side path (cache hit, race fallthrough, PFS fallback,
  data-mover recache, join warmup transfers), with per-stage spans
  recorded into bounded per-process ring buffers;
* a **unified telemetry registry** (:mod:`~repro.obs.registry`) — one
  counters + gauges + histograms API that adopts the existing
  ``ServerStats`` / client counter registries and adds server-side
  per-op latency histograms, exported over ``OP_OBS``;
* a **structured event log** (:mod:`~repro.obs.events`) — JSONL lifecycle
  events (death declarations, recaches, join transitions, ring-epoch
  bumps, evictions, chaos injections) with wall *and* monotonic
  timestamps.

``python -m repro.obs`` merges per-node span dumps into cross-node trace
trees and prints the critical-path stage breakdown plus the slowest-N
exemplar traces (:mod:`~repro.obs.analysis`).
"""

from .analysis import TraceNode, build_traces, load_span_files, stage_breakdown
from .context import TraceContext, current_trace_id, extract, inject, new_span_id, new_trace_id
from .events import EventLog, get_event_log, reset_event_log
from .logsetup import configure_logging, node_logger
from .registry import Telemetry
from .spans import NULL_SPAN, Span, SpanBuffer, Tracer

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "inject",
    "extract",
    "current_trace_id",
    "Span",
    "NULL_SPAN",
    "SpanBuffer",
    "Tracer",
    "Telemetry",
    "EventLog",
    "get_event_log",
    "reset_event_log",
    "configure_logging",
    "node_logger",
    "TraceNode",
    "build_traces",
    "load_span_files",
    "stage_breakdown",
]
