"""Spans: bounded per-process ring buffer + the tracer that fills it.

A :class:`Span` times one stage of one request (client RPC, server NVMe
read, mover queue wait...).  Spans are cheap on purpose: two clock reads,
one dict append into a :class:`SpanBuffer` — a fixed-capacity ring whose
overflow *drops the oldest* span and counts it (``spans_dropped``), so a
span storm can never eat unbounded memory and loss is always visible.

Sampling happens once per trace at :meth:`Tracer.start_trace`: an
unsampled trace returns :data:`NULL_SPAN`, whose child spans are also
null, so the entire request — including every downstream process that
sees no trace header — costs nothing.  This is head-based sampling, the
only kind that keeps cross-process traces complete.

Span-balance invariants (tested property-style in ``tests/obs``):

* every started span is closed exactly once (``end()`` is idempotent;
  only the first call records);
* ``started == closed`` once no spans are in flight;
* every recorded span's ``parent_id`` names another recorded span of the
  same trace, or is None (a root).
"""

from __future__ import annotations

import random
import time
from typing import Optional, Union

from ..analysis import lockwitness
from .context import TraceContext, set_current_trace_id

__all__ = ["Span", "NullSpan", "NULL_SPAN", "SpanBuffer", "Tracer"]

#: default ring capacity: enough for several seconds of traced traffic
DEFAULT_CAPACITY = 4096


class SpanBuffer:
    """Thread-safe bounded ring of finished-span dicts (drop-oldest)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = lockwitness.named_lock("obs-spans")
        self._ring: list[dict] = []
        self._head = 0  # index of the oldest entry once the ring is full
        self.spans_recorded = 0
        self.spans_dropped = 0

    def add(self, record: dict) -> None:
        with self._lock:
            if len(self._ring) < self.capacity:
                self._ring.append(record)
            else:
                self._ring[self._head] = record
                self._head = (self._head + 1) % self.capacity
                self.spans_dropped += 1
            self.spans_recorded += 1

    def snapshot(self, limit: Optional[int] = None) -> list[dict]:
        """Oldest-first copy of the retained spans (most recent ``limit``)."""
        with self._lock:
            ordered = self._ring[self._head:] + self._ring[: self._head]
        if limit is not None and limit >= 0:
            ordered = ordered[-limit:]
        return list(ordered)

    def drain(self) -> list[dict]:
        """Snapshot and clear (drop accounting is preserved)."""
        with self._lock:
            ordered = self._ring[self._head:] + self._ring[: self._head]
            self._ring = []
            self._head = 0
        return ordered

    def counters(self) -> dict:
        with self._lock:
            return {
                "spans_recorded": self.spans_recorded,
                "spans_dropped": self.spans_dropped,
                "spans_retained": len(self._ring),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class Span:
    """One in-flight stage; records itself into the buffer on :meth:`end`."""

    __slots__ = ("_tracer", "ctx", "name", "node", "attrs", "status",
                 "_t_wall", "_t_mono", "_ended", "_cv_token")

    def __init__(self, tracer: "Tracer", ctx: TraceContext, name: str, node, attrs: dict):
        self._tracer = tracer
        self.ctx = ctx
        self.name = name
        self.node = node
        self.attrs = attrs
        self.status = "ok"
        self._t_wall = time.time()
        self._t_mono = time.perf_counter()
        self._ended = False
        self._cv_token = set_current_trace_id(ctx.trace_id)

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: Optional[str] = None) -> None:
        """Close the span (idempotent: only the first call records)."""
        if self._ended:
            return
        self._ended = True
        duration = time.perf_counter() - self._t_mono
        if status is not None:
            self.status = status
        if self._cv_token is not None:
            try:
                self._cv_token.var.reset(self._cv_token)
            except ValueError:  # ended on a different thread/context: leave it
                pass
            self._cv_token = None
        self._tracer._record(
            {
                "trace_id": self.ctx.trace_id,
                "span_id": self.ctx.span_id,
                "parent_id": self.ctx.parent_id,
                "name": self.name,
                "node": self.node,
                "t_wall": self._t_wall,
                "t_mono": self._t_mono,
                "duration_s": duration,
                "status": self.status,
                **({"attrs": self.attrs} if self.attrs else {}),
            }
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.end(status="error" if exc_type is not None else None)


class NullSpan:
    """The unsampled/disabled span: every operation is a no-op.

    ``ctx is None`` is the documented way callers decide whether to
    inject trace headers.
    """

    __slots__ = ()
    ctx = None
    name = None
    node = None
    status = "ok"

    def set(self, **attrs) -> "NullSpan":
        return self

    def end(self, status: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = NullSpan()

SpanLike = Union[Span, NullSpan]
ParentLike = Union[Span, NullSpan, TraceContext, None]


class Tracer:
    """Span factory for one process-side component (client, one server).

    ``sample_rate`` applies to :meth:`start_trace` only — child spans
    inherit their parent's sampling fate, and :meth:`start_span` with a
    remote :class:`TraceContext` always records (the upstream already
    paid the sampling coin toss).
    """

    def __init__(
        self,
        node=None,
        buffer: Optional[SpanBuffer] = None,
        sample_rate: float = 1.0,
        seed: int = 0,
        enabled: bool = True,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.node = node
        self.buffer = buffer if buffer is not None else SpanBuffer()
        self.sample_rate = sample_rate
        self.enabled = enabled
        self._rng = random.Random(seed)
        self._lock = lockwitness.named_lock("obs-tracer")
        self.started = 0
        self.closed = 0

    # -- span creation -----------------------------------------------------------
    def start_trace(self, name: str, **attrs) -> SpanLike:
        """Root span of a new trace; the one place sampling is decided."""
        if not self.enabled or self.sample_rate <= 0.0:
            return NULL_SPAN
        if self.sample_rate < 1.0:
            with self._lock:
                sampled = self._rng.random() < self.sample_rate
            if not sampled:
                return NULL_SPAN
        return self._start(TraceContext.root(), name, attrs)

    def start_span(self, name: str, parent: ParentLike, **attrs) -> SpanLike:
        """Child span under a local span or a remote (extracted) context."""
        if not self.enabled or parent is None:
            return NULL_SPAN
        if isinstance(parent, (Span, NullSpan)):
            if parent.ctx is None:
                return NULL_SPAN  # unsampled trace: stay dark end-to-end
            ctx = parent.ctx.child()
        else:
            ctx = parent.child()
        return self._start(ctx, name, attrs)

    def _start(self, ctx: TraceContext, name: str, attrs: dict) -> Span:
        with self._lock:
            self.started += 1
        return Span(self, ctx, name, self.node, dict(attrs))

    def _record(self, record: dict) -> None:
        with self._lock:
            self.closed += 1
        self.buffer.add(record)

    # -- introspection ------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        with self._lock:
            return self.started - self.closed

    def counters(self) -> dict:
        with self._lock:
            started, closed = self.started, self.closed
        return {"spans_started": started, "spans_closed": closed, **self.buffer.counters()}
