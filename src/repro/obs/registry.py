"""Unified telemetry registry: counters + gauges + histograms, one API.

The runtime already has two battle-tested counter registries
(``STAT_COUNTER_KEYS`` on the server, ``CLIENT_COUNTER_KEYS`` on the
client) whose integrity is enforced by the CNT001 lint.  :class:`Telemetry`
does not replace them — it *adopts* them: a counter group is a callable
returning a point-in-time dict, so the existing lock-protected stores stay
the single source of truth and every exporter (OP_OBS, bench JSON,
dashboards) reads one merged snapshot instead of knowing three layouts.

What the registry adds on top:

* **gauges** — named callables sampled at snapshot time (mover queue
  length, cached bytes, ring epoch), never stored;
* **histograms** — named :class:`~repro.metrics.LatencyHistogram` s with a
  lock around ``record`` (the histogram itself is single-writer by
  design; server dispatch is not), giving the server per-op latency
  distributions it never had — until now only the client timed anything;
* **own counters** — ``inc()`` for obs-internal accounting, reported
  under the same namespace.

Snapshots are JSON-safe dicts; a failing gauge or counter group reports
an ``"error:..."`` string instead of taking the exporter down with it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..analysis import lockwitness
from ..metrics import LatencyHistogram

__all__ = ["Telemetry"]


class Telemetry:
    """One component's unified counters + gauges + histograms registry."""

    def __init__(self, node=None):
        self.node = node
        self._lock = lockwitness.named_lock("obs-telemetry")
        self._counters: dict[str, int] = {}
        self._groups: dict[str, Callable[[], dict]] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    # -- counters ----------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Bump an obs-owned counter (monotone)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def adopt_counters(self, group: str, fn: Callable[[], dict]) -> None:
        """Register an existing counter store (e.g. ``ServerStats.counters``).

        ``fn`` is called at snapshot time and must return a flat dict; the
        group name prefixes nothing — the registries already guarantee
        unique keys — it only labels the snapshot section.
        """
        with self._lock:
            self._groups[group] = fn

    # -- gauges ------------------------------------------------------------------
    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        with self._lock:
            self._gauges[name] = fn

    # -- histograms --------------------------------------------------------------
    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into the named histogram."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = LatencyHistogram()
            hist.record(seconds)

    def histogram(self, name: str) -> Optional[LatencyHistogram]:
        """A merged *copy* of the named histogram (None if never observed)."""
        with self._lock:
            hist = self._histograms.get(name)
            return LatencyHistogram.merged([hist]) if hist is not None else None

    # -- export ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe point-in-time view of everything registered."""
        with self._lock:
            own = dict(self._counters)
            groups = dict(self._groups)
            gauges = dict(self._gauges)
            hists = {name: LatencyHistogram.merged([h]) for name, h in self._histograms.items()}
        counters: dict = dict(own)
        group_out: dict = {}
        for group, fn in groups.items():
            try:
                group_out[group] = dict(fn())
            except Exception as exc:  # a broken provider must not sink the exporter
                group_out[group] = {"error": f"{type(exc).__name__}: {exc}"}
        gauge_out: dict = {}
        for name, fn in gauges.items():
            try:
                gauge_out[name] = fn()
            except Exception as exc:
                gauge_out[name] = f"error: {type(exc).__name__}: {exc}"
        return {
            "node": self.node,
            "counters": counters,
            "counter_groups": group_out,
            "gauges": gauge_out,
            "histograms": {name: h.to_dict() for name, h in hists.items() if h.count},
        }
