"""``python -m repro.obs`` — merge span dumps into cross-node trace trees.

Typical use after a traced loadgen run (which writes one
``spans-<node>.jsonl`` per process into ``--obs-dir``)::

    python -m repro.obs results/obs/            # whole directory
    python -m repro.obs spans-client.jsonl spans-0.jsonl --slowest 5

Output: a per-stage breakdown table (count, total, mean, p50, p99, max),
instrumentation coverage at p50, and the slowest-N exemplar traces
rendered as trees with the critical path marked.  ``--json`` additionally
writes the whole analysis as one JSON document for machine consumers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import (
    build_traces,
    coverage,
    coverage_quantile,
    critical_path,
    load_span_files,
    render_trace,
    slowest_traces,
    stage_breakdown,
)


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Merge per-node span dumps into cross-node trace trees",
    )
    parser.add_argument("paths", nargs="+",
                        help="span JSONL files, or directories of *.jsonl dumps")
    parser.add_argument("--slowest", type=int, default=3, metavar="N",
                        help="number of slowest exemplar traces to render (default 3)")
    parser.add_argument("--root-name", default=None, metavar="NAME",
                        help="only consider root spans with this name (e.g. client.read)")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="also write the full analysis as JSON to OUT ('-' for stdout)")
    return parser


def analyse(paths: list[str], slowest: int = 3, root_name=None) -> dict:
    """The full analysis as one JSON-safe dict (shared by CLI and loadgen)."""
    spans = load_span_files(paths)
    traces = build_traces(spans)
    exemplars = slowest_traces(traces, n=slowest, root_name=root_name)
    return {
        "spans": len(spans),
        "traces": len(traces),
        "nodes": sorted({str(s.get("node")) for s in spans}),
        "stage_breakdown": stage_breakdown(spans),
        "coverage_p50": coverage_quantile(traces, 0.5, root_name=root_name),
        "slowest": [
            {
                "trace_id": root.trace_id,
                "duration_s": root.duration,
                "coverage": coverage(root),
                "critical_path": [
                    {"name": n.name, "node": n.node, "duration_s": n.duration}
                    for n in critical_path(root)
                ],
                "tree": render_trace(root),
            }
            for root in exemplars
        ],
    }


def _print_breakdown(breakdown: dict) -> None:
    header = f"{'stage':<28} {'count':>7} {'total_s':>9} {'mean_ms':>9} {'p50_ms':>9} {'p99_ms':>9}"
    print(header)
    print("-" * len(header))
    for name, row in sorted(breakdown.items(), key=lambda kv: -kv[1]["total_s"]):
        print(
            f"{name:<28} {row['count']:>7} {row['total_s']:>9.3f} "
            f"{row['mean_s'] * 1e3:>9.3f} {row['p50_s'] * 1e3:>9.3f} {row['p99_s'] * 1e3:>9.3f}"
        )


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    report = analyse(args.paths, slowest=args.slowest, root_name=args.root_name)
    if not report["spans"]:
        print("no spans found in the given paths", file=sys.stderr)
        return 1

    print(f"{report['spans']} spans, {report['traces']} traces, "
          f"nodes: {', '.join(report['nodes'])}")
    cov = report["coverage_p50"]
    if cov is not None:
        print(f"instrumentation coverage (p50 over root traces): {cov:.1%}")
    print()
    _print_breakdown(report["stage_breakdown"])

    for i, ex in enumerate(report["slowest"], start=1):
        print()
        print(f"slowest #{i}:")
        for line in ex["tree"]:
            print(f"  {line}")
        hops = " -> ".join(f"{n['name']}@{n['node']}" for n in ex["critical_path"])
        print(f"  critical path: {hops}")

    if args.json:
        payload = json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).write_text(payload + "\n")
            print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
