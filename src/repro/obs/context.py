"""Trace context: the three ids that stitch one request across processes.

A trace is one top-level operation (a client ``read()``, a warmup key
transfer); every timed stage within it is a span.  The context that
travels on the wire is deliberately tiny — two header fields:

``trace_id``
    16 hex chars naming the whole end-to-end request.
``span_id``
    8 hex chars naming the *sender's* span; the receiver parents its own
    spans under it, which is what makes the merged tree cross-process.

:func:`inject` / :func:`extract` are the only places header field names
appear, so client and server cannot drift.  Extraction is tolerant by
design: a request without trace fields (tracing disabled, old client)
extracts to ``None`` and costs two dict lookups.

The active trace id is also mirrored into a :mod:`contextvars` variable
so the logging formatter (:mod:`~repro.obs.logsetup`) can stamp log lines
with the trace they belong to.
"""

from __future__ import annotations

import contextvars
import os
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceContext",
    "new_trace_id",
    "new_span_id",
    "inject",
    "extract",
    "current_trace_id",
    "set_current_trace_id",
]

#: header field names — the whole wire contract of tracing
TRACE_ID_FIELD = "trace_id"
SPAN_ID_FIELD = "span_id"

_current_trace_id: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_obs_trace_id", default=None
)


def new_trace_id() -> str:
    """16 hex chars; collision-free for any realistic span volume."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """8 hex chars; unique within one trace."""
    return os.urandom(4).hex()


@dataclass(frozen=True)
class TraceContext:
    """One point in a trace: *this* span's identity plus its parent's."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A fresh context parented under this one (same trace)."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id(), parent_id=self.span_id)

    @staticmethod
    def root() -> "TraceContext":
        return TraceContext(trace_id=new_trace_id(), span_id=new_span_id(), parent_id=None)


def inject(header: dict, ctx: TraceContext) -> dict:
    """Stamp ``ctx`` into an RPC header (mutates and returns ``header``)."""
    header[TRACE_ID_FIELD] = ctx.trace_id
    header[SPAN_ID_FIELD] = ctx.span_id
    return header


def extract(header: dict) -> Optional[TraceContext]:
    """The sender's context from an RPC header, or None when untraced."""
    trace_id = header.get(TRACE_ID_FIELD)
    span_id = header.get(SPAN_ID_FIELD)
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


def current_trace_id() -> Optional[str]:
    """Trace id of the span active on this thread/context, if any."""
    return _current_trace_id.get()


def set_current_trace_id(trace_id: Optional[str]) -> contextvars.Token:
    """Mirror the active trace id for log correlation; returns the reset token."""
    return _current_trace_id.set(trace_id)
