"""Stdlib logging for the runtime: node- and trace-aware, quiet by default.

The runtime had zero loggers; this module gives every component one
without making any CLI noisy until asked:

* the ``repro`` logger gets a :class:`logging.NullHandler` on import, so
  an un-configured process emits nothing (no ``lastResort`` stderr spam);
* :func:`configure_logging` (wired to ``--log-level`` on both CLIs)
  attaches one stream handler whose formatter stamps every line with the
  emitting node and the trace id active on the calling thread — a log
  line inside a traced request is greppable by the same ``trace_id`` the
  span dump uses;
* :func:`node_logger` returns a ``LoggerAdapter`` that injects
  ``node_id`` so call sites just log.

Format: ``HH:MM:SS.mmm LEVEL logger [node=N trace=T] message``.
"""

from __future__ import annotations

import logging
from typing import Optional

from .context import current_trace_id

__all__ = ["configure_logging", "node_logger", "NodeTraceFormatter"]

_ROOT_NAME = "repro"

# Quiet by default: a handler-less hierarchy falls back to lastResort
# (stderr at WARNING); the NullHandler suppresses that until configured.
logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


class NodeTraceFormatter(logging.Formatter):
    """Formatter adding ``node=``/``trace=`` correlation to every line."""

    default_msec_format = "%s.%03d"

    def format(self, record: logging.LogRecord) -> str:
        node = getattr(record, "node_id", None)
        trace = current_trace_id()
        record.obs_ctx = f"[node={'-' if node is None else node} trace={trace or '-'}]"
        return super().format(record)


def configure_logging(level: str | int = "INFO", stream=None) -> logging.Logger:
    """Attach one configured handler to the ``repro`` logger (idempotent).

    Re-configuration replaces the previous handler, so tests and
    long-lived sessions can tighten/loosen the level freely.
    """
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level {level!r}")
        level = parsed
    root = logging.getLogger(_ROOT_NAME)
    for h in list(root.handlers):
        if not isinstance(h, logging.NullHandler):
            root.removeHandler(h)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        NodeTraceFormatter("%(asctime)s %(levelname)-7s %(name)s %(obs_ctx)s %(message)s",
                           datefmt="%H:%M:%S")
    )
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def node_logger(name: str, node_id=None) -> logging.LoggerAdapter:
    """Logger for one component instance; every record carries ``node_id``."""
    return logging.LoggerAdapter(logging.getLogger(name), {"node_id": node_id})


def set_level(level: str | int) -> None:
    """Adjust the hierarchy level without touching handlers."""
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    logging.getLogger(_ROOT_NAME).setLevel(level)
