"""Merge per-node span dumps into cross-node trace trees and summarise.

Each process dumps its :class:`~repro.obs.spans.SpanBuffer` as JSONL —
one span dict per line, no coordination.  This module is the read side:

* :func:`load_span_files` — parse any number of dumps (files or dirs);
* :func:`build_traces` — group by ``trace_id`` and stitch parent/child
  edges into :class:`TraceNode` trees; spans whose parent is missing
  (dropped by a ring, node never dumped) surface as extra roots rather
  than disappearing — partial visibility beats false completeness;
* :func:`stage_breakdown` — per-stage (span name) count/total/percentile
  table, the "where did the time go" answer;
* :func:`slowest_traces` / :func:`render_trace` — exemplar trees for the
  tail, because p99 is a *specific request*, not an abstraction;
* :func:`critical_path` — the chain of largest child spans from a root;
* :func:`coverage` — fraction of a root span's duration accounted for by
  its direct children (the instrumentation-completeness metric the bench
  gate asserts ≥ 0.9 at p50).

Durations come from each process's monotonic clock and are trustworthy;
*cross-process ordering* uses wall clocks and is only as good as NTP —
the renderer therefore never claims sub-millisecond cross-node ordering,
it just sorts children by start time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "TraceNode",
    "load_span_files",
    "build_traces",
    "stage_breakdown",
    "slowest_traces",
    "critical_path",
    "coverage",
    "coverage_quantile",
    "render_trace",
]


@dataclass
class TraceNode:
    """One span plus its stitched children (a subtree of one trace)."""

    span: dict
    children: list["TraceNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.get("name", "?")

    @property
    def duration(self) -> float:
        return float(self.span.get("duration_s", 0.0))

    @property
    def node(self):
        return self.span.get("node")

    @property
    def trace_id(self) -> str:
        return self.span.get("trace_id", "")


def _iter_span_lines(path: Path) -> Iterable[dict]:
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(rec, dict) and "span_id" in rec and "trace_id" in rec:
            yield rec


def load_span_files(paths: Sequence[str | Path]) -> list[dict]:
    """All span records from JSONL files (directories are globbed)."""
    spans: list[dict] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.glob("*.jsonl")):
                spans.extend(_iter_span_lines(f))
        elif p.exists():
            spans.extend(_iter_span_lines(p))
    return spans


def build_traces(spans: Iterable[dict]) -> dict[str, list[TraceNode]]:
    """trace_id → roots (true roots first, then orphaned subtrees)."""
    by_trace: dict[str, list[dict]] = {}
    for s in spans:
        by_trace.setdefault(s["trace_id"], []).append(s)
    out: dict[str, list[TraceNode]] = {}
    for trace_id, members in by_trace.items():
        nodes = {s["span_id"]: TraceNode(span=s) for s in members}
        roots: list[TraceNode] = []
        orphans: list[TraceNode] = []
        for node in nodes.values():
            parent_id = node.span.get("parent_id")
            if parent_id is None:
                roots.append(node)
            elif parent_id in nodes:
                nodes[parent_id].children.append(node)
            else:
                orphans.append(node)  # parent dropped/undumped: keep visible
        for node in nodes.values():
            node.children.sort(key=lambda n: n.span.get("t_wall", 0.0))
        roots.sort(key=lambda n: n.span.get("t_wall", 0.0))
        out[trace_id] = roots + sorted(orphans, key=lambda n: n.span.get("t_wall", 0.0))
    return out


def _quantile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[idx]


def stage_breakdown(spans: Iterable[dict]) -> dict[str, dict]:
    """Per span-name summary: count, total/mean/p50/p99/max seconds."""
    by_name: dict[str, list[float]] = {}
    for s in spans:
        by_name.setdefault(s.get("name", "?"), []).append(float(s.get("duration_s", 0.0)))
    out: dict[str, dict] = {}
    for name, durs in sorted(by_name.items()):
        durs.sort()
        total = sum(durs)
        out[name] = {
            "count": len(durs),
            "total_s": total,
            "mean_s": total / len(durs),
            "p50_s": _quantile(durs, 0.50),
            "p99_s": _quantile(durs, 0.99),
            "max_s": durs[-1],
        }
    return out


def slowest_traces(
    traces: dict[str, list[TraceNode]], n: int = 3, root_name: Optional[str] = None
) -> list[TraceNode]:
    """The ``n`` slowest true roots (optionally only roots named ``root_name``)."""
    roots = [
        r
        for members in traces.values()
        for r in members
        if r.span.get("parent_id") is None and (root_name is None or r.name == root_name)
    ]
    roots.sort(key=lambda r: r.duration, reverse=True)
    return roots[:n]


def critical_path(root: TraceNode) -> list[TraceNode]:
    """Root → ... following the largest child at each level."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda c: c.duration)
        path.append(node)
    return path


def coverage(root: TraceNode) -> float:
    """Fraction of the root's duration its direct children account for."""
    if root.duration <= 0.0:
        return 1.0 if not root.children else 0.0
    return sum(c.duration for c in root.children) / root.duration


def coverage_quantile(
    traces: dict[str, list[TraceNode]], q: float = 0.5, root_name: Optional[str] = None
) -> Optional[float]:
    """Quantile of per-trace coverage over true roots (None without data)."""
    vals = sorted(
        coverage(r)
        for members in traces.values()
        for r in members
        if r.span.get("parent_id") is None and (root_name is None or r.name == root_name)
    )
    return _quantile(vals, q) if vals else None


def render_trace(root: TraceNode) -> list[str]:
    """ASCII tree of one trace: name, owning node, duration, status."""
    lines = [f"trace {root.trace_id}  ({root.duration * 1e3:.2f} ms)"]

    def _walk(node: TraceNode, depth: int) -> None:
        status = "" if node.span.get("status", "ok") == "ok" else f"  [{node.span.get('status')}]"
        lines.append(
            f"{'  ' * depth}- {node.name}  node={node.node}  "
            f"{node.duration * 1e3:.3f} ms{status}"
        )
        for child in node.children:
            _walk(child, depth + 1)

    _walk(root, 1)
    return lines
