"""POSIX-style interception facade over the HVAC client.

On Frontier, FT-Cache is injected with ``LD_PRELOAD``: the DL framework
calls ``open/read/close`` and the shared library reroutes them.  This
facade reproduces that call shape for the simulated client so examples and
tests can exercise the same three-call protocol the paper describes
(Fig 3 step ①: "the HVAC client intercepts this request via LD_PRELOAD").

File descriptors are small integers scoped to one interceptor instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from .client import HvacClient

__all__ = ["PosixInterceptor", "FileHandle"]


@dataclass
class FileHandle:
    fd: int
    path: str
    file_id: int
    nbytes: float
    offset: float = 0.0
    closed: bool = False


class PosixInterceptor:
    """``open/read/close`` façade; paths are resolved through a catalog.

    ``catalog`` maps a path to ``(file_id, nbytes)`` — in the real system
    this is the dataset directory listing; here the
    :class:`~repro.dl.dataset.Dataset` provides it.
    """

    def __init__(self, client: HvacClient, catalog: dict[str, tuple[int, float]]):
        self.client = client
        self.catalog = dict(catalog)
        self._next_fd = 3  # 0/1/2 are stdio, as tradition demands
        self._open: dict[int, FileHandle] = {}

    def open(self, path: str) -> FileHandle:
        """Resolve ``path`` and return a handle (no I/O yet, like O_RDONLY open)."""
        try:
            file_id, nbytes = self.catalog[path]
        except KeyError:
            raise FileNotFoundError(path) from None
        handle = FileHandle(fd=self._next_fd, path=path, file_id=file_id, nbytes=nbytes)
        self._next_fd += 1
        self._open[handle.fd] = handle
        return handle

    def read(self, handle: FileHandle, nbytes: float | None = None):
        """Process body: read up to ``nbytes`` (default: the rest of the file).

        Returns the number of bytes read (0 at EOF), matching POSIX read
        semantics closely enough for a data loader.
        """
        if handle.closed:
            raise ValueError(f"read on closed fd {handle.fd}")
        remaining = handle.nbytes - handle.offset
        if remaining <= 0:
            return 0.0
        amount = remaining if nbytes is None else min(nbytes, remaining)
        yield from self.client.read_files([(handle.file_id, amount)])
        handle.offset += amount
        return amount

    def close(self, handle: FileHandle) -> None:
        if handle.closed:
            return
        handle.closed = True
        self._open.pop(handle.fd, None)

    @property
    def open_count(self) -> int:
        return len(self._open)
