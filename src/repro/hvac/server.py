"""HVAC server: the per-node cache daemon.

One server runs on every compute node (Sec II-B).  It serves read requests
from any client: a **hit** streams from local NVMe; a **miss** fetches from
the PFS, serves the bytes, and hands the data to an asynchronous *data
mover* that writes them to NVMe for future epochs — the exact three-step
"retrieve → serve → cache" sequence of Sec IV-B, which is also what makes
elastic recaching cost only one extra PFS access per lost file.

The server dies with its node: a failure event interrupts the accept loop
and any in-flight handlers stop responding (clients see TTL expiry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.topology import Cluster
from ..metrics import MetricsCollector
from ..metrics.trace import Tracer
from ..sim import AnyOf, Process
from .cache_store import CacheStore
from .rpc import RpcEnvelope, RpcFabric

__all__ = ["HvacServer", "ReadRequest", "ReadResponse"]


@dataclass(frozen=True)
class ReadRequest:
    """Client → server: fetch these files (aggregated per batch+target)."""

    files: tuple[tuple[int, float], ...]  # (file_id, nbytes)

    @property
    def total_bytes(self) -> float:
        return sum(nb for _, nb in self.files)


@dataclass(frozen=True)
class ReadResponse:
    """Server → client: everything served, with provenance split."""

    served_bytes: float
    hit_files: int
    miss_files: int


class HvacServer:
    """Cache daemon for one node; spawn with :meth:`start`."""

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        fabric: RpcFabric,
        metrics: Optional[MetricsCollector] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.node_id = node_id
        self.node = cluster.nodes[node_id]
        self.fabric = fabric
        self.store = CacheStore(self.node.nvme)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer
        self._proc: Optional[Process] = None
        #: file ids currently being recached (muted duplicate PFS fetches)
        self._inflight_misses: set[int] = set()

    def start(self) -> Process:
        if self._proc is not None:
            raise RuntimeError(f"server {self.node_id} already started")
        self._proc = self.env.process(self._accept_loop(), name=f"hvac-server-{self.node_id}")
        return self._proc

    # -- accept loop ------------------------------------------------------------
    def _accept_loop(self):
        mailbox = self.fabric.register(self.node_id)
        failed = self.node.failed_event
        while self.node.alive:
            get_evt = mailbox.get()
            fired = yield AnyOf(self.env, [get_evt, failed])
            if failed in fired:
                return  # node is down; pending requests go unanswered
            envelope: RpcEnvelope = fired[get_evt]
            self.env.process(self._handle(envelope), name=f"hvac-handler-{self.node_id}")

    # -- request handling ----------------------------------------------------------
    def _handle(self, envelope: RpcEnvelope):
        request: ReadRequest = envelope.payload
        hits: list[tuple[int, float]] = []
        misses: list[tuple[int, float]] = []
        for fid, nbytes in request.files:
            if fid in self.store:
                self.store.touch(fid)
                hits.append((fid, nbytes))
            else:
                misses.append((fid, nbytes))

        hit_bytes = sum(nb for _, nb in hits)
        miss_bytes = sum(nb for _, nb in misses)

        if hits:
            t0 = self.env.now
            yield from self.node.nvme.read(hit_bytes)
            if self.tracer is not None:
                self.tracer.record("server.nvme_read", self.node_id, t0, self.env.now, hit_bytes)
            self.metrics.add("server.hit_bytes", hit_bytes)
            self.metrics.inc("server.hit_files", len(hits))
        if misses:
            # First epoch after a failure (or the cold first epoch): fetch
            # from the PFS, then recache asynchronously via the data mover.
            t0 = self.env.now
            yield from self.cluster.pfs.read(miss_bytes, n_files=len(misses))
            if self.tracer is not None:
                self.tracer.record("server.pfs_fetch", self.node_id, t0, self.env.now, miss_bytes)
            self.metrics.add("server.miss_bytes", miss_bytes)
            self.metrics.inc("server.miss_files", len(misses))
            self._recache(misses)

        if not self.node.alive:
            return  # died while serving: never respond
        self.metrics.bump("server.served_files", self.node_id, len(request.files))
        self.metrics.bump("server.served_bytes", self.node_id, hit_bytes + miss_bytes)
        response = ReadResponse(
            served_bytes=hit_bytes + miss_bytes, hit_files=len(hits), miss_files=len(misses)
        )
        yield from self.fabric.respond(envelope, self.node_id, response, response.served_bytes)

    def _recache(self, files: list[tuple[int, float]]) -> None:
        """Data-mover thread: admit entries now, write bytes in the background.

        Entries are marked cached immediately so concurrent requests for the
        same file don't trigger duplicate PFS fetches; the NVMe write cost is
        still paid (asynchronously) on the device's write channel.
        """
        new = [
            (fid, nb)
            for fid, nb in files
            if fid not in self._inflight_misses and fid not in self.store
        ]
        if not new:
            return
        total = 0.0
        for fid, nbytes in new:
            self._inflight_misses.add(fid)
            self.store.put(fid, nbytes)
            total += nbytes
        self.metrics.add("server.recache_bytes", total)
        self.metrics.inc("server.recache_files", len(new))

        def _mover():
            yield from self.node.nvme.write(total, reserve=False)
            for fid, _ in new:
                self._inflight_misses.discard(fid)

        self.env.process(_mover(), name=f"data-mover-{self.node_id}")

    # -- warm start ---------------------------------------------------------------
    def preload(self, files: list[tuple[int, float]]) -> None:
        """Instantly populate the cache (test/experiment setup helper).

        Bypasses simulated I/O: used to start an experiment in the
        "cache fully populated" state without simulating epoch 1.
        """
        for fid, nbytes in files:
            self.store.put(fid, nbytes)
