"""Mercury-like RPC over the simulated interconnect.

HVAC's client/server speak Mercury RPC on Frontier; this module gives the
simulation the same observable semantics:

* a request is a small message to the server's mailbox;
* the response is a (possibly large) payload back to the caller;
* a dead server silently never answers — the *only* failure signal a
  client gets is its own TTL expiring (Sec IV-A's timeout-based detection
  relies on exactly this).

Requests already in flight to a node when it dies are dropped at delivery;
requests being *served* when it dies produce no response either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim import AnyOf, Environment, Event, Store
from ..cluster.topology import Cluster

__all__ = ["RpcFabric", "RpcEnvelope", "RpcResult", "REQUEST_WIRE_BYTES"]

#: size of a serialized read request on the wire (header + file list)
REQUEST_WIRE_BYTES = 1024.0


@dataclass
class RpcEnvelope:
    """A delivered request awaiting service."""

    src: int
    payload: Any
    reply: Event
    sent_at: float = 0.0


@dataclass(frozen=True)
class RpcResult:
    """Outcome of one call: a value, or a timeout."""

    ok: bool
    value: Any = None
    timed_out: bool = False


class RpcFabric:
    """Per-node mailboxes plus a timeout-aware call primitive."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self._mailboxes: dict[int, Store] = {}
        self.calls = 0
        self.timeouts = 0

    def register(self, node_id: int) -> Store:
        """Create (or fetch) the server mailbox for ``node_id``."""
        box = self._mailboxes.get(node_id)
        if box is None:
            box = Store(self.env)
            self._mailboxes[node_id] = box
        return box

    def call(self, src: int, dst: int, payload: Any, ttl: float):
        """Process body: request/response with a TTL.

        Returns an :class:`RpcResult`.  A late response (arriving after the
        TTL fired) is discarded — matching a client that has already moved
        on; the version check is implicit because each call owns a fresh
        reply event.
        """
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.calls += 1
        env = self.env
        reply = Event(env)
        # Request wire time: the fabric charges it even if the target is
        # already dead (the sender cannot know).
        yield from self.cluster.network.send(src, dst, REQUEST_WIRE_BYTES)
        if self.cluster.nodes[dst].alive:
            box = self._mailboxes.get(dst)
            if box is not None:
                box.put(RpcEnvelope(src=src, payload=payload, reply=reply, sent_at=env.now))
        # else: dropped on the floor — only the TTL will tell.
        deadline = env.timeout(ttl)
        fired = yield AnyOf(env, [reply, deadline])
        if reply in fired:
            return RpcResult(ok=True, value=reply.value)
        self.timeouts += 1
        return RpcResult(ok=False, timed_out=True)

    def respond(self, envelope: RpcEnvelope, server_node: int, value: Any, nbytes: float):
        """Process body (server side): ship ``nbytes`` back and resolve the call."""
        yield from self.cluster.network.send(server_node, envelope.src, nbytes)
        if not envelope.reply.triggered:
            envelope.reply.succeed(value)
