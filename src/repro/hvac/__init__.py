"""HVAC distributed cache on the simulated cluster: client, server, RPC."""

from .cache_store import CacheStore
from .client import HvacClient, RoutingLoopError
from .interceptor import FileHandle, PosixInterceptor
from .rpc import REQUEST_WIRE_BYTES, RpcEnvelope, RpcFabric, RpcResult
from .server import HvacServer, ReadRequest, ReadResponse

__all__ = [
    "CacheStore",
    "HvacClient",
    "RoutingLoopError",
    "FileHandle",
    "PosixInterceptor",
    "REQUEST_WIRE_BYTES",
    "RpcEnvelope",
    "RpcFabric",
    "RpcResult",
    "HvacServer",
    "ReadRequest",
    "ReadResponse",
]
