"""Per-server NVMe cache contents with LRU eviction.

Tracks which file ids this server holds and how many bytes each occupies,
backed by the node's :class:`~repro.cluster.nvme.NVMeDevice` capacity
accounting.  CosmoFlow's working set fits node-local NVMe with huge
headroom (1.3 TB / N nodes vs 3.5 TB per node), so eviction never fires in
the paper's experiments — but a cache layer without an eviction path is a
toy, and the capacity-pressure tests exercise it.
"""

from __future__ import annotations

from collections import OrderedDict

from ..cluster.nvme import NVMeDevice

__all__ = ["CacheStore"]


class CacheStore:
    """LRU map of ``file_id -> nbytes`` bounded by NVMe capacity."""

    def __init__(self, nvme: NVMeDevice):
        self.nvme = nvme
        self._entries: "OrderedDict[int, float]" = OrderedDict()
        self.evictions = 0
        self.insertions = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def cached_bytes(self) -> float:
        return self.nvme.used_bytes

    @property
    def file_ids(self) -> list[int]:
        return list(self._entries)

    def touch(self, file_id: int) -> float:
        """Record a hit (LRU refresh); returns the entry's size."""
        nbytes = self._entries[file_id]
        self._entries.move_to_end(file_id)
        return nbytes

    def put(self, file_id: int, nbytes: float) -> None:
        """Admit an entry, evicting LRU entries if capacity demands it.

        Idempotent for an already-cached id (refreshes recency only).
        """
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return
        while self.nvme.free_bytes < nbytes and self._entries:
            old_id, old_bytes = self._entries.popitem(last=False)
            self.nvme.release(old_bytes)
            self.evictions += 1
        # May still raise NVMeFullError for an entry larger than the device.
        self.nvme.reserve(nbytes)
        self._entries[file_id] = nbytes
        self.insertions += 1

    def drop(self, file_id: int) -> None:
        nbytes = self._entries.pop(file_id, None)
        if nbytes is not None:
            self.nvme.release(nbytes)

    def clear(self) -> None:
        for nbytes in self._entries.values():
            self.nvme.release(nbytes)
        self._entries.clear()
