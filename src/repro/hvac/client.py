"""HVAC client: the interception layer linked into every training rank.

On Frontier the client is an ``LD_PRELOAD`` shared library that intercepts
``open/read/close`` and forwards them, via a placement hash, to the owning
HVAC server (Sec II-B).  Here the client exposes :meth:`read_files`, which
the simulated training loop calls once per batch; the POSIX-style facade in
:mod:`repro.hvac.interceptor` provides per-file ``open/read/close`` parity
for the examples.

The fault-tolerance flow is the paper's Figure 3:

1. group the batch's files by routing target (owner node, or PFS when the
   policy says so);
2. fetch all groups concurrently — server groups over RPC with a TTL,
   PFS groups directly;
3. on an RPC timeout, feed the failure detector; when the timeout counter
   reaches its threshold the node is *declared* failed, membership flips,
   and the fault policy reacts (abort / PFS redirect / ring removal);
4. unserved files re-route through the updated policy and retry.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.topology import Cluster
from ..core.failure_detector import TimeoutFailureDetector
from ..core.fault_policy import FaultPolicy
from ..core.membership import MembershipView
from ..metrics import MetricsCollector
from ..metrics.trace import Tracer
from ..sim import AllOf
from .rpc import RpcFabric
from .server import ReadRequest

__all__ = ["HvacClient", "RoutingLoopError"]

#: safety valve: a single batch should never need more re-route rounds than
#: (detector threshold × node count); beyond that something is wrong with
#: the policy, and an infinite retry loop would hang the simulation silently.
_MAX_EXTRA_ROUNDS = 8


class RoutingLoopError(RuntimeError):
    """A batch could not be served after exhausting re-route attempts."""


class HvacClient:
    """Per-node cache client with timeout-based failure handling."""

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        policy: FaultPolicy,
        fabric: RpcFabric,
        membership: Optional[MembershipView] = None,
        detector: Optional[TimeoutFailureDetector] = None,
        metrics: Optional[MetricsCollector] = None,
        ttl: float = 5.0,
        timeout_threshold: int = 3,
        tracer: Optional[Tracer] = None,
    ):
        self.cluster = cluster
        self.env = cluster.env
        self.node_id = node_id
        self.policy = policy
        self.fabric = fabric
        self.membership = membership
        self.detector = detector if detector is not None else TimeoutFailureDetector(
            ttl=ttl, threshold=timeout_threshold
        )
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.tracer = tracer
        self.ttl = float(self.detector.ttl)

    # -- public API -------------------------------------------------------------
    def read_files(self, files: list[tuple[int, float]]):
        """Process body: fetch every ``(file_id, nbytes)`` in ``files``.

        Completes when all bytes have been delivered to this node.  Raises
        :class:`~repro.core.fault_policy.UnrecoverableNodeFailure` under the
        NoFT policy when a failure is declared mid-read, and
        :class:`RoutingLoopError` if re-routing cannot converge.
        """
        pending = list(files)
        max_rounds = self.detector.threshold * max(len(self.policy.placement.nodes), 1) + _MAX_EXTRA_ROUNDS
        rounds = 0
        while pending:
            rounds += 1
            if rounds > max_rounds:
                raise RoutingLoopError(
                    f"client {self.node_id}: {len(pending)} files unserved after {rounds - 1} rounds"
                )
            groups = self._group_by_target(pending)
            procs = []
            for target_key, group in groups.items():
                if target_key == "pfs":
                    procs.append(self.env.process(self._fetch_pfs(group)))
                else:
                    procs.append(self.env.process(self._fetch_node(target_key, group)))
            results = yield AllOf(self.env, procs)
            pending = [f for proc in procs for f in (results[proc] or [])]
        return None

    # -- routing -----------------------------------------------------------------
    def _group_by_target(self, files: list[tuple[int, float]]):
        groups: dict = {}
        for fid, nbytes in files:
            target = self.policy.target_for(fid)
            key = "pfs" if target.kind == "pfs" else target.node
            groups.setdefault(key, []).append((fid, nbytes))
        return groups

    # -- fetch paths ----------------------------------------------------------------
    def _fetch_pfs(self, files: list[tuple[int, float]]):
        """Direct PFS read (Fig 3a path ③): bypasses the cache layer.

        Client-side redirection passes the application's chunked reads
        straight through to Lustre, hence the latency amplification —
        unlike a server-side data-mover fetch (one sequential read).
        """
        total = sum(nb for _, nb in files)
        t0 = self.env.now
        yield from self.cluster.pfs.read(
            total,
            n_files=len(files),
            amplification=self.cluster.config.pfs.redirect_read_amplification,
        )
        if self.tracer is not None:
            self.tracer.record("client.pfs_redirect", self.node_id, t0, self.env.now, total)
        self.metrics.add("client.pfs_direct_bytes", total)
        self.metrics.inc("client.pfs_direct_files", len(files))
        return []

    def _fetch_node(self, node: int, files: list[tuple[int, float]]):
        """RPC to the owning server; on timeout, drive detection and re-route."""
        request = ReadRequest(files=tuple(files))
        t0 = self.env.now
        result = yield from self.fabric.call(self.node_id, node, request, ttl=self.ttl)
        if self.tracer is not None:
            kind = "client.rpc_read" if result.ok else "client.rpc_timeout"
            nbytes = sum(nb for _, nb in files) if result.ok else 0.0
            self.tracer.record(kind, self.node_id, t0, self.env.now, nbytes)
        if result.ok:
            self.detector.record_success(node)
            served = result.value
            if node == self.node_id:
                self.metrics.add("client.local_bytes", served.served_bytes)
            else:
                self.metrics.add("client.remote_bytes", served.served_bytes)
            self.metrics.inc("client.files_read", len(files))
            return []

        # TTL expired: maybe a transient delay, maybe a dead node.
        self.metrics.inc("client.rpc_timeouts")
        declared = self.detector.record_timeout(node, now=self.env.now)
        if declared:
            self.metrics.inc("client.failures_declared")
            self.metrics.record("client.declared_at", self.env.now, float(node))
            if self.membership is not None and node in self.membership and self.membership.is_active(node):
                self.membership.mark_failed(node)
            # NoFT raises UnrecoverableNodeFailure here — propagating up
            # through read_files and aborting the training job.
            self.policy.on_node_failed(node)
        # Unserved files go back to the routing loop; if the node was
        # declared they will re-group to a new target, otherwise they retry
        # the same node (and feed the timeout counter again).
        return files
