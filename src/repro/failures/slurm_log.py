"""Synthetic Frontier SLURM job log.

The paper's Section III analyses six months of production SLURM data from
Frontier.  Those logs are not public, so per the substitution rule this
module generates a synthetic log whose *marginals match the published
numbers by construction* (Table I counts are drawn exactly, not sampled)
and whose conditional structure reproduces the published relationships:

* failure-type mix: Job Fail 23,918 / Timeout 20,464 / Node Fail 1,174 of
  45,556 failures among 181,933 jobs over 27 weeks;
* elapsed-before-failure averaging ~75 minutes, with Node Fail / Timeout
  episodes reaching 2–3 hours in some weeks (Fig 1);
* Node Fail share growing with allocation size, reaching ~46% (and
  Node Fail + Timeout ~79%) in the 7,750–9,300-node bucket (Fig 2a);
* failure-type mix roughly independent of elapsed time (Fig 2b).

The *analysis* code (:mod:`repro.failures.analysis`) is input-agnostic —
it would run unchanged on real ``sacct`` output with the same fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["JobState", "SlurmLog", "FrontierLogModel", "generate_frontier_log", "NODE_BUCKET_WIDTH"]


class JobState:
    """State labels, matching the paper's terminology."""

    COMPLETED = 0
    JOB_FAIL = 1
    TIMEOUT = 2
    NODE_FAIL = 3
    CANCELLED = 4

    NAMES = {0: "COMPLETED", 1: "JOB_FAIL", 2: "TIMEOUT", 3: "NODE_FAIL", 4: "CANCELLED"}
    FAILURE_STATES = (1, 2, 3)


#: Fig 2(a)'s top bucket is 7,750–9,300 ⇒ 6 uniform buckets of width 1,550.
NODE_BUCKET_WIDTH = 1550
FRONTIER_MAX_NODES = 9_300


@dataclass(frozen=True)
class FrontierLogModel:
    """Published Table I marginals plus shape parameters for conditionals."""

    total_jobs: int = 181_933
    job_fail: int = 23_918
    timeout: int = 20_464
    node_fail: int = 1_174
    cancelled: int = 18_000  # not published; excluded from every analysis
    weeks: int = 27
    #: overall mean elapsed-before-failure, minutes ("average of 75 minutes")
    mean_elapsed_fail: float = 75.0

    @property
    def total_failures(self) -> int:
        return self.job_fail + self.timeout + self.node_fail

    @property
    def completed(self) -> int:
        return self.total_jobs - self.total_failures - self.cancelled


class SlurmLog:
    """Column-oriented job log (vectorised; 181,933 rows is nothing)."""

    def __init__(
        self,
        state: np.ndarray,
        n_nodes: np.ndarray,
        elapsed_min: np.ndarray,
        week: np.ndarray,
    ):
        n = len(state)
        if not (len(n_nodes) == len(elapsed_min) == len(week) == n):
            raise ValueError("column length mismatch")
        self.state = state.astype(np.int8)
        self.n_nodes = n_nodes.astype(np.int32)
        self.elapsed_min = elapsed_min.astype(np.float64)
        self.week = week.astype(np.int16)

    def __len__(self) -> int:
        return len(self.state)

    def count(self, state: int) -> int:
        return int(np.count_nonzero(self.state == state))

    @property
    def failures_mask(self) -> np.ndarray:
        return np.isin(self.state, JobState.FAILURE_STATES)

    def node_bucket(self, width: int = NODE_BUCKET_WIDTH) -> np.ndarray:
        """Bucket index per job: bucket k covers (width·k, width·(k+1)]."""
        return np.maximum(0, (self.n_nodes - 1) // width).astype(np.int32)

    # -- interchange with real sacct exports -----------------------------------
    CSV_HEADER = "state,n_nodes,elapsed_min,week"

    def to_csv(self, path) -> None:
        """Write the log as CSV (state by name, one row per job).

        The format round-trips through :meth:`from_csv` and is easy to
        produce from real ``sacct`` output with a few awk/pandas lines.
        """
        names = np.array([JobState.NAMES[s] for s in range(len(JobState.NAMES))])
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.CSV_HEADER + "\n")
            for s, n, e, w in zip(self.state, self.n_nodes, self.elapsed_min, self.week):
                f.write(f"{names[s]},{n},{e:.3f},{w}\n")

    @classmethod
    def from_csv(cls, path) -> "SlurmLog":
        """Load a log written by :meth:`to_csv` (or shaped like it)."""
        name_to_state = {v: k for k, v in JobState.NAMES.items()}
        states, nodes, elapsed, weeks = [], [], [], []
        with open(path, "r", encoding="utf-8") as f:
            header = f.readline().strip()
            if header != cls.CSV_HEADER:
                raise ValueError(f"unexpected CSV header {header!r}")
            for lineno, line in enumerate(f, start=2):
                line = line.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: expected 4 fields, got {len(parts)}")
                try:
                    states.append(name_to_state[parts[0]])
                except KeyError:
                    raise ValueError(f"line {lineno}: unknown state {parts[0]!r}") from None
                nodes.append(int(parts[1]))
                elapsed.append(float(parts[2]))
                weeks.append(int(parts[3]))
        return cls(
            state=np.asarray(states, dtype=np.int8),
            n_nodes=np.asarray(nodes, dtype=np.int32),
            elapsed_min=np.asarray(elapsed, dtype=np.float64),
            week=np.asarray(weeks, dtype=np.int16),
        )


def _elapsed_sample(rng: np.random.Generator, n: int, mean: float, sigma: float) -> np.ndarray:
    """Lognormal minutes with the requested arithmetic mean."""
    mu = np.log(mean) - 0.5 * sigma**2
    return rng.lognormal(mu, sigma, size=n)


def generate_frontier_log(
    seed: int = 0, model: Optional[FrontierLogModel] = None
) -> SlurmLog:
    """Draw a full synthetic six-month log (exact Table I counts)."""
    m = model if model is not None else FrontierLogModel()
    rng = np.random.default_rng(seed)

    counts = {
        JobState.COMPLETED: m.completed,
        JobState.JOB_FAIL: m.job_fail,
        JobState.TIMEOUT: m.timeout,
        JobState.NODE_FAIL: m.node_fail,
        JobState.CANCELLED: m.cancelled,
    }
    if counts[JobState.COMPLETED] < 0:
        raise ValueError("model counts exceed total_jobs")

    states = np.concatenate([np.full(c, s, dtype=np.int8) for s, c in counts.items()])
    n = len(states)

    # --- allocation sizes, conditioned on state -------------------------------
    # Most HPC jobs are small (log-uniform-ish); hardware-driven failures
    # skew large because more nodes means more chances for any one to die.
    def _sizes(count: int, skew: float, top_shape: float = 5.0) -> np.ndarray:
        # skew 0 → log-uniform over [1, max]; skew 1 → strongly top-heavy
        # (hardware failure probability grows with allocation width, so
        # NODE_FAIL concentrates at full-machine scale — Fig 2a's 46% top
        # bucket requires most node-fails to sit above 7,750 nodes).
        u = rng.random(count)
        log_max = np.log(FRONTIER_MAX_NODES)
        base = np.exp(u * log_max)  # log-uniform in [1, max]
        top = FRONTIER_MAX_NODES * rng.beta(top_shape, 1.0, size=count)
        mix = rng.random(count) < skew
        return np.where(mix, top, base).astype(np.int32).clip(1, FRONTIER_MAX_NODES)

    sizes = np.empty(n, dtype=np.int32)
    sizes[states == JobState.COMPLETED] = _sizes(counts[JobState.COMPLETED], 0.02)
    sizes[states == JobState.CANCELLED] = _sizes(counts[JobState.CANCELLED], 0.02)
    sizes[states == JobState.JOB_FAIL] = _sizes(counts[JobState.JOB_FAIL], 0.015)
    sizes[states == JobState.TIMEOUT] = _sizes(counts[JobState.TIMEOUT], 0.025)
    sizes[states == JobState.NODE_FAIL] = _sizes(counts[JobState.NODE_FAIL], 0.95, top_shape=12.0)

    # --- elapsed time, conditioned on state -----------------------------------
    # Failure-type mix must stay ~independent of elapsed (Fig 2b), so all
    # failure types share similar distributions; NODE_FAIL/TIMEOUT run a
    # bit longer on average (Fig 1's 2–3 h weekly spikes).
    elapsed = np.empty(n, dtype=np.float64)
    elapsed[states == JobState.COMPLETED] = _elapsed_sample(
        rng, counts[JobState.COMPLETED], 110.0, 1.1
    )
    elapsed[states == JobState.CANCELLED] = _elapsed_sample(
        rng, counts[JobState.CANCELLED], 40.0, 1.2
    )
    elapsed[states == JobState.JOB_FAIL] = _elapsed_sample(rng, counts[JobState.JOB_FAIL], 70.0, 1.0)
    elapsed[states == JobState.TIMEOUT] = _elapsed_sample(rng, counts[JobState.TIMEOUT], 78.0, 1.0)
    elapsed[states == JobState.NODE_FAIL] = _elapsed_sample(
        rng, counts[JobState.NODE_FAIL], 85.0, 1.0
    )

    # --- submission week --------------------------------------------------------
    # Weekly job volume wobbles ±20% around uniform; a weekly severity
    # factor modulates elapsed times so some weeks spike to 2–3 h for the
    # hardware-driven failure types (Fig 1's texture).
    week_weights = 1.0 + 0.2 * rng.standard_normal(m.weeks)
    week_weights = np.clip(week_weights, 0.5, None)
    week_weights /= week_weights.sum()
    weeks = rng.choice(m.weeks, size=n, p=week_weights).astype(np.int16)

    severity = 1.0 + np.clip(0.5 * rng.standard_normal(m.weeks), -0.5, 1.5)
    hardware = np.isin(states, (JobState.TIMEOUT, JobState.NODE_FAIL))
    elapsed[hardware] *= severity[weeks[hardware]]

    # Shuffle rows so the log looks like an arrival stream, not state-sorted.
    order = rng.permutation(n)
    return SlurmLog(
        state=states[order], n_nodes=sizes[order], elapsed_min=elapsed[order], week=weeks[order]
    )
