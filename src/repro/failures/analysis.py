"""Job-failure analysis (paper Section III: Table I, Figures 1 and 2).

Input-agnostic over :class:`~repro.failures.slurm_log.SlurmLog`; every
function returns plain dataclass rows so the experiment harness can print
them next to the paper's published values.

The paper's conventions are preserved:

* user/admin-cancelled jobs are excluded from all failure statistics;
* "node failure" in the combined sense includes both ``NODE_FAIL`` and
  ``TIMEOUT`` ("in both cases the node becomes unresponsive");
* Fig 2 reports, per bucket, each failure type's share *of failures in
  that bucket*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .slurm_log import NODE_BUCKET_WIDTH, JobState, SlurmLog

__all__ = [
    "FailureCensus",
    "WeeklyElapsed",
    "BucketShare",
    "failure_census",
    "weekly_elapsed",
    "distribution_by_nodes",
    "distribution_by_elapsed",
    "combined_node_failure_share",
]

_FAIL_TYPES = (JobState.NODE_FAIL, JobState.TIMEOUT, JobState.JOB_FAIL)


@dataclass(frozen=True)
class FailureCensus:
    """Table I rows."""

    total_jobs: int
    total_failures: int
    node_fail: int
    timeout: int
    job_fail: int

    @property
    def failure_ratio(self) -> dict[str, float]:
        """Each failure type as a share of all failures (Table I col 3)."""
        if self.total_failures == 0:
            return {"NODE_FAIL": 0.0, "TIMEOUT": 0.0, "JOB_FAIL": 0.0}
        return {
            "NODE_FAIL": 100.0 * self.node_fail / self.total_failures,
            "TIMEOUT": 100.0 * self.timeout / self.total_failures,
            "JOB_FAIL": 100.0 * self.job_fail / self.total_failures,
        }

    @property
    def overall_ratio(self) -> dict[str, float]:
        """Each row as a share of all jobs (Table I col 4)."""
        return {
            "FAILURES": 100.0 * self.total_failures / self.total_jobs,
            "NODE_FAIL": 100.0 * self.node_fail / self.total_jobs,
            "TIMEOUT": 100.0 * self.timeout / self.total_jobs,
            "JOB_FAIL": 100.0 * self.job_fail / self.total_jobs,
        }


def failure_census(log: SlurmLog) -> FailureCensus:
    """Reproduce Table I from a job log."""
    return FailureCensus(
        total_jobs=len(log),
        total_failures=int(log.failures_mask.sum()),
        node_fail=log.count(JobState.NODE_FAIL),
        timeout=log.count(JobState.TIMEOUT),
        job_fail=log.count(JobState.JOB_FAIL),
    )


@dataclass(frozen=True)
class WeeklyElapsed:
    """Fig 1: mean elapsed-before-failure minutes, per week and type."""

    weeks: np.ndarray  # (W,)
    by_type: dict  # type name -> (W,) mean minutes (NaN where no jobs)
    overall: float  # red dashed line: mean over all failed jobs


def weekly_elapsed(log: SlurmLog, n_weeks: int | None = None) -> WeeklyElapsed:
    """Reproduce Fig 1's weekly series."""
    weeks = int(log.week.max()) + 1 if n_weeks is None else n_weeks
    by_type: dict[str, np.ndarray] = {}
    for state in _FAIL_TYPES:
        mask = log.state == state
        means = np.full(weeks, np.nan)
        for w in range(weeks):
            sel = mask & (log.week == w)
            if sel.any():
                means[w] = float(log.elapsed_min[sel].mean())
        by_type[JobState.NAMES[state]] = means
    fail_mask = log.failures_mask
    overall = float(log.elapsed_min[fail_mask].mean()) if fail_mask.any() else float("nan")
    return WeeklyElapsed(weeks=np.arange(weeks), by_type=by_type, overall=overall)


@dataclass(frozen=True)
class BucketShare:
    """One bucket of Fig 2: failure-type shares within the bucket."""

    label: str
    lo: float
    hi: float
    n_failures: int
    share: dict  # type name -> percent of this bucket's failures

    @property
    def node_fail_plus_timeout(self) -> float:
        return self.share.get("NODE_FAIL", 0.0) + self.share.get("TIMEOUT", 0.0)


def _bucket_shares(log: SlurmLog, bucket_idx: np.ndarray, edges: list[tuple[float, float, str]]):
    out: list[BucketShare] = []
    fail_mask = log.failures_mask
    for b, (lo, hi, label) in enumerate(edges):
        sel = fail_mask & (bucket_idx == b)
        n = int(sel.sum())
        share = {}
        for state in _FAIL_TYPES:
            c = int((log.state[sel] == state).sum())
            share[JobState.NAMES[state]] = 100.0 * c / n if n else 0.0
        out.append(BucketShare(label=label, lo=lo, hi=hi, n_failures=n, share=share))
    return out


def distribution_by_nodes(log: SlurmLog, width: int = NODE_BUCKET_WIDTH) -> list[BucketShare]:
    """Reproduce Fig 2(a): failure-type mix per allocation-size bucket."""
    idx = log.node_bucket(width)
    n_buckets = int(idx[log.failures_mask].max()) + 1 if log.failures_mask.any() else 1
    edges = [
        (b * width, (b + 1) * width, f"{b * width + 1}-{(b + 1) * width}") for b in range(n_buckets)
    ]
    return _bucket_shares(log, idx, edges)


def distribution_by_elapsed(
    log: SlurmLog, edges_min: list[float] | None = None
) -> list[BucketShare]:
    """Reproduce Fig 2(b): failure-type mix per elapsed-time bucket."""
    if edges_min is None:
        edges_min = [0, 30, 60, 120, 240, 480, 1440, float("inf")]
    idx = np.searchsorted(np.asarray(edges_min[1:]), log.elapsed_min, side="right")
    edges = []
    for b in range(len(edges_min) - 1):
        lo, hi = edges_min[b], edges_min[b + 1]
        label = f"{lo:g}-{hi:g} min" if np.isfinite(hi) else f">{lo:g} min"
        edges.append((lo, hi, label))
    return _bucket_shares(log, idx, edges)


def combined_node_failure_share(census: FailureCensus) -> float:
    """Paper's combined definition: (NODE_FAIL + TIMEOUT) / failures, percent.

    "we define node failures to include both Node Fail and Timeout cases,
    which together account for about half of all failures."
    """
    if census.total_failures == 0:
        return 0.0
    return 100.0 * (census.node_fail + census.timeout) / census.total_failures
