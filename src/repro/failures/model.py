"""Reliability arithmetic: node counts, MTBF, and job survival.

Section III's empirical message — failure likelihood "is closely tied to
the number of nodes" — has a standard analytic backbone: with independent
exponential node lifetimes of mean ``mtbf``, an ``n``-node job of duration
``t`` survives with probability ``exp(-n·t/mtbf)``.  This module provides
that arithmetic (fit from a log, or given directly) so users can answer
the operational questions the paper raises: how likely is *my* job to see
a node failure, and how much does fault tolerance buy?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .slurm_log import JobState, SlurmLog

__all__ = ["ReliabilityModel", "fit_from_log"]


@dataclass(frozen=True)
class ReliabilityModel:
    """Exponential per-node failure model."""

    #: mean time between hardware failures of a single node, minutes
    node_mtbf_min: float

    def __post_init__(self) -> None:
        if self.node_mtbf_min <= 0:
            raise ValueError("node_mtbf_min must be positive")

    # -- survival ----------------------------------------------------------------
    def failure_rate(self, n_nodes: int) -> float:
        """Aggregate failures per minute for an ``n_nodes`` allocation."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        return n_nodes / self.node_mtbf_min

    def p_failure(self, n_nodes: int, duration_min: float) -> float:
        """P(at least one node failure during the job)."""
        if duration_min < 0:
            raise ValueError("duration_min must be >= 0")
        return 1.0 - float(np.exp(-self.failure_rate(n_nodes) * duration_min))

    def expected_failures(self, n_nodes: int, duration_min: float) -> float:
        return self.failure_rate(n_nodes) * duration_min

    def mean_time_to_first_failure(self, n_nodes: int) -> float:
        """Minutes until the first node of an allocation dies, in expectation."""
        return 1.0 / self.failure_rate(n_nodes)

    # -- the fault-tolerance argument -------------------------------------------------
    def expected_completion_time(
        self, n_nodes: int, duration_min: float, restart_cost_min: float, fault_tolerant: bool
    ) -> float:
        """Expected wall-clock to *finish* the job.

        Without fault tolerance every failure restarts the job from
        scratch (memoryless retries: E[T] = (e^{λd} − 1)/λ); with it, each
        failure only adds ``restart_cost_min``.
        """
        lam = self.failure_rate(n_nodes)
        if fault_tolerant:
            return duration_min + self.expected_failures(n_nodes, duration_min) * restart_cost_min
        if lam * duration_min > 700:  # exp overflow guard: effectively never finishes
            return float("inf")
        return float((np.exp(lam * duration_min) - 1.0) / lam)


def fit_from_log(log: SlurmLog, total_nodes: int = 9_408, weeks: float = 27.0) -> ReliabilityModel:
    """Estimate per-node MTBF from a SLURM log's NODE_FAIL count.

    ``node-failure events / (machine nodes × observation window)`` gives
    the per-node hazard; its inverse is the MTBF.  Only NODE_FAIL rows
    count — TIMEOUT includes non-hardware causes and would bias the rate.
    """
    if total_nodes < 1 or weeks <= 0:
        raise ValueError("total_nodes must be >= 1 and weeks positive")
    n_events = log.count(JobState.NODE_FAIL)
    if n_events == 0:
        raise ValueError("log contains no NODE_FAIL events to fit on")
    window_min = weeks * 7 * 24 * 60
    rate_per_node = n_events / (total_nodes * window_min)
    return ReliabilityModel(node_mtbf_min=1.0 / rate_per_node)
