"""Random failure injection, mirroring the paper's evaluation protocol.

Sec V-A.3: "node failures were randomly injected after the completion of
the first epoch … by disabling one or more nodes during runtime …
both the timing and node selection were randomized."  The injector drains
nodes through the :class:`~repro.cluster.slurm.SlurmController` (the
``sacct … State=DRAIN`` analogue) at random times inside a window scaled
from the observed first-epoch duration, so the schedule adapts to however
long the simulated epochs actually take.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cluster.slurm import SlurmController
from ..dl.training import TrainingJob
from ..sim import Process

__all__ = ["FailureInjector"]


class FailureInjector:
    """Drains random nodes during a training job."""

    def __init__(self, slurm: SlurmController, stream_name: str = "injector"):
        self.slurm = slurm
        self.cluster = slurm.cluster
        self.env = slurm.env
        self.rng = self.cluster.rng.stream(stream_name)
        #: (time, node_id) pairs actually injected
        self.injected: list[tuple[float, int]] = []

    # -- protocols ----------------------------------------------------------------
    def inject_after_first_epoch(
        self, job: TrainingJob, n_failures: int = 1, spread: float = 0.9
    ) -> Process:
        """Fig 5(b) protocol: ``n_failures`` single-node drains, at random
        times after epoch 0 completes (cache fully populated).

        The injection window is ``spread × d₁ × (remaining epochs)`` where
        ``d₁`` is the measured first-epoch duration — post-failure epochs
        only get longer, so every drain lands inside the run.
        """
        if n_failures < 1:
            raise ValueError("n_failures must be >= 1")

        def _proc():
            t_done = yield job.epoch_end_event(0)
            d1 = job.timeline.epochs[0].duration
            horizon = max(d1 * 0.1, spread * d1 * max(1, job.config.epochs - 1))
            offsets = np.sort(self.rng.uniform(0.0, horizon, size=n_failures))
            for off in offsets:
                target_t = t_done + float(off)
                delay = target_t - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                victim = self._pick_victim()
                if victim is None:
                    return  # nothing left to kill
                self.slurm.drain(victim)
                self.injected.append((self.env.now, victim))

        return self.env.process(_proc(), name="failure-injector")

    def inject_in_epoch(self, job: TrainingJob, epoch: int, fraction: float = 0.5) -> Process:
        """Fig 6(a) protocol: one drain partway through a chosen epoch.

        Waits for ``epoch - 1`` to complete, then ``fraction`` of that
        epoch's duration (a proxy for mid-epoch progress), then drains one
        random node — making ``epoch`` the *victim epoch*.
        """
        if epoch < 1:
            raise ValueError("the victim epoch must be >= 1 (epoch 0 populates the cache)")
        if not (0.0 <= fraction < 1.0):
            raise ValueError("fraction must be in [0, 1)")

        def _proc():
            yield job.epoch_end_event(epoch - 1)
            # The controller has already opened the next epoch's record by
            # the time we wake; measure the last *completed* epoch.
            prev = next(
                r.duration for r in reversed(job.timeline.epochs) if r.end is not None
            )
            if fraction > 0:
                yield self.env.timeout(prev * fraction)
            victim = self._pick_victim()
            if victim is not None:
                self.slurm.drain(victim)
                self.injected.append((self.env.now, victim))

        return self.env.process(_proc(), name=f"failure-injector-epoch{epoch}")

    def inject_burst(self, job: TrainingJob, size: int, epoch: int = 1, fraction: float = 0.5) -> Process:
        """Correlated failure: ``size`` nodes drained at the same instant.

        Models a shared-blast-radius event (a rack PDU, a leaf switch) —
        beyond the paper's independent single-node protocol, this is the
        case replication factors and vnode counts are really sized for.
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        if epoch < 1:
            raise ValueError("the burst epoch must be >= 1 (epoch 0 populates the cache)")
        if not (0.0 <= fraction < 1.0):
            raise ValueError("fraction must be in [0, 1)")

        def _proc():
            yield job.epoch_end_event(epoch - 1)
            prev = next(
                r.duration for r in reversed(job.timeline.epochs) if r.end is not None
            )
            if fraction > 0:
                yield self.env.timeout(prev * fraction)
            for _ in range(size):
                victim = self._pick_victim()
                if victim is None:
                    return
                self.slurm.drain(victim)
                self.injected.append((self.env.now, victim))

        return self.env.process(_proc(), name=f"burst-injector-{size}@{epoch}")

    # -- helpers ---------------------------------------------------------------------
    def _pick_victim(self) -> Optional[int]:
        alive = self.cluster.alive_nodes
        if len(alive) <= 1:
            return None  # never kill the last node
        return int(alive[int(self.rng.integers(0, len(alive)))])
