"""Failure study: synthetic SLURM logs, analysis (Sec III), and injection."""

from .analysis import (
    BucketShare,
    FailureCensus,
    WeeklyElapsed,
    combined_node_failure_share,
    distribution_by_elapsed,
    distribution_by_nodes,
    failure_census,
    weekly_elapsed,
)
from .injector import FailureInjector
from .model import ReliabilityModel, fit_from_log
from .slurm_log import (
    NODE_BUCKET_WIDTH,
    FrontierLogModel,
    JobState,
    SlurmLog,
    generate_frontier_log,
)

__all__ = [
    "BucketShare",
    "FailureCensus",
    "WeeklyElapsed",
    "combined_node_failure_share",
    "distribution_by_elapsed",
    "distribution_by_nodes",
    "failure_census",
    "weekly_elapsed",
    "FailureInjector",
    "ReliabilityModel",
    "fit_from_log",
    "NODE_BUCKET_WIDTH",
    "FrontierLogModel",
    "JobState",
    "SlurmLog",
    "generate_frontier_log",
]
