"""Discrete-event simulation kernel.

A from-scratch, dependency-free engine in the style of SimPy: simulation
*processes* are Python generators that ``yield`` :class:`Event` objects and
are resumed when those events fire.  The kernel is the substrate for every
timed experiment in this repository — the cluster, network, PFS, HVAC
client/server, and DL training loop are all processes scheduled here.

Design notes
------------
* Time is a ``float`` in **seconds**.  The kernel never interprets units;
  the cluster models document theirs.
* The event queue is a binary heap keyed on ``(time, priority, seq)``.
  ``seq`` is a monotone tiebreaker so same-time events fire in schedule
  order (deterministic replay is a hard requirement for the experiments).
* Failure of a process with no active waiters raises at ``run()`` time
  rather than being silently dropped; unhandled simulation errors must be
  loud.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "StopSimulation",
]

#: Default priority for ordinary events.
NORMAL = 1
#: Priority for urgent events (fire before normal events at the same time).
URGENT = 0


class SimulationError(Exception):
    """Raised for kernel misuse (yielding a foreign event, running backwards)."""


class StopSimulation(Exception):
    """Raised internally to terminate :meth:`Environment.run` early."""


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    the interrupter's context (e.g. the failure event that triggered it).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    An event moves through three states: *pending* (created), *triggered*
    (scheduled with a value or an exception), and *processed* (callbacks
    ran).  Waiting processes register themselves as callbacks.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True when the event carries a value rather than an exception."""
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event with ``value``; waiters resume with it."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception; waiters have it thrown in."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() requires an exception, got {exc!r}")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.env._schedule(self, priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise it."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: first resumption of a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        env._schedule(self, URGENT)


class Process(Event):
    """A running generator.  Also an event: it fires when the generator ends.

    The value of the event is the generator's return value; if the
    generator raises, waiters have the exception thrown into them.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process target must be a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        twice before it resumes queues both interrupts.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        env = self.env
        exc = Interrupt(cause)

        def _do_interrupt(_evt: Event) -> None:
            if self._triggered:
                return  # finished in the meantime
            # Detach from whatever it was waiting on.
            target = self._target
            if target is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._target = None
            self._step(exc, as_exception=True)

        hook = Event(env)
        hook.callbacks.append(_do_interrupt)
        hook.succeed(priority=URGENT)

    # -- kernel internals --------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._target = None
        if event._ok:
            self._step(event._value, as_exception=False)
        else:
            event._defused = True
            self._step(event._value, as_exception=True)

    def _step(self, value: Any, *, as_exception: bool) -> None:
        env = self.env
        env._active_process = self
        try:
            if as_exception:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            env._schedule(self, NORMAL)
            return
        except BaseException as exc:
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._schedule(self, NORMAL)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        if target.env is not env:
            raise SimulationError(f"process {self.name!r} yielded an event from another Environment")
        if target._processed:
            # Already-fired event: resume immediately (next kernel step).
            hook = Event(env)
            hook.callbacks.append(self._resume)
            hook._value = target._value
            hook._ok = target._ok
            if not target._ok:
                target._defused = True
            hook._triggered = True
            env._schedule(hook, URGENT)
            self._target = hook
        else:
            target.callbacks.append(self._resume)
            self._target = target


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env)
        self.events = list(events)
        for e in self.events:
            if e.env is not env:
                raise SimulationError("condition mixes events from different environments")
        # An event is "already happened" only once *processed*; a triggered-
        # but-unprocessed event (e.g. a freshly created Timeout) still fires
        # its callbacks when the kernel reaches it, so we register on it
        # like any pending event.
        self._remaining = 0
        fired = [e for e in self.events if e._processed]
        pending = [e for e in self.events if not e._processed]
        self._remaining = len(pending)
        for e in pending:
            e.callbacks.append(self._check)
        # Evaluate immediately for already-processed members.
        if fired or not pending:
            hook = Event(env)
            hook.callbacks.append(lambda _e: self._initial(fired))
            hook.succeed(priority=URGENT)

    def _initial(self, fired: list[Event]) -> None:
        if not fired and not self.events and not self._triggered:
            # Empty condition: trivially satisfied.
            self.succeed({})
            return
        for e in fired:
            if not self._triggered:
                self._check(e)

    def _results(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when *any* member event fires; value maps fired events→values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event._defused = True  # late failure after the race was won
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


class AllOf(_Condition):
    """Fires when *all* member events have fired."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event._defused = True  # late failure after the condition resolved
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        done = sum(1 for e in self.events if e._processed)
        if done == len(self.events):
            self.succeed(self._results())


class Environment:
    """The simulation clock and event queue.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 1.5 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction -------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event (advance the clock to it)."""
        if not self._queue:
            raise StopSimulation("event queue empty")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("time ran backwards")  # pragma: no cover - invariant
        self._now = when
        callbacks, event.callbacks = event.callbacks, []  # type: ignore[assignment]
        event._processed = True
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, time ``until`` passes, or event fires.

        Returns the value of ``until`` when it is an event.
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            stop_event.callbacks.append(lambda e: (_ for _ in ()).throw(StopSimulation(e)))
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(f"run(until={stop_at}) is in the past (now={self._now})")

        try:
            while self._queue:
                if stop_at is not None and self.peek() > stop_at:
                    self._now = stop_at
                    break
                self.step()
        except StopSimulation:
            pass

        if stop_event is not None:
            if not stop_event._triggered:
                raise SimulationError("run() finished but the target event never fired")
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_at is not None and self._now < stop_at and not self._queue:
            self._now = stop_at
        return None
