"""Seeded random-stream management.

Every stochastic component in the simulator (network jitter, failure
injection, shuffling, synthetic logs) draws from an *independent named
stream* derived from a single experiment seed, so that

* runs are exactly reproducible given a seed, and
* changing how many draws one component makes never perturbs another
  (no accidental cross-coupling through a shared global RNG).

Streams are ``numpy.random.Generator`` instances spawned via
``SeedSequence(seed, stream_hash)``.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(seed: int, name: str) -> int:
    """Derive a deterministic 32-bit child seed from ``seed`` and ``name``."""
    return zlib.crc32(name.encode("utf-8"), seed & 0xFFFFFFFF) & 0xFFFFFFFF


class RngRegistry:
    """Factory for independent, reproducible named random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence([self.seed & 0xFFFFFFFF, derive_seed(self.seed, name)])
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
