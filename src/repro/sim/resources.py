"""Shared-resource primitives for the simulation kernel.

Three primitives cover every contention point in the cluster models:

* :class:`Resource` — counted FIFO resource (e.g. NVMe queue slots,
  metadata-server service threads).
* :class:`Store` — unbounded/bounded FIFO object store (e.g. RPC mailboxes).
* :class:`SharedBandwidth` — a fluid-flow fair-share link: ``k`` concurrent
  transfers each progress at ``rate / k``.  This is the model used for NVMe
  bandwidth, PFS OST bandwidth, and network links; it is what produces the
  contention (and hence straggler) behaviour the paper's evaluation hinges on.

The fluid model recomputes per-transfer progress lazily, only when the set
of active transfers changes, so the cost is O(active) per arrival/departure
rather than per time step.
"""

from __future__ import annotations

from typing import Any, Optional

from .engine import Environment, Event

__all__ = ["Resource", "Request", "Store", "SharedBandwidth", "Preempted"]


class Preempted(Exception):
    """Cause attached to the Interrupt of a preempted resource user."""


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ... hold the slot ...
        # released on exit
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._queue.append(self)
        resource._trigger()

    def cancel(self) -> None:
        """Withdraw the request (waiting or held)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """Counted resource with FIFO admission.

    ``capacity`` concurrent holders; further requesters queue in arrival
    order.  Release wakes the head of the queue at the current time.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._queue: list[Request] = []
        self._users: list[Request] = []

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> Request:
        return Request(self)

    def release(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            self._trigger()
        elif request in self._queue:
            self._queue.remove(request)
        # Releasing twice is a no-op by design (context-manager + explicit).

    def _trigger(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.pop(0)
            self._users.append(req)
            req.succeed()


class Store:
    """FIFO object store: ``put`` items, processes ``get`` them in order."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    def put(self, item: Any) -> Event:
        evt = Event(self.env)
        self._putters.append((evt, item))
        self._dispatch()
        return evt

    def get(self) -> Event:
        evt = Event(self.env)
        self._getters.append(evt)
        self._dispatch()
        return evt

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                evt, item = self._putters.pop(0)
                self.items.append(item)
                evt.succeed()
                progressed = True
            while self._getters and self.items:
                evt = self._getters.pop(0)
                evt.succeed(self.items.pop(0))
                progressed = True

    def __len__(self) -> int:
        return len(self.items)


class _Transfer:
    __slots__ = ("event", "remaining", "nbytes")

    def __init__(self, event: Event, nbytes: float):
        self.event = event
        self.remaining = float(nbytes)
        self.nbytes = float(nbytes)


class SharedBandwidth:
    """Fair-share fluid-flow link.

    ``k`` concurrent transfers each receive ``rate / k`` bytes/s (optionally
    capped at ``per_stream_cap``).  ``transfer(nbytes)`` returns an event that
    fires when the last byte completes under that dynamic schedule.

    The model is work-conserving and exact for piecewise-constant shares:
    progress is integrated between membership changes only.
    """

    def __init__(
        self,
        env: Environment,
        rate: float,
        per_stream_cap: Optional[float] = None,
        name: str = "",
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if per_stream_cap is not None and per_stream_cap <= 0:
            raise ValueError("per_stream_cap must be positive")
        self.env = env
        self.rate = float(rate)
        self.per_stream_cap = per_stream_cap
        self.name = name
        self._active: list[_Transfer] = []
        self._last_update = env.now
        self._wake_version = 0
        self._bytes_moved = 0.0

    # -- public API ---------------------------------------------------------
    @property
    def active_transfers(self) -> int:
        return len(self._active)

    @property
    def bytes_moved(self) -> float:
        """Total bytes completed over the link since construction."""
        return self._bytes_moved

    def transfer(self, nbytes: float) -> Event:
        """Begin a transfer of ``nbytes``; the returned event fires on completion."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        evt = Event(self.env)
        if nbytes == 0:
            evt.succeed(0.0)
            return evt
        self._advance()
        self._active.append(_Transfer(evt, nbytes))
        self._reschedule()
        return evt

    def estimated_time(self, nbytes: float) -> float:
        """Lower-bound transfer time for ``nbytes`` given *current* load."""
        share = self._share(len(self._active) + 1)
        return nbytes / share

    # -- fluid-flow bookkeeping ----------------------------------------------
    def _share(self, k: int) -> float:
        if k <= 0:
            return self.rate
        share = self.rate / k
        if self.per_stream_cap is not None:
            share = min(share, self.per_stream_cap)
        return share

    #: bytes below this are float residue, not data
    _BYTE_EPS = 1e-6
    #: a completion this close in the future is "now" at double precision
    _TIME_EPS = 1e-12

    def _advance(self) -> None:
        """Integrate progress since the last membership change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        done = self._share(len(self._active)) * dt
        for t in self._active:
            t.remaining = max(0.0, t.remaining - done)

    def _reschedule(self) -> None:
        """Complete finished transfers and schedule the next wake-up.

        Runs to a fixed point: completing a transfer raises the survivors'
        share, which can make further completions immediate; and remnants
        smaller than float resolution are completed rather than scheduled,
        so a wake is only ever placed a representable distance in the
        future (no zero-delay spin).
        """
        while self._active:
            finished = [t for t in self._active if t.remaining <= self._BYTE_EPS]
            if finished:
                self._active = [t for t in self._active if t.remaining > self._BYTE_EPS]
                for t in finished:
                    self._bytes_moved += t.nbytes
                    t.event.succeed(t.nbytes)
                continue  # share changed; re-evaluate
            share = self._share(len(self._active))
            next_done = min(t.remaining for t in self._active) / share
            if next_done <= self._TIME_EPS or self.env.now + next_done == self.env.now:
                # Completion is below time resolution: finish the smallest
                # transfer immediately instead of spinning.
                smallest = min(self._active, key=lambda t: t.remaining)
                smallest.remaining = 0.0
                continue
            self._wake_version += 1
            version = self._wake_version

            def _wake(_evt: Event, version: int = version) -> None:
                if version != self._wake_version:
                    return  # membership changed since this wake was scheduled
                self._advance()
                self._reschedule()

            wake = self.env.timeout(next_done)
            wake.callbacks.append(_wake)
            return


def hold(env: Environment, resource: Resource, duration: float):
    """Convenience process body: acquire ``resource`` for ``duration``."""
    with resource.request() as req:
        yield req
        yield env.timeout(duration)
