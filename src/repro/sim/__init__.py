"""Discrete-event simulation kernel (engine, resources, seeded RNG streams)."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopSimulation,
    Timeout,
)
from .resources import Preempted, Request, Resource, SharedBandwidth, Store
from .rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "StopSimulation",
    "Timeout",
    "Preempted",
    "Request",
    "Resource",
    "SharedBandwidth",
    "Store",
    "RngRegistry",
    "derive_seed",
]
