"""Workload model: key popularity, value sizes, and read/write mix.

A :class:`Workload` is the *demand* side of a load test, fully determined
by its :class:`WorkloadSpec` and a seed: a synthetic corpus of files (the
supply the cache serves), a popularity distribution over those files
(Zipf — the shape real training-data and KV traffic follows — or
uniform), and a read/write mix.  Popularity ranks are assigned to a
seed-shuffled permutation of the corpus so the hot keys land on different
cache servers from run shape to run shape instead of clustering on
whichever server owns the lexicographically-first paths.

Sampling is vectorised: drivers pull :meth:`Workload.batch` chunks and
each worker thread owns an independent ``numpy`` generator, so two runs
with the same seed and worker count issue byte-identical op sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..runtime.storage import PFSDir

__all__ = ["Op", "WorkloadSpec", "Workload"]

DISTRIBUTIONS = ("zipf", "uniform")
SIZE_MODELS = ("fixed", "lognormal")


@dataclass(frozen=True)
class Op:
    """One generated request."""

    kind: str  # "read" | "write"
    path: str
    size: int  # bytes (the entry's size; writes re-write the same size)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of the offered traffic."""

    n_files: int = 64
    file_bytes: int = 16384
    #: key-popularity model over the corpus
    distribution: str = "zipf"
    #: Zipf exponent (1.0–1.3 covers most measured cache traces)
    zipf_s: float = 1.1
    #: fraction of ops that are reads (rest are durable writes)
    read_fraction: float = 1.0
    #: value-size model: "fixed" or "lognormal" around ``file_bytes``
    size_model: str = "fixed"
    #: lognormal shape (sigma of underlying normal); ignored for "fixed"
    size_sigma: float = 0.5
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")
        if self.file_bytes < 1:
            raise ValueError("file_bytes must be >= 1")
        if self.distribution not in DISTRIBUTIONS:
            raise ValueError(f"distribution must be one of {DISTRIBUTIONS}")
        if self.size_model not in SIZE_MODELS:
            raise ValueError(f"size_model must be one of {SIZE_MODELS}")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")

    def to_dict(self) -> dict:
        return {
            "n_files": self.n_files,
            "file_bytes": self.file_bytes,
            "distribution": self.distribution,
            "zipf_s": self.zipf_s,
            "read_fraction": self.read_fraction,
            "size_model": self.size_model,
            "size_sigma": self.size_sigma,
            "seed": self.seed,
        }


class Workload:
    """Samplable request stream over a synthetic corpus."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        self.paths = [f"/dataset/train/sample_{i:06d}.bin" for i in range(spec.n_files)]
        if spec.size_model == "fixed":
            self.sizes = np.full(spec.n_files, spec.file_bytes, dtype=np.int64)
        else:
            # lognormal with mean ≈ file_bytes: shift mu by -sigma^2/2
            mu = np.log(spec.file_bytes) - spec.size_sigma**2 / 2.0
            raw = rng.lognormal(mean=mu, sigma=spec.size_sigma, size=spec.n_files)
            self.sizes = np.maximum(1, raw.round()).astype(np.int64)
        # Popularity: rank r gets weight 1/r^s, ranks assigned to a shuffled
        # permutation so hot keys spread across the hash ring.
        if spec.distribution == "zipf":
            weights = 1.0 / np.arange(1, spec.n_files + 1, dtype=np.float64) ** spec.zipf_s
        else:
            weights = np.ones(spec.n_files, dtype=np.float64)
        perm = rng.permutation(spec.n_files)
        probs = np.empty(spec.n_files, dtype=np.float64)
        probs[perm] = weights / weights.sum()
        self.probs = probs
        self._cum = np.cumsum(probs)
        self._cum[-1] = 1.0  # guard against float drift

    # -- corpus ------------------------------------------------------------------------
    def total_corpus_bytes(self) -> int:
        return int(self.sizes.sum())

    def materialize(self, pfs: PFSDir) -> list[str]:
        """Write the corpus into the PFS directory; returns the paths."""
        rng = np.random.default_rng(self.spec.seed)
        for path, size in zip(self.paths, self.sizes):
            pfs.write(path, rng.bytes(int(size)))
        return list(self.paths)

    # -- sampling ----------------------------------------------------------------------
    def worker_rng(self, worker_id: int, stream: int = 0) -> np.random.Generator:
        """Independent, reproducible generator for one worker thread."""
        return np.random.default_rng((self.spec.seed, stream, worker_id))

    def batch(self, rng: np.random.Generator, k: int) -> list[Op]:
        """Draw ``k`` ops (vectorised; O(k log n))."""
        idx = np.searchsorted(self._cum, rng.random(k), side="right")
        reads = rng.random(k) < self.spec.read_fraction
        return [
            Op(
                kind="read" if is_read else "write",
                path=self.paths[i],
                size=int(self.sizes[i]),
            )
            for i, is_read in zip(idx, reads)
        ]

    def expected_hot_fraction(self, top_k: int = 1) -> float:
        """Probability mass on the ``top_k`` most popular keys (for tests)."""
        return float(np.sort(self.probs)[::-1][:top_k].sum())
