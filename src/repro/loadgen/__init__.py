"""Load generation & latency benchmarking for the FT-Cache runtime.

Drives real request traffic (Zipf/uniform popularity, read/write mix)
against a :class:`~repro.runtime.cluster.LocalCluster` of socket servers
with closed-loop or open-loop (Poisson) injection, composes warm-up /
steady-state / chaos phases, and reports throughput plus HDR-style
latency percentiles per phase.  ``python -m repro.loadgen --help`` is the
operational entry point; the classes below are the library API.
"""

from .workload import Op, Workload, WorkloadSpec
from .drivers import (
    ClosedLoopDriver,
    DriverConfig,
    DriverResult,
    HookRecorder,
    OpenLoopDriver,
    make_driver,
)
from .scenario import (
    BENCH_SCHEMA_VERSION,
    ChaosEvent,
    PhaseReport,
    PhaseSpec,
    Scenario,
    ScenarioReport,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Op",
    "Workload",
    "WorkloadSpec",
    "DriverConfig",
    "DriverResult",
    "HookRecorder",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "make_driver",
    "ChaosEvent",
    "PhaseSpec",
    "PhaseReport",
    "Scenario",
    "ScenarioReport",
]
