"""Load-generation CLI: drive a real LocalCluster and report SLO metrics.

The acceptance smoke from the repo's bench trajectory::

    python -m repro.loadgen --servers 3 --duration 5 --workload zipf

spins up 3 socket servers over temp directories, runs warm-up → steady →
chaos (one mid-phase kill, then an elastic rejoin), prints per-phase
throughput and p50/p90/p99/p99.9 latency, and writes the machine-readable
``BENCH_loadgen.json`` artifact.  All randomness (key popularity, op mix,
Poisson arrivals, chaos timing) derives from ``--seed``; only wall-clock
latency values differ between runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..obs import configure_logging
from ..runtime.cluster import LocalCluster
from .drivers import DriverConfig
from .scenario import ChaosEvent, PhaseSpec, Scenario
from .workload import Workload, WorkloadSpec

__all__ = ["main", "build_scenario", "render_phase_line", "PHASE_HEADER"]

PHASE_HEADER = (
    f"{'phase':<10} {'mode':<6} {'secs':>6} {'ops':>8} {'ops/s':>8} {'err':>4} "
    f"{'shed':>5} {'hit%':>6} {'p50ms':>8} {'p90ms':>8} {'p99ms':>8} {'p99.9ms':>8} {'maxms':>8}"
)


def _ms(latency: dict | None, key: str) -> str:
    if not latency or key not in latency:
        return "-"
    return f"{latency[key] * 1e3:.2f}"


def render_phase_line(report) -> str:
    d = report.to_dict()
    lat = d.get("latency")
    hit = d.get("client_hit_rate")
    hit_s = f"{100 * hit:.1f}" if hit is not None else "-"
    return (
        f"{d['name']:<10} {d['mode']:<6} {d['duration_s']:>6.1f} {d['ops']:>8d} "
        f"{d['throughput_ops_s']:>8.0f} {d['errors']:>4d} {d['shed']:>5d} {hit_s:>6} "
        f"{_ms(lat, 'p50'):>8} {_ms(lat, 'p90'):>8} {_ms(lat, 'p99'):>8} "
        f"{_ms(lat, 'p999'):>8} {_ms(lat, 'max'):>8}"
    )


def build_scenario(cluster: LocalCluster, args: argparse.Namespace) -> Scenario:
    """Warm-up → steady → chaos phases from parsed CLI flags."""
    spec = WorkloadSpec(
        n_files=args.files,
        file_bytes=args.file_bytes,
        distribution=args.workload,
        zipf_s=args.zipf_s,
        read_fraction=args.read_fraction,
        size_model=args.size_model,
        seed=args.seed,
    )
    workload = Workload(spec)
    driver = DriverConfig(
        mode=args.mode,
        workers=args.workers,
        rate=args.rate,
        queue_depth=args.queue_depth,
        backpressure=args.backpressure,
    )
    warmup_driver = DriverConfig(mode="closed", workers=args.workers)
    phases = []
    if args.warmup > 0:
        phases.append(PhaseSpec(name="warmup", duration=args.warmup, driver=warmup_driver))
    phases.append(PhaseSpec(name="steady", duration=args.duration, driver=driver))
    if args.chaos > 0:
        events = []
        if args.monkey_interval > 0:
            monkey = {"interval": args.monkey_interval, "seed": args.seed, "min_alive": 1}
            phases.append(
                PhaseSpec(name="chaos", duration=args.chaos, driver=driver, monkey=monkey)
            )
        else:
            if not args.no_kill:
                kill_at = args.kill_at if args.kill_at is not None else args.chaos * 0.5
                events.append(ChaosEvent(at=kill_at, action="kill", kill_mode=args.kill_mode))
                if not args.no_restart:
                    restart_at = args.restart_at if args.restart_at is not None else args.chaos * 0.75
                    events.append(ChaosEvent(at=restart_at, action="restart"))
            if args.join_at is not None:
                events.append(
                    ChaosEvent(at=args.join_at, action="join", weight=args.join_weight)
                )
            phases.append(
                PhaseSpec(name="chaos", duration=args.chaos, driver=driver, chaos=tuple(events))
            )
    cli_config = {
        "servers": args.servers,
        "policy": args.policy,
        "ttl": args.ttl,
        "threshold": args.threshold,
        "pfs_delay": args.pfs_delay,
        "nvme_capacity_bytes": args.capacity or None,
        "mover_workers": args.mover_workers,
        "mover_queue_depth": args.mover_queue_depth,
        "join_at": args.join_at,
        "join_weight": args.join_weight,
        "trace_sample_rate": args.trace_sample_rate,
        "wire": args.wire,
        "seed": args.seed,
    }
    return Scenario(cluster, workload, phases, extra_config=cli_config)


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Drive request traffic against a local FT-Cache cluster and report latency SLOs",
    )
    parser.add_argument("--servers", type=int, default=3, help="number of cache servers")
    parser.add_argument("--duration", type=float, default=5.0, help="steady-state phase seconds")
    parser.add_argument("--warmup", type=float, default=1.0, help="warm-up phase seconds (0 disables)")
    parser.add_argument("--chaos", type=float, default=2.0, help="chaos phase seconds (0 disables)")
    parser.add_argument("--workload", choices=("zipf", "uniform"), default="zipf")
    parser.add_argument("--zipf-s", type=float, default=1.1, help="Zipf exponent")
    parser.add_argument("--files", type=int, default=64, help="corpus size (files)")
    parser.add_argument("--file-bytes", type=int, default=16384, help="value size (bytes)")
    parser.add_argument("--size-model", choices=("fixed", "lognormal"), default="fixed")
    parser.add_argument("--read-fraction", type=float, default=0.9, help="read share of the op mix")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--workers", type=int, default=4, help="driver worker threads")
    parser.add_argument("--rate", type=float, default=300.0, help="open loop: Poisson arrivals/s")
    parser.add_argument("--queue-depth", type=int, default=64, help="open loop: bounded queue depth")
    parser.add_argument("--backpressure", choices=("shed", "block"), default="shed")
    parser.add_argument("--policy", default="elastic",
                        help="elastic | nvme | pfs | NoFT | replicated (cluster fault policy)")
    parser.add_argument("--ttl", type=float, default=0.25, help="client RPC timeout seconds")
    parser.add_argument("--threshold", type=int, default=2, help="timeouts before declaring a node dead")
    parser.add_argument("--pfs-delay", type=float, default=0.0, help="artificial PFS read delay seconds")
    parser.add_argument("--capacity", type=int, default=0,
                        help="per-server NVMe capacity bytes (0 = unbounded; small values exercise LRU eviction)")
    parser.add_argument("--mover-workers", type=int, default=2,
                        help="per-server data-mover worker threads (bounded recache pool)")
    parser.add_argument("--mover-queue-depth", type=int, default=64,
                        help="per-server pending recache entries before drop-oldest overflow")
    parser.add_argument("--kill-at", type=float, default=None,
                        help="seconds into the chaos phase to kill a server (default: midpoint)")
    parser.add_argument("--restart-at", type=float, default=None,
                        help="seconds into the chaos phase to restart it (default: 75%%)")
    parser.add_argument("--no-restart", action="store_true", help="leave the killed server down")
    parser.add_argument("--no-kill", action="store_true",
                        help="skip the scheduled kill/restart (e.g. for a join-only chaos phase)")
    parser.add_argument("--kill-mode", choices=("hang", "drop"), default="hang")
    parser.add_argument("--join-at", type=float, default=None,
                        help="seconds into the chaos phase to live-join a new server (elastic scale-out)")
    parser.add_argument("--join-weight", type=float, default=1.0,
                        help="capacity weight of the joining server (weighted virtual nodes)")
    parser.add_argument("--monkey-interval", type=float, default=0.0,
                        help="use a random ChaosMonkey (mean seconds between events) instead of one scheduled kill")
    parser.add_argument("--wire", choices=("binary", "json"), default="binary",
                        help="client request codec for data ops: binary READ fast path vs legacy JSON frames")
    parser.add_argument("--trace-sample-rate", type=float, default=0.0,
                        help="fraction of client requests traced end-to-end (0 disables tracing)")
    parser.add_argument("--obs-dir", default="",
                        help="directory for span/event JSONL dumps ('' disables; implies tracing output)")
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="stdlib logging level for the repro hierarchy")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--out", default="BENCH_loadgen.json", help="JSON artifact path ('' disables)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    configure_logging(args.log_level)
    with LocalCluster(
        n_servers=args.servers,
        policy=args.policy,
        ttl=args.ttl,
        timeout_threshold=args.threshold,
        pfs_read_delay=args.pfs_delay,
        nvme_capacity_bytes=args.capacity or None,
        mover_workers=args.mover_workers,
        mover_queue_depth=args.mover_queue_depth,
        trace_sample_rate=args.trace_sample_rate,
        trace_seed=args.seed,
        wire=args.wire,
    ) as cluster:
        scenario = build_scenario(cluster, args)
        print(f"loadgen: {args.servers} servers, policy={args.policy}, "
              f"workload={args.workload}(s={args.zipf_s}) over {args.files} x {args.file_bytes} B, "
              f"mode={args.mode}, wire={args.wire}, seed={args.seed}")
        print(PHASE_HEADER)
        report = scenario.run(on_phase=lambda p: print(render_phase_line(p), flush=True))
        obs_files = cluster.dump_obs(Path(args.obs_dir)) if args.obs_dir else []
    for phase in report.phases:
        for action in phase.chaos_actions:
            print(f"  chaos[{phase.name}] t={action['t']:.2f}s {action['action']} node {action['node']}")
    for join in report.rebalance.get("joins", ()):
        plan = join.get("plan", {})
        print(
            f"  join node {join['node']} [{join['state']}]: "
            f"{join['warmed_keys']}/{plan.get('moved_keys', 0)} keys warmed "
            f"({join['warmed_bytes']} B) in {join['warmup_seconds']:.2f}s, "
            f"moved fraction {plan.get('predicted_fraction', 0):.3f} "
            f"(theoretical {plan.get('theoretical_fraction', 0):.3f}), "
            f"{join['throttle_pauses']} throttle pauses, "
            f"epoch {join['planned_epoch']}->{join['cutover_epoch']}"
        )
    if report.obs:
        cov = report.obs.get("coverage_p50")
        exemplars = report.obs.get("slowest_read_traces", [])
        print(f"  obs: {report.obs['spans']} spans / {report.obs['traces']} traces "
              f"(sample rate {report.obs['trace_sample_rate']}), "
              f"coverage p50 {'-' if cov is None else f'{cov:.3f}'}, "
              f"{report.obs['spans_dropped']} dropped")
        for ex in exemplars[:3]:
            print(f"    slow trace {ex['trace_id']}: {ex['duration_s'] * 1e3:.2f} ms "
                  f"via {' > '.join(ex['critical_path'])}")
    for f in obs_files:
        print(f"  obs dump {f}")
    totals = report.totals()
    print(f"totals: {totals['ops']} ops in {totals['duration_s']:.1f}s "
          f"({totals['throughput_ops_s']:.0f} ops/s), {totals['errors']} errors, {totals['shed']} shed")
    if args.out:
        path = report.write_json(args.out)
        print(f"wrote {path}")
    return 1 if totals["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
