"""Closed- and open-loop load drivers over the fault-tolerant client.

Two injection disciplines, because they answer different questions:

* **Closed loop** — ``workers`` threads, each issuing its next request the
  moment the previous one completes.  Measures *capacity*: the throughput
  the cluster sustains at a fixed concurrency.  Latency under a failure
  is honest here (a stalled worker stops offering load — coordinated
  omission in the classic sense), which is why the open loop exists.
* **Open loop** — requests arrive on a Poisson schedule at a configured
  ``rate`` regardless of how fast earlier ones finish, queue into a
  bounded buffer, and are served by a worker pool.  Latency is measured
  from *scheduled arrival* to completion, so detection stalls and
  re-routes show up in the tail instead of silently thinning the load.
  When the queue is full the ``backpressure`` policy decides: ``"shed"``
  drops the arrival (counted, like a load balancer returning 503) or
  ``"block"`` stalls the arrival process (degrading toward closed-loop).

Both drivers time every request through the client's ``on_op`` hook (pure
service time) *and* at the worker (end-to-end, queue wait included), into
per-thread :class:`~repro.metrics.LatencyHistogram` parts merged after the
run — no shared mutable state on the hot path.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..analysis import lockwitness
from ..core.fault_policy import UnrecoverableNodeFailure
from ..metrics import LatencyHistogram
from ..runtime.client import FTCacheClient, ReadError
from ..runtime.protocol import ProtocolError
from .workload import Op, Workload

__all__ = ["DriverConfig", "DriverResult", "HookRecorder", "ClosedLoopDriver", "OpenLoopDriver", "make_driver"]

#: rng stream id for the open-loop arrival process (distinct from workers)
_ARRIVAL_STREAM_ID = 10_000


@dataclass(frozen=True)
class DriverConfig:
    """How traffic is injected (the *supply* side of a load test)."""

    mode: str = "closed"  # "closed" | "open"
    workers: int = 4
    #: open loop: mean Poisson arrival rate, requests/second
    rate: float = 200.0
    #: open loop: bounded arrival queue depth
    queue_depth: int = 64
    #: open loop overload policy: "shed" (drop + count) | "block"
    backpressure: str = "shed"
    #: ops drawn per sampler refill (amortises rng cost; no behaviour change)
    batch: int = 64

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.backpressure not in ("shed", "block"):
            raise ValueError("backpressure must be 'shed' or 'block'")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "rate": self.rate,
            "queue_depth": self.queue_depth,
            "backpressure": self.backpressure,
        }


class HookRecorder:
    """``FTCacheClient.on_op`` callback: lock-free per-thread recording.

    Each calling thread lazily gets its own (histogram, outcome-counter,
    attribution-counter) slot; :meth:`service_histogram` /
    :meth:`outcome_counts` / :meth:`node_counts` / :meth:`reconnects`
    merge the slots after the run.  Attribution comes from the hook's
    ``node_id``/``reconnects`` arguments: which node answered each op and
    how many transparent pooled-socket reconnects the run needed.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._parts: list[tuple[LatencyHistogram, Counter, Counter]] = []
        self._lock = lockwitness.named_lock("loadgen-recorder")

    def _slot(self) -> tuple[LatencyHistogram, Counter, Counter]:
        slot = getattr(self._local, "slot", None)
        if slot is None:
            slot = (LatencyHistogram(), Counter(), Counter())
            self._local.slot = slot
            with self._lock:
                self._parts.append(slot)
        return slot

    def __call__(self, op: str, path: str, seconds: float, outcome: str,
                 node_id=None, reconnects: int = 0) -> None:
        hist, counts, attrib = self._slot()
        hist.record(seconds)
        counts[f"{op}:{outcome}"] += 1
        if node_id is not None:
            attrib[f"node:{node_id}"] += 1
        if reconnects:
            attrib["reconnects"] += reconnects

    def service_histogram(self) -> LatencyHistogram:
        with self._lock:
            return LatencyHistogram.merged([h for h, _, _ in self._parts])

    def outcome_counts(self) -> dict[str, int]:
        total: Counter = Counter()
        with self._lock:
            for _, c, _ in self._parts:
                total.update(c)
        return dict(total)

    def node_counts(self) -> dict[str, int]:
        """``{"node:<id>": ops answered by that node}`` across all threads."""
        total: Counter = Counter()
        with self._lock:
            for _, _, a in self._parts:
                total.update(a)
        return {k: v for k, v in total.items() if k.startswith("node:")}

    def reconnects(self) -> int:
        """Total transparent pooled-socket reconnects observed by the hook."""
        with self._lock:
            return sum(a.get("reconnects", 0) for _, _, a in self._parts)


@dataclass
class DriverResult:
    """Aggregate of one driver run (one scenario phase)."""

    mode: str
    duration_s: float
    ops: int = 0
    errors: int = 0
    #: open loop only: arrivals offered / dropped by backpressure
    offered: int = 0
    shed: int = 0
    #: end-to-end latency (open loop: includes queue wait)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: pure service time, from the client's on_op hook
    service: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: "read:cache" / "read:pfs" / "read:pfs_direct" / "write:ok" / ...
    outcomes: dict = field(default_factory=dict)
    #: "node:<id>" → ops that node answered (from the on_op hook)
    node_ops: dict = field(default_factory=dict)
    #: transparent pooled-socket reconnects observed during the run
    reconnects: int = 0

    @property
    def throughput(self) -> float:
        return self.ops / self.duration_s if self.duration_s > 0 else 0.0

    def to_dict(self) -> dict:
        reads = sum(v for k, v in self.outcomes.items() if k.startswith("read:"))
        hits = self.outcomes.get("read:cache", 0)
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "ops": self.ops,
            "throughput_ops_s": self.throughput,
            "errors": self.errors,
            "offered": self.offered,
            "shed": self.shed,
            "client_hit_rate": hits / reads if reads else None,
            "outcomes": dict(sorted(self.outcomes.items())),
            "node_ops": dict(sorted(self.node_ops.items())),
            "reconnects": self.reconnects,
            "latency": self.latency.to_dict() if self.latency.count else None,
            "service_latency": self.service.to_dict() if self.service.count else None,
        }


def _execute(client: FTCacheClient, op: Op) -> bool:
    """Run one op; True on success.  Failure-policy aborts count as errors."""
    try:
        if op.kind == "read":
            client.read(op.path)
        else:
            client.write(op.path, b"\x5a" * op.size)
        return True
    except (ReadError, UnrecoverableNodeFailure, ProtocolError, OSError):
        return False


class _DriverBase:
    def __init__(self, client: FTCacheClient, workload: Workload, config: DriverConfig):
        self.client = client
        self.workload = workload
        self.config = config

    def run(self, duration: float, stream: int = 0) -> DriverResult:
        """Drive traffic for ``duration`` seconds; ``stream`` decorrelates phases."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        recorder = HookRecorder()
        prev_hook = self.client.on_op
        self.client.on_op = recorder
        t0 = time.monotonic()
        try:
            result = self._drive(duration, stream)
        finally:
            self.client.on_op = prev_hook
        result.duration_s = time.monotonic() - t0
        result.service = recorder.service_histogram()
        result.outcomes = recorder.outcome_counts()
        result.node_ops = recorder.node_counts()
        result.reconnects = recorder.reconnects()
        return result

    def _drive(self, duration: float, stream: int) -> DriverResult:  # pragma: no cover
        raise NotImplementedError


class ClosedLoopDriver(_DriverBase):
    """``workers`` threads in think-time-free request loops."""

    def _drive(self, duration: float, stream: int) -> DriverResult:
        deadline = time.monotonic() + duration
        parts: list[tuple[LatencyHistogram, int, int]] = [None] * self.config.workers  # type: ignore[list-item]

        def _worker(wid: int) -> None:
            rng = self.workload.worker_rng(wid, stream)
            hist = LatencyHistogram()
            ops = errors = 0
            buf: list[Op] = []
            while time.monotonic() < deadline:
                if not buf:
                    buf = self.workload.batch(rng, self.config.batch)
                    buf.reverse()  # pop() consumes in drawn order
                op = buf.pop()
                t_start = time.monotonic()
                ok = _execute(self.client, op)
                hist.record(time.monotonic() - t_start)
                ops += 1
                errors += 0 if ok else 1
            parts[wid] = (hist, ops, errors)

        threads = [
            threading.Thread(target=_worker, args=(wid,), name=f"loadgen-closed-{wid}", daemon=True)
            for wid in range(self.config.workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        result = DriverResult(mode="closed", duration_s=duration)
        for hist, ops, errors in parts:
            result.latency.merge(hist)
            result.ops += ops
            result.errors += errors
        return result


class OpenLoopDriver(_DriverBase):
    """Poisson arrivals into a bounded queue served by a worker pool."""

    def _drive(self, duration: float, stream: int) -> DriverResult:
        cfg = self.config
        q: "queue.Queue[Optional[tuple[Op, float]]]" = queue.Queue(maxsize=cfg.queue_depth)
        parts: list[tuple[LatencyHistogram, int, int]] = [None] * cfg.workers  # type: ignore[list-item]

        def _worker(wid: int) -> None:
            hist = LatencyHistogram()
            ops = errors = 0
            while True:
                item = q.get()
                if item is None:
                    break
                op, arrived = item
                ok = _execute(self.client, op)
                hist.record(time.monotonic() - arrived)
                ops += 1
                errors += 0 if ok else 1
            parts[wid] = (hist, ops, errors)

        threads = [
            threading.Thread(target=_worker, args=(wid,), name=f"loadgen-open-{wid}", daemon=True)
            for wid in range(cfg.workers)
        ]
        for t in threads:
            t.start()

        # Arrival process (this thread): deterministic Poisson schedule.
        rng = self.workload.worker_rng(_ARRIVAL_STREAM_ID, stream)
        start = time.monotonic()
        deadline = start + duration
        t_next = start + float(rng.exponential(1.0 / cfg.rate))
        offered = shed = 0
        buf: list[Op] = []
        while t_next < deadline:
            delay = t_next - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            if not buf:
                buf = self.workload.batch(rng, cfg.batch)
                buf.reverse()
            op = buf.pop()
            offered += 1
            item = (op, t_next)
            if cfg.backpressure == "block":
                while True:  # block, but keep honouring the deadline
                    try:
                        q.put(item, timeout=0.05)
                        break
                    except queue.Full:
                        if time.monotonic() >= deadline:
                            shed += 1
                            break
            else:
                try:
                    q.put_nowait(item)
                except queue.Full:
                    shed += 1
            t_next += float(rng.exponential(1.0 / cfg.rate))

        for _ in threads:  # sentinels after the admitted backlog drains
            q.put(None)
        for t in threads:
            t.join()

        result = DriverResult(mode="open", duration_s=duration, offered=offered, shed=shed)
        for hist, ops, errors in parts:
            result.latency.merge(hist)
            result.ops += ops
            result.errors += errors
        return result


def make_driver(client: FTCacheClient, workload: Workload, config: DriverConfig) -> _DriverBase:
    cls = ClosedLoopDriver if config.mode == "closed" else OpenLoopDriver
    return cls(client, workload, config)
