"""Scenario layer: compose warm-up, steady-state, and chaos phases.

A :class:`Scenario` runs a sequence of :class:`PhaseSpec` against one
:class:`~repro.runtime.cluster.LocalCluster` with one shared
fault-tolerant client (so failure detections persist across phases, as
they would for a long-lived training job).  Each phase drives traffic
with its own :class:`~repro.loadgen.drivers.DriverConfig` and may inject
failures two ways:

* **scheduled** :class:`ChaosEvent` — kill/restart a specific (or
  ``"auto"``-chosen) node at a fixed offset into the phase, for
  deterministic, reproducible failure timing (the CLI's default);
* **random** — a :class:`~repro.runtime.chaos.ChaosMonkey` unleashed for
  the phase's duration, for soak-style torture runs.

Per phase the runner reports throughput, error/shed counts, client hit
rate, server-side counter deltas (hits/misses/PFS reads/recaches/
evictions), latency percentiles, and the chaos actions that actually
fired — the whole thing JSON-serialisable as the ``BENCH_loadgen.json``
perf artifact.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..obs.analysis import (
    build_traces,
    coverage_quantile,
    critical_path,
    slowest_traces,
    stage_breakdown,
)
from ..obs.events import get_event_log
from ..runtime.chaos import ChaosMonkey
from ..runtime.client import FTCacheClient
from ..runtime.cluster import LocalCluster
from .drivers import DriverConfig, DriverResult, make_driver
from .workload import Workload

__all__ = ["ChaosEvent", "PhaseSpec", "PhaseReport", "ScenarioReport", "Scenario"]

#: v2: per-phase deltas and server snapshots grew the data-mover pool
#: counters (mover_enqueued/coalesced/dropped, mover_queue_len) and
#: race_fallthroughs; client_stats split cache_reads into
#: server_cache_reads / server_pfs_reads (the old key stays as an alias)
#: and added reconnects.
#: v3: elastic scale-out — ChaosEvent action "join" (live node join via
#: repro.rebalance), a top-level "rebalance" block (per-join move plan,
#: warmup traffic, cutover epochs, final ring epoch + membership version),
#: join/transfer counters in per-phase deltas and server snapshots
#: (join_plans, transfers_in, transfer_bytes), and client
#: join_plans_sent / transfers_sent counters.
#: v4: observability — a top-level "obs" block (per-stage span breakdown,
#: instrumentation coverage at p50, slowest-N exemplar trace ids, span/
#: event loss accounting; empty dict when tracing was off), per-phase
#: node_ops attribution and reconnects from the extended on_op hook.
BENCH_SCHEMA_VERSION = 4

_DELTA_KEYS = (
    "hits",
    "misses",
    "pfs_reads",
    "recached",
    "errors",
    "evictions",
    "race_fallthroughs",
    "mover_enqueued",
    "mover_coalesced",
    "mover_dropped",
    "join_plans",
    "transfers_in",
    "transfer_bytes",
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure-injection (or scale-out) action within a phase."""

    at: float  # seconds into the phase
    action: str  # "kill" | "restart" | "join"
    #: node id, or "auto" (kill: lowest-id live node; restart: lowest dead;
    #: join: always auto — the cluster assigns the next id)
    node: int | str = "auto"
    kill_mode: str = "hang"
    #: capacity weight for a "join" action (weighted virtual nodes)
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.action not in ("kill", "restart", "join"):
            raise ValueError("action must be 'kill', 'restart' or 'join'")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class PhaseSpec:
    """One scenario phase: a name, a duration, a driver, optional chaos."""

    name: str
    duration: float
    driver: DriverConfig = field(default_factory=DriverConfig)
    chaos: tuple[ChaosEvent, ...] = ()
    #: kwargs for a ChaosMonkey active during the phase (None = no monkey)
    monkey: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass
class PhaseReport:
    """Everything measured about one executed phase."""

    name: str
    result: DriverResult
    #: server-side counter deltas over the phase (cluster-wide)
    server_delta: dict
    #: chaos actions that fired: [{"t": s-into-phase, "action", "node"}]
    chaos_actions: list

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            **self.result.to_dict(),
            "server_delta": self.server_delta,
            "chaos": self.chaos_actions,
        }


@dataclass
class ScenarioReport:
    """The full run: config echo + per-phase reports + totals."""

    config: dict
    phases: list[PhaseReport]
    client_stats: dict
    server_snapshots: dict
    #: elastic scale-out summary (schema v3): per-join plan/warmup reports,
    #: final ring epoch and membership version; empty dict when no joins ran
    rebalance: dict = field(default_factory=dict)
    #: observability summary (schema v4): stage breakdown, coverage,
    #: slowest-N exemplar trace ids; empty dict when tracing was off
    obs: dict = field(default_factory=dict)

    def totals(self) -> dict:
        ops = sum(p.result.ops for p in self.phases)
        secs = sum(p.result.duration_s for p in self.phases)
        return {
            "ops": ops,
            "errors": sum(p.result.errors for p in self.phases),
            "shed": sum(p.result.shed for p in self.phases),
            "duration_s": secs,
            "throughput_ops_s": ops / secs if secs else 0.0,
        }

    def to_dict(self) -> dict:
        return {
            "bench": "loadgen",
            "schema_version": BENCH_SCHEMA_VERSION,
            "config": self.config,
            "phases": [p.to_dict() for p in self.phases],
            "totals": self.totals(),
            "client_stats": self.client_stats,
            "servers": self.server_snapshots,
            "rebalance": self.rebalance,
            "obs": self.obs,
        }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path


class _ChaosScheduler:
    """Fires a phase's scheduled ChaosEvents from a background thread."""

    def __init__(self, cluster: LocalCluster, events: Sequence[ChaosEvent]):
        self.cluster = cluster
        self.events = sorted(events, key=lambda e: e.at)
        self.fired: list[dict] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _resolve(self, event: ChaosEvent) -> Optional[int]:
        alive = sorted(self.cluster.alive_servers)
        dead = sorted(set(self.cluster.servers) - set(alive))
        if event.node != "auto":
            return int(event.node)
        if event.action == "kill":
            return alive[0] if alive else None
        return dead[0] if dead else None

    def _run(self) -> None:
        from ..rebalance import JoinAborted

        t0 = time.monotonic()
        for event in self.events:
            if self._stop.wait(timeout=max(0.0, t0 + event.at - time.monotonic())):
                return
            if event.action == "join":
                # Live scale-out under traffic: plan → warm → cutover runs
                # entirely on this thread; serving traffic never stops.
                try:
                    report = self.cluster.join_server(weight=event.weight)
                except JoinAborted as exc:
                    self.fired.append(
                        {"t": round(time.monotonic() - t0, 3), "action": "join-aborted",
                         "node": None, "reason": str(exc)}
                    )
                    continue
                self.fired.append(
                    {"t": round(time.monotonic() - t0, 3), "action": "join", "node": report.node}
                )
                continue
            node = self._resolve(event)
            if node is None:
                continue  # nothing to kill/restart
            if event.action == "kill":
                self.cluster.kill_server(node, mode=event.kill_mode)
            else:
                self.cluster.restart_server(node)
            self.fired.append({"t": round(time.monotonic() - t0, 3), "action": event.action, "node": node})

    def __enter__(self) -> "_ChaosScheduler":
        if self.events:
            self._thread = threading.Thread(target=self._run, name="loadgen-chaos", daemon=True)
            self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)


class Scenario:
    """Run phases in order against a cluster, with one long-lived client."""

    def __init__(
        self,
        cluster: LocalCluster,
        workload: Workload,
        phases: Sequence[PhaseSpec],
        client: Optional[FTCacheClient] = None,
        extra_config: Optional[dict] = None,
    ):
        if not phases:
            raise ValueError("scenario needs at least one phase")
        self.cluster = cluster
        self.workload = workload
        self.phases = list(phases)
        self.client = client if client is not None else cluster.client()
        self.extra_config = dict(extra_config or {})

    def run(self, materialize: bool = True, on_phase=None) -> ScenarioReport:
        """Execute all phases; ``on_phase(report)`` streams per-phase results."""
        if materialize:
            self.cluster.paths = self.workload.materialize(self.cluster.pfs)
        reports: list[PhaseReport] = []
        for stream, spec in enumerate(self.phases):
            before = self.cluster.total_stats()
            monkey = ChaosMonkey(self.cluster, **spec.monkey) if spec.monkey else None
            driver = make_driver(self.client, self.workload, spec.driver)
            with _ChaosScheduler(self.cluster, spec.chaos) as sched:
                if monkey is not None:
                    monkey.start()
                try:
                    result = driver.run(spec.duration, stream=stream)
                finally:
                    if monkey is not None:
                        monkey.stop()
            after = self.cluster.total_stats()
            delta = {k: after[k] - before[k] for k in _DELTA_KEYS}
            actions = list(sched.fired)
            if monkey is not None:
                actions += [
                    {"t": round(a.t, 3), "action": a.kind, "node": a.node_id} for a in monkey.actions
                ]
            report = PhaseReport(name=spec.name, result=result, server_delta=delta, chaos_actions=actions)
            reports.append(report)
            if on_phase is not None:
                on_phase(report)
        config = {
            "workload": self.workload.spec.to_dict(),
            "phases": [
                {
                    "name": s.name,
                    "duration": s.duration,
                    "driver": s.driver.to_dict(),
                    "chaos": [
                        {"at": e.at, "action": e.action, "node": e.node,
                         "kill_mode": e.kill_mode, "weight": e.weight}
                        for e in s.chaos
                    ],
                    "monkey": s.monkey,
                }
                for s in self.phases
            ],
            **self.extra_config,
        }
        rebalance: dict = {}
        if self.cluster.join_reports:
            rebalance = {
                "joins": [r.to_dict() for r in self.cluster.join_reports],
                "ring_epoch": self.cluster.ring_epoch.value,
                "membership_version": self.cluster.membership.version,
            }
        return ScenarioReport(
            config=config,
            phases=reports,
            client_stats=dict(self.client.stats),
            server_snapshots=self.cluster.server_snapshots(),
            rebalance=rebalance,
            obs=self._obs_block(),
        )

    # -- observability (schema v4) ---------------------------------------------
    def collect_spans(self) -> list[dict]:
        """Every retained span across the run: driver client, all servers,
        and the join-control clients (which write into the cluster-owned
        buffer so warmup traces survive the short-lived control client)."""
        spans = list(self.client.tracer.buffer.snapshot())
        for server in self.cluster.servers.values():
            spans.extend(server.tracer.buffer.snapshot())
        spans.extend(self.cluster.control_spans.snapshot())
        return spans

    def _obs_block(self, slowest: int = 5) -> dict:
        """The v4 ``obs`` block: stage breakdown, instrumentation coverage,
        slowest-N exemplar read traces, and loss accounting.  Empty dict
        when tracing was off — consumers key on presence, not nulls."""
        spans = self.collect_spans()
        if not spans:
            return {}
        traces = build_traces(spans)
        exemplars = []
        for root in slowest_traces(traces, n=slowest, root_name="client.read"):
            exemplars.append(
                {
                    "trace_id": root.trace_id,
                    "duration_s": root.duration,
                    "nodes": sorted({str(n.node) for n in critical_path(root)}),
                    "critical_path": [n.name for n in critical_path(root)],
                }
            )
        dropped = self.client.tracer.buffer.counters()["spans_dropped"]
        dropped += sum(
            s.tracer.buffer.counters()["spans_dropped"]
            for s in self.cluster.servers.values()
        )
        return {
            "trace_sample_rate": self.cluster.trace_sample_rate,
            "spans": len(spans),
            "traces": len(traces),
            "spans_dropped": dropped,
            "stage_breakdown": stage_breakdown(spans),
            "coverage_p50": coverage_quantile(traces, 0.5, root_name="client.read"),
            "slowest_read_traces": exemplars,
            "events": get_event_log().counters(),
        }
