"""Wire protocol for the FT-Cache runtime: JSON control frames + a fixed
binary header for the READ hot path.

Two self-describing frame formats share every connection, discriminated
by the first byte on the wire:

* **JSON frames** (the original codec, kept for STAT/OBS/JOIN_PLAN/PING
  and any old client): a 4-byte big-endian length, a JSON header of that
  length, then ``header["payload_len"]`` raw bytes.  The JSON header
  length is bounded by ``_MAX_HEADER`` (1 MiB), so its first length byte
  is always ``0x00`` on a well-formed stream.
* **binary frames** (the hot path): a fixed 22-byte header —
  magic + version + kind + op + flags + key-len + ext-len + seq + aux +
  payload-len — followed by the key (a path), an extension blob (the
  trace context rides here), and the payload.  The magic's first byte is
  ``0xF7``, which can never open a JSON frame, so a receiver needs only
  one byte to pick the codec.  No JSON is parsed or produced anywhere on
  a binary READ.

Because every frame self-describes, "negotiation" is implicit and
per-message: an old client speaks JSON and is answered in JSON; a new
client sends binary READs and JSON STATs over the same pooled socket and
each gets a same-codec reply.  ``seq`` is a transport-level correlation
id (:attr:`Message.seq`) echoed by the server, which is what makes
pipelining with out-of-order completion safe — it never appears in the
JSON header vocabulary.

Both codecs bound every variable-length field (``_MAX_HEADER``,
``_MAX_EXT``, ``_MAX_PAYLOAD``) before allocating, so a corrupt or
hostile length field raises :class:`ProtocolError` instead of driving
the receiver into a multi-gigabyte read.  Sends are vectored
(``sendmsg``): the payload travels as its own iovec straight from the
caller's buffer — header and payload are never concatenated into a
doubled-up intermediate bytes object.

Requests may additionally carry ``trace_id``/``span_id`` correlation
fields (injected by :func:`repro.obs.context.inject` on traced
operations); JSON framing treats them as opaque header data, and the
binary codec packs them into the header's extension field.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.context import SPAN_ID_FIELD, TRACE_ID_FIELD

__all__ = [
    "Message",
    "send_message",
    "recv_message",
    "send_binary_request",
    "encode_binary_request",
    "encode_binary_response_header",
    "encode_json_frame",
    "read_frame_async",
    "set_nodelay",
    "ProtocolError",
    "BIN_OPS",
    "BIN_MAGIC",
    "BIN_VERSION",
    "OP_READ",
    "OP_PING",
    "OP_STAT",
    "OP_PUT",
    "OP_JOIN_PLAN",
    "OP_TRANSFER",
    "OP_OBS",
]

OP_READ = "READ"
OP_PING = "PING"
OP_STAT = "STAT"
#: replica push: install payload bytes under a path (replication extension)
OP_PUT = "PUT"
#: announce an impending join's move plan to the joining node (rebalance)
OP_JOIN_PLAN = "JOIN_PLAN"
#: backfill one moved key into a joining node's bounded mover (rebalance)
OP_TRANSFER = "TRANSFER"
#: observability export: unified telemetry snapshot + recent spans/events
#: as a JSON payload (headers stay small; the data rides the binary lane)
OP_OBS = "OBS"

STATUS_OK = "OK"
STATUS_ERROR = "ERROR"

_LEN = struct.Struct(">I")
#: sanity bound on JSON header size — anything bigger is a corrupt stream
_MAX_HEADER = 1 << 20
#: hard bound on any payload, both codecs — a corrupt/hostile ``payload_len``
#: must fail the frame, not allocate gigabytes (256 MiB ≫ any cache entry)
_MAX_PAYLOAD = 1 << 28
#: bound on the binary extension blob (trace context today: 24 bytes)
_MAX_EXT = 1 << 12

# -- binary codec ------------------------------------------------------------------
#: first byte 0xF7 can never alias a JSON frame: a JSON length prefix is
#: bounded by ``_MAX_HEADER`` (1 MiB), so its first byte is always 0x00
BIN_MAGIC = b"\xf7\xc5"
BIN_VERSION = 1

#: magic(2) version(1) kind(1) op(1) flags(1) key_len(2) ext_len(2)
#: seq(4) aux(4) payload_len(4) — 22 bytes, all big-endian
_BIN_HDR = struct.Struct(">2sBBBBHHIII")

_KIND_REQUEST = 0
_KIND_OK = 1
_KIND_ERROR = 2

#: the binary op table: ops eligible for binary framing (the payload-bearing
#: hot/bulk lane).  Everything else — STAT, OBS, PING, JOIN_PLAN — is
#: control-plane and stays on JSON frames.  The RPC conformance checker
#: (``repro.analysis.rpccheck``) parses this table and cross-checks it
#: against senders and handler branches, so it cannot drift silently.
BIN_OPS = {
    OP_READ: 1,
    OP_PUT: 2,
    OP_TRANSFER: 3,
}
_BIN_OP_NAMES = {v: k for k, v in BIN_OPS.items()}

#: response flag bits
_FLAG_SOURCE_PFS = 0x01  # READ ok: bytes came from the PFS, not the cache
_FLAG_ACCEPTED = 0x02  # TRANSFER ok: the mover accepted the entry

#: error-code table for binary error responses (aux field)
_ERR_CODES = {"ENOENT": 1, "ENOSPC": 2}
_ERR_NAMES = {v: k for k, v in _ERR_CODES.items()}

#: trace context extension: 16 hex chars of trace_id + 8 of span_id
_TRACE_EXT_LEN = 24


class ProtocolError(RuntimeError):
    """Malformed frame on the wire."""


@dataclass
class Message:
    """One framed message: header + optional binary payload.

    ``seq`` is the transport-level pipelining correlation id: nonzero only
    on the binary wire, echoed verbatim by the server, never part of the
    header vocabulary (so the JSON wire contract is untouched by it).
    """

    header: dict = field(default_factory=dict)
    payload: bytes = b""
    seq: int = 0

    @property
    def op(self) -> Optional[str]:
        return self.header.get("op")

    @property
    def status(self) -> Optional[str]:
        return self.header.get("status")

    @property
    def ok(self) -> bool:
        return self.header.get("status") == STATUS_OK

    @staticmethod
    def request(op: str, **fields: Any) -> "Message":
        return Message(header={"op": op, **fields})

    @staticmethod
    def ok_response(payload: bytes = b"", **fields: Any) -> "Message":
        return Message(header={"status": STATUS_OK, **fields}, payload=payload)

    @staticmethod
    def error_response(reason: str, **fields: Any) -> "Message":
        return Message(header={"status": STATUS_ERROR, "reason": reason, **fields})


def set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle on a TCP socket (no-op for non-TCP, e.g. socketpairs).

    Small frames — PING, STAT, binary READ headers — otherwise eat
    Nagle + delayed-ACK latency on every request/response turn.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, ValueError):  # AF_UNIX socketpair, closed socket, ...
        pass


# -- low-level send/recv ------------------------------------------------------------
def _send_vectored(sock: socket.socket, *parts) -> None:
    """Send buffers scatter-gather, copy-free: each part is its own iovec.

    The header/payload concatenation the old codec did (``len + header +
    payload`` in one bytes object) doubled peak memory for every large
    response; here the payload buffer goes to the kernel as-is.
    """
    bufs = [memoryview(p) for p in parts if len(p)]
    if not bufs:
        return
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - platforms without sendmsg
        for b in bufs:
            sock.sendall(b)
        return
    while bufs:
        sent = sendmsg(bufs)
        while bufs and sent >= len(bufs[0]):
            sent -= len(bufs[0])
            bufs.pop(0)
        if bufs and sent:
            bufs[0] = bufs[0][sent:]


def _recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill ``view`` in place or raise ``ConnectionError`` on EOF."""
    while len(view):
        n = sock.recv_into(view)
        if n == 0:
            raise ConnectionError("peer closed mid-frame")
        view = view[n:]


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes into one buffer (no chunk-list joins)."""
    buf = bytearray(n)
    _recv_exact_into(sock, memoryview(buf))
    return bytes(buf)


# -- JSON codec ---------------------------------------------------------------------
def encode_json_frame(message: Message) -> bytes:
    """Length prefix + JSON header of one message (payload *not* included —
    callers send/write the payload buffer separately, uncopied)."""
    header = dict(message.header)
    header["payload_len"] = len(message.payload)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    if len(raw) > _MAX_HEADER:
        raise ProtocolError(f"header length {len(raw)} exceeds bound {_MAX_HEADER}")
    if len(message.payload) > _MAX_PAYLOAD:
        raise ProtocolError(f"payload length {len(message.payload)} exceeds bound {_MAX_PAYLOAD}")
    return _LEN.pack(len(raw)) + raw


def send_message(sock: socket.socket, message: Message) -> None:
    _send_vectored(sock, encode_json_frame(message), message.payload)


def _parse_json_header(raw: bytes) -> tuple[dict, int]:
    """Decode header bytes; validate and return ``(header, payload_len)``."""
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"header is {type(header).__name__}, not an object")
    plen = header.get("payload_len", 0)
    if not isinstance(plen, int) or isinstance(plen, bool) or plen < 0:
        raise ProtocolError(f"bad payload_len {plen!r}")
    if plen > _MAX_PAYLOAD:
        raise ProtocolError(f"payload length {plen} exceeds bound {_MAX_PAYLOAD}")
    return header, plen


def _check_json_hlen(hlen: int) -> None:
    if hlen > _MAX_HEADER:
        raise ProtocolError(f"header length {hlen} exceeds bound")


# -- binary codec -------------------------------------------------------------------
def _trace_ext(header: dict) -> bytes:
    """Pack the trace context (if any) into the header extension field."""
    tid = header.get(TRACE_ID_FIELD)
    sid = header.get(SPAN_ID_FIELD)
    if isinstance(tid, str) and isinstance(sid, str) and len(tid) == 16 and len(sid) == 8:
        try:
            return (tid + sid).encode("ascii")
        except UnicodeEncodeError:  # pragma: no cover - ids are hex
            return b""
    return b""


def _unpack_trace_ext(ext, header: dict) -> None:
    """Unpack a trace-context extension blob into header fields."""
    if len(ext) != _TRACE_EXT_LEN:
        return
    try:
        text = bytes(ext).decode("ascii")
    except UnicodeDecodeError:
        return
    header[TRACE_ID_FIELD] = text[:16]
    header[SPAN_ID_FIELD] = text[16:]


def encode_binary_request(message: Message, seq: int = 0) -> bytes:
    """Fixed header + key + ext of one request (payload sent separately)."""
    code = BIN_OPS.get(message.op or "")
    if code is None:
        raise ProtocolError(f"op {message.op!r} is not in the binary op table")
    key = str(message.header.get("path", "")).encode("utf-8")
    if len(key) > 0xFFFF:
        raise ProtocolError(f"key length {len(key)} exceeds field width")
    if len(message.payload) > _MAX_PAYLOAD:
        raise ProtocolError(f"payload length {len(message.payload)} exceeds bound {_MAX_PAYLOAD}")
    ext = _trace_ext(message.header)
    return (
        _BIN_HDR.pack(
            BIN_MAGIC,
            BIN_VERSION,
            _KIND_REQUEST,
            code,
            0,
            len(key),
            len(ext),
            seq & 0xFFFFFFFF,
            0,
            len(message.payload),
        )
        + key
        + ext
    )


def send_binary_request(sock: socket.socket, message: Message, seq: int = 0) -> None:
    _send_vectored(sock, encode_binary_request(message, seq), message.payload)


def encode_binary_response_header(
    op: str, message: Message, seq: int = 0, payload_len: Optional[int] = None
) -> bytes:
    """Fixed header (+ reason key on errors) of one response.

    ``payload_len`` overrides ``len(message.payload)`` for the zero-copy
    serve path, where the payload never enters Python (``sendfile`` moves
    it straight from the NVMe entry to the socket).
    """
    code = BIN_OPS.get(op)
    if code is None:
        raise ProtocolError(f"op {op!r} is not in the binary op table")
    h = message.header
    flags = 0
    aux = 0
    key = b""
    if h.get("status") == STATUS_OK:
        kind = _KIND_OK
        if op == OP_READ and h.get("source") == "pfs":
            flags |= _FLAG_SOURCE_PFS
        elif op == OP_TRANSFER:
            if h.get("accepted"):
                flags |= _FLAG_ACCEPTED
            aux = int(h.get("queue_len", 0)) & 0xFFFFFFFF
        elif op == OP_PUT:
            aux = int(h.get("stored", 0)) & 0xFFFFFFFF
    else:
        kind = _KIND_ERROR
        key = str(h.get("reason", "")).encode("utf-8")[:0xFFFF]
        aux = _ERR_CODES.get(h.get("code") or "", 0)
    plen = len(message.payload) if payload_len is None else payload_len
    if plen > _MAX_PAYLOAD:
        raise ProtocolError(f"payload length {plen} exceeds bound {_MAX_PAYLOAD}")
    return (
        _BIN_HDR.pack(
            BIN_MAGIC, BIN_VERSION, kind, code, flags, len(key), 0, seq & 0xFFFFFFFF, aux, plen
        )
        + key
    )


def _parse_bin_header(packed: bytes) -> tuple[int, str, int, int, int, int, int, int]:
    """Validate a packed 22-byte header; return
    ``(kind, op, flags, key_len, ext_len, seq, aux, payload_len)``."""
    magic, version, kind, code, flags, key_len, ext_len, seq, aux, plen = _BIN_HDR.unpack(packed)
    if magic != BIN_MAGIC:
        raise ProtocolError(f"bad binary magic {magic!r}")
    if version != BIN_VERSION:
        raise ProtocolError(f"unsupported binary version {version}")
    if kind not in (_KIND_REQUEST, _KIND_OK, _KIND_ERROR):
        raise ProtocolError(f"bad frame kind {kind}")
    op = _BIN_OP_NAMES.get(code)
    if op is None:
        raise ProtocolError(f"unknown binary op code {code}")
    if ext_len > _MAX_EXT:
        raise ProtocolError(f"ext length {ext_len} exceeds bound {_MAX_EXT}")
    if plen > _MAX_PAYLOAD:
        raise ProtocolError(f"payload length {plen} exceeds bound {_MAX_PAYLOAD}")
    return kind, op, flags, key_len, ext_len, seq, aux, plen


def _build_bin_message(
    kind: int, op: str, flags: int, seq: int, aux: int, body: memoryview,
    key_len: int, ext_len: int,
) -> Message:
    """Assemble a Message from a validated header + body buffer.

    ``body`` is sliced with memoryviews — key, ext, and payload are never
    re-joined or copied twice.
    """
    key = body[:key_len]
    ext = body[key_len : key_len + ext_len]
    payload = body[key_len + ext_len :]
    try:
        key_text = bytes(key).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"bad key encoding: {exc}") from exc
    if kind == _KIND_REQUEST:
        header: dict = {"op": op, "path": key_text}
        _unpack_trace_ext(ext, header)
        return Message(header=header, payload=bytes(payload), seq=seq)
    if kind == _KIND_OK:
        header = {"status": STATUS_OK}
        if op == OP_READ:
            header["source"] = "pfs" if flags & _FLAG_SOURCE_PFS else "cache"
        elif op == OP_TRANSFER:
            header["accepted"] = bool(flags & _FLAG_ACCEPTED)
            header["queue_len"] = aux
        elif op == OP_PUT:
            header["stored"] = aux
        return Message(header=header, payload=bytes(payload), seq=seq)
    header = {"status": STATUS_ERROR, "reason": key_text}
    code_name = _ERR_NAMES.get(aux)
    if code_name is not None:
        header["code"] = code_name
    return Message(header=header, payload=bytes(payload), seq=seq)


# -- blocking receive (client side, tests) ------------------------------------------
def recv_message(sock: socket.socket) -> Message:
    """Receive one frame, auto-detecting the codec from its first byte."""
    first = _recv_exact(sock, 1)
    if first[0] == BIN_MAGIC[0]:
        rest = _recv_exact(sock, _BIN_HDR.size - 1)
        kind, op, flags, key_len, ext_len, seq, aux, plen = _parse_bin_header(first + rest)
        body = bytearray(key_len + ext_len + plen)
        _recv_exact_into(sock, memoryview(body))
        return _build_bin_message(kind, op, flags, seq, aux, memoryview(body), key_len, ext_len)
    rest = _recv_exact(sock, _LEN.size - 1)
    (hlen,) = _LEN.unpack(first + rest)
    _check_json_hlen(hlen)
    header, plen = _parse_json_header(_recv_exact(sock, hlen))
    payload = _recv_exact(sock, plen) if plen else b""
    return Message(header=header, payload=payload)


# -- async receive (event-loop server core) -----------------------------------------
async def read_frame_async(reader) -> tuple[Message, str]:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns ``(message, wire)`` with ``wire`` in ``("binary", "json")`` so
    the server can answer in the codec the request arrived on.  Raises
    :class:`ProtocolError` on malformed frames and lets
    ``asyncio.IncompleteReadError`` (EOF mid-frame / clean close) surface
    to the caller.
    """
    first = await reader.readexactly(1)
    if first[0] == BIN_MAGIC[0]:
        rest = await reader.readexactly(_BIN_HDR.size - 1)
        kind, op, flags, key_len, ext_len, seq, aux, plen = _parse_bin_header(first + rest)
        body = await reader.readexactly(key_len + ext_len + plen)
        msg = _build_bin_message(
            kind, op, flags, seq, aux, memoryview(body), key_len, ext_len
        )
        return msg, "binary"
    rest = await reader.readexactly(_LEN.size - 1)
    (hlen,) = _LEN.unpack(first + rest)
    _check_json_hlen(hlen)
    header, plen = _parse_json_header(await reader.readexactly(hlen))
    payload = await reader.readexactly(plen) if plen else b""
    return Message(header=header, payload=payload), "json"
