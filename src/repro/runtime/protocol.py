"""Wire protocol for the threaded FT-Cache runtime.

Mercury-in-miniature over TCP: every message is a 4-byte big-endian
length, a JSON header of that length, then ``header["payload_len"]`` raw
bytes.  Requests carry an ``op`` (``READ`` / ``PING`` / ``STAT``);
responses carry ``status`` plus op-specific fields.  The framing is
symmetric, so one codec serves client and server.

Requests may additionally carry ``trace_id``/``span_id`` correlation
fields (injected by :func:`repro.obs.context.inject` on traced
operations); the framing and handlers treat them as opaque header data —
only the observability layer reads them back.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Message",
    "send_message",
    "recv_message",
    "ProtocolError",
    "OP_READ",
    "OP_PING",
    "OP_STAT",
    "OP_PUT",
    "OP_JOIN_PLAN",
    "OP_TRANSFER",
    "OP_OBS",
]

OP_READ = "READ"
OP_PING = "PING"
OP_STAT = "STAT"
#: replica push: install payload bytes under a path (replication extension)
OP_PUT = "PUT"
#: announce an impending join's move plan to the joining node (rebalance)
OP_JOIN_PLAN = "JOIN_PLAN"
#: backfill one moved key into a joining node's bounded mover (rebalance)
OP_TRANSFER = "TRANSFER"
#: observability export: unified telemetry snapshot + recent spans/events
#: as a JSON payload (headers stay small; the data rides the binary lane)
OP_OBS = "OBS"

STATUS_OK = "OK"
STATUS_ERROR = "ERROR"

_LEN = struct.Struct(">I")
#: sanity bound on header size — anything bigger is a corrupt stream
_MAX_HEADER = 1 << 20


class ProtocolError(RuntimeError):
    """Malformed frame on the wire."""


@dataclass
class Message:
    """One framed message: JSON header + optional binary payload."""

    header: dict = field(default_factory=dict)
    payload: bytes = b""

    @property
    def op(self) -> Optional[str]:
        return self.header.get("op")

    @property
    def status(self) -> Optional[str]:
        return self.header.get("status")

    @property
    def ok(self) -> bool:
        return self.header.get("status") == STATUS_OK

    @staticmethod
    def request(op: str, **fields: Any) -> "Message":
        return Message(header={"op": op, **fields})

    @staticmethod
    def ok_response(payload: bytes = b"", **fields: Any) -> "Message":
        return Message(header={"status": STATUS_OK, **fields}, payload=payload)

    @staticmethod
    def error_response(reason: str, **fields: Any) -> "Message":
        return Message(header={"status": STATUS_ERROR, "reason": reason, **fields})


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Message) -> None:
    header = dict(message.header)
    header["payload_len"] = len(message.payload)
    raw = json.dumps(header, separators=(",", ":")).encode("utf-8")
    sock.sendall(_LEN.pack(len(raw)) + raw + message.payload)


def recv_message(sock: socket.socket) -> Message:
    (hlen,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if hlen > _MAX_HEADER:
        raise ProtocolError(f"header length {hlen} exceeds bound")
    try:
        header = json.loads(_recv_exact(sock, hlen).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad header: {exc}") from exc
    plen = header.get("payload_len", 0)
    if not isinstance(plen, int) or plen < 0:
        raise ProtocolError(f"bad payload_len {plen!r}")
    payload = _recv_exact(sock, plen) if plen else b""
    return Message(header=header, payload=payload)
