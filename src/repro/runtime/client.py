"""Threaded FT-Cache client: real sockets, the *same* fault-tolerance core.

This client and the simulated one (:mod:`repro.hvac.client`) share the
placement policies, fault policies, and failure detector from
:mod:`repro.core` — the detection/re-routing logic is written once and
exercised in both worlds.  The flow is the paper's Figure 3:

1. hash the path → owning server (or PFS, per policy);
2. RPC with a socket timeout of ``ttl``;
3. timeout/refused connection feeds the detector; at threshold the node
   is declared failed, the policy reacts (abort / redirect / re-ring);
4. unserved reads re-route and retry.

Detector evidence rules (what counts toward declaration):

* a **socket timeout** on any connection — the node accepted bytes and
  went silent; that is exactly the hang the TTL exists to catch;
* a **refused/reset on a fresh connection** — nothing is listening;
* a reset/EOF on a **pooled, previously-idle** connection is *not*
  evidence by itself: a server restart (or idle-connection reap) kills
  established sockets without the node being unhealthy *now*.  The
  client transparently reconnects and retries once; only the fresh
  attempt's outcome feeds the detector.

Thread safety: a client may be shared by loader workers; the connection
pool is per-thread, and policy/detector mutations take a lock.  Pool
entries carry a per-node **epoch**: :meth:`admit_node` (and a failure
declaration) bump the node's epoch, so every thread's pooled socket to a
restarted node is lazily discarded instead of being replayed into the
detector as false evidence.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager
from typing import Callable, Hashable, Optional

from ..analysis import lockwitness
from ..core.failure_detector import TimeoutFailureDetector
from ..core.fault_policy import FaultPolicy
from ..core.replication import ReplicatedRecache
from ..obs import Tracer, get_event_log, inject, node_logger
from .protocol import (
    BIN_OPS,
    OP_JOIN_PLAN,
    OP_OBS,
    OP_PING,
    OP_PUT,
    OP_READ,
    OP_STAT,
    OP_TRANSFER,
    Message,
    ProtocolError,
    recv_message,
    send_binary_request,
    send_message,
    set_nodelay,
)
from .storage import PFSDir

__all__ = ["FTCacheClient", "ReadError", "CLIENT_COUNTER_KEYS"]

NodeId = Hashable

#: every monotone client-side counter, in one place so ``stats`` snapshots,
#: bench JSON, and the CNT001 registry-drift lint can never diverge from
#: the counters the client actually maintains
CLIENT_COUNTER_KEYS = (
    "server_cache_reads",
    "server_pfs_reads",
    "pfs_direct_reads",
    "timeouts",
    "declared",
    "failovers",
    "replica_pushes",
    "writes",
    "cache_installs",
    "reconnects",
    "join_plans_sent",
    "transfers_sent",
    "pipelined_reads",
)


class ReadError(RuntimeError):
    """A read failed for a non-failure reason (e.g. missing file)."""


class _PooledConn:
    """One pooled socket plus the node epoch/address it was created for."""

    __slots__ = ("sock", "epoch", "addr")

    def __init__(self, sock: socket.socket, epoch: int, addr: tuple[str, int]):
        self.sock = sock
        self.epoch = epoch
        self.addr = addr


class _ConnectionPool(threading.local):
    """Per-thread socket cache keyed by node id."""

    def __init__(self) -> None:
        self.conns: dict[NodeId, _PooledConn] = {}


class _OpContext(threading.local):
    """Per-thread state of the top-level operation in flight.

    ``span`` is the active root span (RPC spans parent to it and inject
    its trace context on the wire); ``node_id``/``reconnects`` accumulate
    attribution for the ``on_op`` hook: which node finally served the
    request and how many transparent pooled-socket reconnects it took.
    """

    def __init__(self) -> None:
        self.span = None
        self.node_id: Optional[NodeId] = None
        self.reconnects = 0


class FTCacheClient:
    """Fault-tolerant cache client over TCP."""

    def __init__(
        self,
        servers: dict,
        policy: FaultPolicy,
        pfs: PFSDir,
        ttl: float = 1.0,
        timeout_threshold: int = 3,
        max_reroute_rounds: int = 32,
        on_op: Optional[Callable[[str, str, float, str, Optional[NodeId], int], None]] = None,
        tracer: Optional[Tracer] = None,
        wire: str = "binary",
    ):
        """``servers`` maps node id → ``(host, port)``.

        ``wire`` selects the request codec for payload-bearing ops
        (READ/PUT/TRANSFER): ``"binary"`` (the default) frames them with
        the fixed binary header and unlocks pipelined :meth:`read_many`;
        ``"json"`` keeps every request on the legacy JSON frames.
        Control-plane ops (PING/STAT/OBS/JOIN_PLAN) always use JSON, and
        the server answers each request in the codec it arrived on — the
        two wire modes interoperate on one connection.

        ``on_op(op, path, seconds, outcome, node_id, reconnects)`` — if
        given — is invoked after every completed top-level operation with
        its wall-clock duration: ``op`` is ``"read"``/``"write"``;
        ``outcome`` is the serving source (``"cache"``/``"pfs"``/
        ``"pfs_direct"``), ``"ok"`` for writes, or ``"error"`` when the
        call raised; ``node_id`` is the node that answered (None when the
        bytes came straight from the PFS); ``reconnects`` counts the
        transparent pooled-socket reconnects the operation needed.  The
        load generator uses this to time requests end-to-end, including
        detection stalls and re-routes.  The callback runs on the calling
        thread and must be cheap.

        ``tracer`` — when given — roots a distributed trace per top-level
        operation (subject to the tracer's sample rate) and injects its
        context into every RPC header, so servers continue the trace.
        Without one, tracing is off and costs nothing.
        """
        if wire not in ("binary", "json"):
            raise ValueError(f"wire must be 'binary' or 'json', got {wire!r}")
        self.wire = wire
        self.servers = dict(servers)
        self.policy = policy
        self.pfs = pfs
        self.detector = TimeoutFailureDetector(ttl=ttl, threshold=timeout_threshold)
        self.max_reroute_rounds = max_reroute_rounds
        self.on_op = on_op
        self.tracer = tracer if tracer is not None else Tracer(node="client", enabled=False)
        self.log = node_logger(__name__, getattr(self.tracer, "node", "client"))
        self._op_ctx = _OpContext()
        self._pool = _ConnectionPool()
        #: every live pooled socket, across *all* threads — the pool is
        #: thread-local, so close() could otherwise never reach sockets
        #: owned by worker threads that have already exited
        self._live_socks: set = set()
        self._socks_lock = lockwitness.named_lock("client-socks")
        self._policy_lock = lockwitness.named_lock("client-policy")
        #: node → connection epoch; bumped on admit_node and on failure
        #: declaration so every thread's pool drops stale sockets lazily
        self._node_epoch: dict[NodeId, int] = {}
        self._epoch_lock = lockwitness.named_lock("client-epoch")
        self._counts = {k: 0 for k in CLIENT_COUNTER_KEYS}
        self._stats_lock = lockwitness.named_lock("client-stats")

    @property
    def stats(self) -> dict:
        """Counter snapshot.  ``cache_reads`` (the pre-split name for any
        successful server-side read, whatever its source) is kept as a
        computed alias of ``server_cache_reads + server_pfs_reads`` so
        existing bench JSON and dashboards keep working."""
        with self._stats_lock:
            out = dict(self._counts)
        out["cache_reads"] = out["server_cache_reads"] + out["server_pfs_reads"]
        return out

    # -- public API --------------------------------------------------------------
    def read(self, path: str) -> bytes:
        """Read one file through the cache layer (blocking, thread-safe).

        Under a :class:`~repro.core.replication.ReplicatedRecache` policy a
        timed-out primary fails over to the next surviving replica *within
        the same read* (the detector still counts the timeout toward
        declaration), and any bytes that had to come from the PFS are
        pushed to the remaining replicas in the background.
        """
        t0 = time.perf_counter()
        octx = self._op_ctx
        octx.node_id, octx.reconnects = None, 0
        span = self.tracer.start_trace("client.read", path=path)
        octx.span = span
        try:
            data, source = self._read_routed(path)
        except Exception:
            octx.span = None
            span.end(status="error")
            self._notify("read", path, time.perf_counter() - t0, "error")
            raise
        octx.span = None
        span.set(source=source, node_id=octx.node_id).end()
        self._notify("read", path, time.perf_counter() - t0, source)
        return data

    def _read_routed(self, path: str) -> tuple[bytes, str]:
        for _ in range(self.max_reroute_rounds):
            candidates = self._candidates(path)
            if candidates is None:  # policy says PFS
                self._bump(pfs_direct_reads=1)
                return self.pfs.read(path), "pfs_direct"
            for i, node in enumerate(candidates):
                if i > 0:
                    self._bump(failovers=1)
                outcome = self._rpc_read(node, path)
                if outcome is not None:
                    data, source = outcome
                    if source == "pfs":
                        self._push_replicas(path, data, served_by=node)
                    return data, source
                # timeout / refused: feed the detector and maybe declare.
                self._bump(timeouts=1)
                if self.detector.record_timeout(node):
                    self._bump(declared=1)
                    self._declare_failed(node)
        raise ReadError(f"could not read {path!r} after {self.max_reroute_rounds} attempts")

    def write(self, path: str, data: bytes) -> None:
        """Write one file: durable to the PFS, write-through to the cache.

        The PFS is the source of truth, so the durable write can never be
        lost to a node failure; the cache install on the owning server is
        best-effort (a timeout feeds the failure detector exactly like a
        read, so sustained write traffic also detects dead nodes, but the
        write itself still succeeds — the next read misses to the PFS).
        """
        t0 = time.perf_counter()
        octx = self._op_ctx
        octx.node_id, octx.reconnects = None, 0
        span = self.tracer.start_trace("client.write", path=path)
        octx.span = span
        try:
            with self.tracer.start_span("client.pfs_write", span, path=path):
                self.pfs.write(path, data)
            self._bump(writes=1)
            self._install_in_cache(path, data)
        except Exception:
            octx.span = None
            span.end(status="error")
            self._notify("write", path, time.perf_counter() - t0, "error")
            raise
        octx.span = None
        span.set(node_id=octx.node_id).end()
        self._notify("write", path, time.perf_counter() - t0, "ok")

    def _install_in_cache(self, path: str, data: bytes) -> None:
        """Best-effort synchronous OP_PUT of fresh bytes to the owner node."""
        candidates = self._candidates(path)
        if not candidates:
            return
        node = candidates[0]
        msg = Message.request(OP_PUT, path=path)
        msg.payload = data
        resp = self._rpc(node, msg)
        if resp is None:
            self._bump(timeouts=1)
            if self.detector.record_timeout(node):
                self._bump(declared=1)
                self._declare_failed(node)
            return
        if resp.ok:
            self.detector.record_success(node)
            self._bump(cache_installs=1)

    def _candidates(self, path: str) -> Optional[list]:
        """Ordered server targets for this read, or None for direct PFS."""
        with self._policy_lock:
            if isinstance(self.policy, ReplicatedRecache):
                return self.policy.read_candidates(path)
            target = self.policy.target_for(path)
        if target.kind == "pfs":
            return None
        return [target.node]

    def _push_replicas(self, path: str, data: bytes, served_by) -> None:
        """Background write-through of a PFS-sourced read to the other replicas."""
        if not isinstance(self.policy, ReplicatedRecache) or self.policy.replicas < 2:
            return
        with self._policy_lock:
            targets = [
                n
                for n in set(self.policy.replica_targets(path))
                if n != served_by and n not in self.policy.failed_nodes
            ]
        if not targets:
            return

        def _push() -> None:
            for node in targets:
                try:
                    with socket.create_connection(self._addr(node), timeout=self.detector.ttl) as sock:
                        sock.settimeout(self.detector.ttl)
                        set_nodelay(sock)
                        msg = Message.request(OP_PUT, path=path)
                        msg.payload = data
                        send_message(sock, msg)
                        resp = recv_message(sock)
                        if resp.ok:
                            self._bump(replica_pushes=1)
                except OSError:
                    continue

        threading.Thread(target=_push, name="replica-push", daemon=True).start()

    def read_many(self, paths: list[str]) -> list[bytes]:
        """Read a batch of files; order of results matches ``paths``.

        On the binary wire, paths owned by the same node are **pipelined**
        over that node's pooled socket: every READ goes out back to back
        with a per-request ``seq``, and responses — which the server may
        complete out of order — are correlated by the echoed seq.  One
        socket round of framing latency is paid per *batch*, not per key.

        Anything that can't be pipelined falls back to the sequential
        :meth:`read` path with its full detection/re-route semantics:
        PFS-direct policy routes, replicated multi-candidate reads, the
        JSON wire, and any batch whose socket times out or desyncs
        mid-flight (the socket is retired first — a half-drained pipeline
        must never be reused).
        """
        if self.wire != "binary" or len(paths) < 2:
            return [self.read(p) for p in paths]
        results: dict[int, bytes] = {}
        groups: dict[NodeId, list[tuple[int, str]]] = {}
        sequential: list[int] = []
        for i, path in enumerate(paths):
            candidates = self._candidates(path)
            if candidates is not None and len(candidates) == 1:
                groups.setdefault(candidates[0], []).append((i, path))
            else:
                sequential.append(i)
        for node, batch in groups.items():
            if not self._read_batch(node, batch, results):
                sequential.extend(i for i, _ in batch)
        for i in sorted(sequential):
            if i not in results:
                results[i] = self.read(paths[i])
        return [results[i] for i in range(len(paths))]

    def _read_batch(
        self, node: NodeId, batch: list[tuple[int, str]], results: dict[int, bytes]
    ) -> bool:
        """Pipeline one node's batch; False → caller re-reads sequentially.

        All requests are sent before any response is read, and all
        responses are drained before any is judged — raising mid-pipeline
        would strand unread frames on a pooled socket.
        """
        octx = self._op_ctx
        octx.node_id, octx.reconnects = node, 0
        t0 = time.perf_counter()
        span = self.tracer.start_trace("client.read_many", node_id=node, batch=len(batch))
        try:
            try:
                sock, _ = self._checkout(node)
                for seq, (_, path) in enumerate(batch, start=1):
                    msg = Message.request(OP_READ, path=path)
                    if span.ctx is not None:
                        inject(msg.header, span.ctx)
                    send_binary_request(sock, msg, seq=seq)
                replies: dict[int, Message] = {}
                for _ in batch:
                    resp = recv_message(sock)
                    replies[resp.seq] = resp
            except (socket.timeout, TimeoutError, ConnectionError, OSError, ProtocolError):
                # Transport wobble mid-batch: the socket may hold half a
                # pipeline, so retire it, and let the sequential path redo
                # the batch (feeding the detector per-attempt as usual).
                self._drop_conn(node)
                span.end(status="fallback")
                return False
            self.detector.record_success(node)
            for seq, (i, path) in enumerate(batch, start=1):
                resp = replies.get(seq)
                if resp is None:
                    continue  # unmatched seq: sequential fallback re-reads it
                if not resp.ok:
                    if resp.header.get("code") == "ENOENT":
                        raise ReadError(f"no such file: {path}")
                    raise ReadError(f"server error for {path!r}: {resp.header.get('reason')}")
                source = resp.header.get("source", "cache")
                if source == "pfs":
                    self._bump(server_pfs_reads=1, pipelined_reads=1)
                    self._push_replicas(path, resp.payload, served_by=node)
                else:
                    self._bump(server_cache_reads=1, pipelined_reads=1)
                results[i] = resp.payload
                self._notify("read", path, time.perf_counter() - t0, source)
        except Exception:
            span.end(status="error")
            raise
        span.end()
        return True

    def admit_node(self, node: NodeId, addr: tuple, weight: Optional[float] = None) -> None:
        """(Re-)admit a server: elastic scale-up / rejoin after repair.

        Updates the address book, bumps the node's connection epoch (every
        thread's pooled socket to the old instance is lazily discarded —
        a restarted node starts with a clean slate instead of its first
        request landing on a dead socket), clears the node's detector
        history, and re-adds it to the placement — keys that lived there
        before the failure flow back, and (for a rejoining node) its
        cache directory still holds them, so the rejoin is warm.

        ``weight`` is the node's relative capacity, honoured by
        capacity-aware placements (a weighted ring gives the node a
        ``weight/total_weight`` share) and ignored by the rest.
        """
        self.servers[node] = tuple(addr)
        get_event_log().emit("node_admitted", node=node, weight=weight)
        self.log.info("admitted node %s at %s", node, tuple(addr))
        self._bump_epoch(node)
        self._drop_conn(node)
        self.detector.reset(node)
        with self._policy_lock:
            self.policy.on_node_joined(node, weight=weight)

    def register_address(self, node: NodeId, addr: tuple) -> None:
        """Address-book-only registration: explicit-node RPCs (``ping``,
        ``transfer``, ``join_plan``, ``read_from``) can reach ``node``, but
        no placement learns of it — routing is untouched.  This is how the
        join coordinator talks to a node *before* cutover makes it an
        owner of anything.
        """
        self.servers[node] = tuple(addr)

    def read_from(self, node: NodeId, path: str) -> Optional[tuple[bytes, str]]:
        """One explicit-node READ: ``(data, source)``, or None on
        timeout/refusal (raises :class:`ReadError` for a missing file).

        Bypasses placement entirely — the rebalance coordinator uses this
        to pull moved keys from their *current* owner regardless of what
        any policy would route.  Outcomes deliberately do not feed the
        failure detector: warmup traffic must not declare nodes.
        """
        return self._rpc_read(node, path)

    def transfer(self, node: NodeId, path: str, data: bytes) -> Optional[dict]:
        """Push one moved key into ``node``'s bounded data mover.

        Returns ``{"accepted": bool, "queue_len": int}`` from the node's
        reply, or None on timeout/refusal.  ``accepted=False`` means the
        mover is closed (node shutting down); ``queue_len`` lets the
        caller throttle against the bound instead of overrunning it.
        """
        msg = Message.request(OP_TRANSFER, path=path)
        msg.payload = data
        resp = self._rpc(node, msg)
        if resp is None or not resp.ok:
            return None
        self._bump(transfers_sent=1)
        return {
            "accepted": bool(resp.header.get("accepted", False)),
            "queue_len": int(resp.header.get("queue_len", 0)),
        }

    def join_plan(
        self, node: NodeId, planned_keys: int, planned_bytes: int, epoch: int
    ) -> bool:
        """Announce a move plan to the joining ``node``; True iff it
        acknowledged (doubles as the pre-warmup liveness check)."""
        resp = self._rpc(
            node,
            Message.request(
                OP_JOIN_PLAN,
                planned_keys=int(planned_keys),
                planned_bytes=int(planned_bytes),
                epoch=int(epoch),
            ),
        )
        if resp is None or not resp.ok:
            return False
        self._bump(join_plans_sent=1)
        return True

    @contextmanager
    def trace_op(self, name: str, **attrs):
        """Root a trace around a block of explicit-node RPCs.

        The join coordinator wraps each warmup key in one of these so the
        ``read_from`` + ``transfer`` pair (and their server-side stages)
        stitch into a single cross-node trace.  Nesting restores the
        previous active span on exit.
        """
        span = self.tracer.start_trace(name, **attrs)
        octx = self._op_ctx
        prev = octx.span
        octx.span = span
        try:
            yield span
        except Exception:
            span.end(status="error")
            raise
        finally:
            octx.span = prev
            span.end()

    def obs_snapshot(self, node: NodeId, spans_limit: int = 512,
                     events_limit: int = 512) -> Optional[dict]:
        """One node's observability export (``OP_OBS``): the unified
        telemetry snapshot plus its recent spans and events, or None on
        timeout/refusal.  Outcomes do not feed the failure detector —
        monitoring must not declare nodes."""
        resp = self._rpc(
            node,
            Message.request(OP_OBS, spans_limit=int(spans_limit),
                            events_limit=int(events_limit)),
        )
        if resp is None or not resp.ok:
            return None
        try:
            return json.loads(resp.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def server_stat(self, node: NodeId) -> Optional[dict]:
        """STAT one server (None on timeout); for tests and monitoring."""
        try:
            resp = self._rpc(node, Message.request(OP_STAT))
        except OSError:  # pragma: no cover - unexpected transport error
            return None
        if resp is None or not resp.ok:
            return None
        return dict(resp.header)

    def ping(self, node: NodeId) -> bool:
        """Liveness probe: one PING round-trip against ``node``.

        Outcomes feed the failure detector exactly like a data request —
        a timeout counts toward the declaration threshold, an answer
        clears the node's strike history.  True only when the node
        answered with its *own* identity: a listener that replies as a
        different node (port reused by another instance after a crash)
        is not alive for our purposes.
        """
        resp = self._rpc(node, Message.request(OP_PING))
        if resp is None:
            self._bump(timeouts=1)
            if self.detector.record_timeout(node):
                self._bump(declared=1)
                self._declare_failed(node)
            return False
        if not resp.ok:
            return False
        self.detector.record_success(node)
        return resp.header.get("node_id") == node

    # -- internals -----------------------------------------------------------------
    def _notify(self, op: str, path: str, seconds: float, outcome: str) -> None:
        if self.on_op is not None:
            octx = self._op_ctx
            self.on_op(op, path, seconds, outcome, octx.node_id, octx.reconnects)

    def _bump(self, **deltas: int) -> None:
        with self._stats_lock:
            for k, d in deltas.items():
                self._counts[k] += d

    def _addr(self, node: NodeId) -> tuple[str, int]:
        try:
            return self.servers[node]
        except KeyError:
            raise ReadError(f"unknown server node {node!r}") from None

    def _epoch(self, node: NodeId) -> int:
        with self._epoch_lock:
            return self._node_epoch.get(node, 0)

    def _bump_epoch(self, node: NodeId) -> None:
        with self._epoch_lock:
            self._node_epoch[node] = self._node_epoch.get(node, 0) + 1

    def _declare_failed(self, node: NodeId) -> None:
        """Detector reached threshold: retire the node's sockets everywhere
        and let the fault policy react (NoFT raises out of here)."""
        get_event_log().emit("death_declared", node=node)
        self.log.warning("declared node %s failed", node)
        self._bump_epoch(node)
        self._drop_conn(node)
        with self._policy_lock:
            self.policy.on_node_failed(node)

    def _checkout(self, node: NodeId) -> tuple[socket.socket, bool]:
        """This thread's socket to ``node`` plus whether it is fresh.

        A pooled socket from an older epoch (node restarted/redeclared) or
        a changed address is discarded, never reused.
        """
        addr = self._addr(node)
        epoch = self._epoch(node)
        pooled = self._pool.conns.get(node)
        if pooled is not None:
            if pooled.epoch == epoch and pooled.addr == addr:
                return pooled.sock, False
            self._pool.conns.pop(node, None)
            self._discard_sock(pooled.sock)
        sock = socket.create_connection(addr, timeout=self.detector.ttl)
        sock.settimeout(self.detector.ttl)
        set_nodelay(sock)
        with self._socks_lock:
            self._live_socks.add(sock)
        self._pool.conns[node] = _PooledConn(sock, epoch, addr)
        return sock, True

    def _discard_sock(self, sock: socket.socket) -> None:
        with self._socks_lock:
            self._live_socks.discard(sock)
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass

    def _drop_conn(self, node: NodeId) -> None:
        pooled = self._pool.conns.pop(node, None)
        if pooled is not None:
            self._discard_sock(pooled.sock)

    def _rpc(self, node: NodeId, msg: Message) -> Optional[Message]:
        """One request/response against ``node``; None means *detector
        evidence* (timeout, or connection failure on a fresh socket).

        A reset/EOF on a pooled socket gets one transparent
        reconnect-and-retry first — a restarted server kills established
        connections without being unhealthy now, so only the fresh
        attempt's outcome may count against the node.
        """
        octx = self._op_ctx
        span = self.tracer.start_span(
            f"client.rpc_{(msg.op or 'op').lower()}", octx.span, node_id=node
        )
        if span.ctx is not None:
            inject(msg.header, span.ctx)
        for _ in range(2):
            fresh = True
            try:
                sock, fresh = self._checkout(node)
                if self.wire == "binary" and msg.op in BIN_OPS:
                    send_binary_request(sock, msg)
                else:
                    send_message(sock, msg)
                resp = recv_message(sock)
                octx.node_id = node
                span.end()
                return resp
            except (socket.timeout, TimeoutError):
                # The node accepted the connection and went silent: the
                # very hang the TTL exists to catch.  Always evidence.
                self._drop_conn(node)
                span.end(status="timeout")
                return None
            except (ConnectionError, OSError):
                self._drop_conn(node)
                if fresh:
                    # Nothing listening / reset on a brand-new socket.
                    span.end(status="conn_error")
                    return None
                self._bump(reconnects=1)  # stale pooled socket: retry once
                octx.reconnects += 1
        span.end(status="error")
        return None  # pragma: no cover - loop always returns

    def _rpc_read(self, node: NodeId, path: str) -> Optional[tuple[bytes, str]]:
        """One READ attempt: ``(data, source)``, or None on timeout/refusal."""
        resp = self._rpc(node, Message.request(OP_READ, path=path))
        if resp is None:
            return None
        if resp.ok:
            self.detector.record_success(node)
            source = resp.header.get("source", "cache")
            if source == "pfs":
                self._bump(server_pfs_reads=1)
            else:
                self._bump(server_cache_reads=1)
            return resp.payload, source
        if resp.header.get("code") == "ENOENT":
            raise ReadError(f"no such file: {path}")
        raise ReadError(f"server error for {path!r}: {resp.header.get('reason')}")

    def close(self) -> None:
        """Close every pooled socket this client ever opened, including
        those pooled by worker threads that are long gone."""
        self._pool.conns.clear()
        with self._socks_lock:
            socks, self._live_socks = list(self._live_socks), set()
        for sock in socks:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
