"""Event-loop FT-Cache server: one per (simulated) node, real sockets.

Serves the same protocol as the paper's HVAC server daemon: a READ either
hits the node-local cache directory or falls through to the shared PFS
directory, serves the bytes, and hands them to a background *data mover*
for recaching — the Sec IV-B retrieve → serve → cache sequence, now with
actual files over an asyncio data plane.

The core is **one event loop per server**, not a thread per connection:
thousands of concurrent sockets multiplex onto a single selector thread,
framing and the binary READ fast path run on the loop, and anything that
may block (PFS reads, NVMe installs, STAT aggregation) is handed to a
small bounded dispatch executor.  Binary-framed requests carry a ``seq``
correlation id and are **pipelined** — each becomes its own task, and
responses complete out of order under a per-connection write lock — while
JSON frames keep the legacy strictly-in-order, one-at-a-time contract so
old clients observe exactly the pre-rewrite behaviour.  A binary READ
that hits the cache is served **zero-copy**: the reply header is written
from the loop and the entry's bytes move kernel-side via
``loop.sendfile`` (``os.sendfile``) straight from the NVMe file to the
socket, never entering Python.

The data mover is a **bounded worker pool** (:class:`DataMoverPool`), not
a thread per miss: a miss storm (cold cache, failover re-homing a node's
keys, chaos-monkey churn) enqueues recache work onto a fixed number of
workers behind a bounded queue.  Duplicate keys already queued or being
written are coalesced, and when the queue is full the *oldest* pending
entry is dropped (and counted) — recaching is an optimisation, so losing
one write-through only costs a future PFS read, never correctness.

Failure injection mirrors a drained node: :meth:`FTCacheServer.kill` with
``mode="hang"`` keeps the port open but never answers (clients see socket
timeouts, exactly the paper's detection path); ``mode="drop"`` closes the
listener outright (connection refused).
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from functools import partial

from ..analysis import lockwitness
from ..obs import NULL_SPAN, Telemetry, Tracer, extract, get_event_log, node_logger
from ..obs.context import TraceContext
from .protocol import (
    OP_JOIN_PLAN,
    OP_OBS,
    OP_PING,
    OP_PUT,
    OP_READ,
    OP_STAT,
    OP_TRANSFER,
    Message,
    ProtocolError,
    encode_binary_response_header,
    encode_json_frame,
    read_frame_async,
    set_nodelay,
)
from .storage import NVMeDir, PFSDir

__all__ = ["FTCacheServer", "ServerStats", "DataMoverPool"]

#: max binary requests in flight per connection before the read loop
#: stops pulling frames (pipelining backpressure, not a hard error)
_PIPELINE_DEPTH = 64

#: every monotone per-server counter, in one place so cluster aggregation,
#: STAT responses, and snapshot dictionaries can never drift apart
STAT_COUNTER_KEYS = (
    "hits",
    "misses",
    "pfs_reads",
    "recached",
    "errors",
    "race_fallthroughs",
    "mover_enqueued",
    "mover_coalesced",
    "mover_dropped",
    "join_plans",
    "transfers_in",
    "transfer_bytes",
    "binary_reqs",
    "json_reqs",
    "sendfile_serves",
)


@dataclass
class ServerStats:
    hits: int = 0
    misses: int = 0
    pfs_reads: int = 0
    recached: int = 0
    errors: int = 0
    #: reads that saw ``contains()`` true but lost the race to an eviction
    #: and fell through to the PFS (previously indistinguishable from a miss)
    race_fallthroughs: int = 0
    #: data-mover queue accounting (see DataMoverPool)
    mover_enqueued: int = 0
    mover_coalesced: int = 0
    mover_dropped: int = 0
    #: elastic-join warmup accounting (repro.rebalance): plans announced
    #: to this node, transfer requests its mover accepted, and their bytes
    join_plans: int = 0
    transfers_in: int = 0
    transfer_bytes: int = 0
    #: wire-codec accounting: requests decoded per codec, and cache hits
    #: served kernel-side via the zero-copy sendfile fast path
    binary_reqs: int = 0
    json_reqs: int = 0
    sendfile_serves: int = 0
    _lock: threading.Lock = field(
        default_factory=partial(lockwitness.named_lock, "server-stats"), repr=False
    )

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, d in deltas.items():
                setattr(self, name, getattr(self, name) + d)

    def counters(self) -> dict:
        """Point-in-time copy of every counter (one lock acquisition)."""
        with self._lock:
            return {k: getattr(self, k) for k in STAT_COUNTER_KEYS}


class DataMoverPool:
    """Bounded worker pool for write-through recaching.

    ``submit(path, data)`` enqueues one recache; a fixed set of worker
    threads drains the queue into the cache directory.  Three policies
    keep a miss storm from melting the node:

    * **bounded queue** — at most ``queue_depth`` pending entries;
    * **coalescing** — a key already queued or currently being written is
      not enqueued again (the bytes are identical: both came from the
      PFS), counted as ``mover_coalesced``;
    * **drop-oldest overflow** — a full queue drops its *oldest* pending
      entry to admit the new one (recency wins: the new key was just
      requested), counted as ``mover_dropped``.

    :meth:`close` performs a graceful drain: no new work is accepted,
    workers finish whatever is queued, then exit.
    """

    def __init__(
        self,
        nvme: NVMeDir,
        stats: ServerStats,
        node_id: int,
        workers: int = 2,
        queue_depth: int = 64,
        tracer: Optional[Tracer] = None,
        events=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.nvme = nvme
        self.stats = stats
        self.node_id = node_id
        self.workers = workers
        self.queue_depth = queue_depth
        self.tracer = tracer if tracer is not None else Tracer(node=node_id, enabled=False)
        self.events = events if events is not None else get_event_log()
        self._cond = lockwitness.named_condition("mover-cond")
        #: path → (bytes, queue-wait span): the span starts at submit and
        #: ends at dequeue, so its duration *is* the queue wait
        self._queue: "OrderedDict[str, tuple]" = OrderedDict()
        self._inflight: set[str] = set()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"data-mover-{node_id}-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- producer side ---------------------------------------------------------------
    def submit(self, path: str, data: bytes, ctx: Optional[TraceContext] = None) -> bool:
        """Enqueue one recache; False only after :meth:`close`.

        ``ctx`` is the submitting request's trace context; when present,
        the queue wait and the eventual NVMe write become spans of that
        trace, so a traced READ shows its asynchronous recache tail.
        """
        dropped_span = None
        with self._cond:
            if self._closed:
                return False
            if path in self._queue or path in self._inflight:
                self.stats.bump(mover_coalesced=1)
                return True
            if len(self._queue) >= self.queue_depth:
                _, (_, dropped_span) = self._queue.popitem(last=False)
                self.stats.bump(mover_dropped=1)
            qspan = self.tracer.start_span("mover.queue_wait", ctx, path=path)
            self._queue[path] = (data, qspan)
            self.stats.bump(mover_enqueued=1)
            self._cond.notify()
        if dropped_span is not None:
            dropped_span.end(status="dropped")
        return True

    # -- worker side -----------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:  # closed and drained
                    return
                path, (data, qspan) = self._queue.popitem(last=False)
                self._inflight.add(path)
            qspan.end()
            self.events.emit("recache_begin", node=self.node_id, path=path, nbytes=len(data))
            wspan = self.tracer.start_span("mover.nvme_write", qspan, path=path)
            ok = True
            try:
                try:
                    self.nvme.write(path, data)
                    self.stats.bump(recached=1)
                except OSError:
                    ok = False  # cache full: serveable but not cacheable
            finally:
                with self._cond:
                    self._inflight.discard(path)
            wspan.end(status="ok" if ok else "error")
            self.events.emit("recache_end", node=self.node_id, path=path, ok=ok)

    # -- introspection / lifecycle -----------------------------------------------------
    @property
    def queue_len(self) -> int:
        with self._cond:
            return len(self._queue)

    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def close(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work; drain (or discard) the queue; join workers."""
        discarded = []
        with self._cond:
            self._closed = True
            if not drain:
                discarded = [span for _, span in self._queue.values()]
                self._queue.clear()
            self._cond.notify_all()
        for span in discarded:
            span.end(status="dropped")
        deadline = timeout
        for t in self._threads:
            t.join(timeout=max(0.1, deadline / max(1, len(self._threads))))


class FTCacheServer:
    """One node's cache daemon: an asyncio event loop over a real TCP socket.

    The listening socket is bound synchronously in ``__init__`` (so
    :attr:`address` is valid before :meth:`start`); :meth:`start` spawns
    one thread running the event loop, which accepts connections, frames
    requests (binary or JSON, auto-detected per message), and either
    serves a binary READ cache hit inline via ``loop.sendfile`` or hands
    the request to a bounded dispatch executor.
    """

    def __init__(
        self,
        node_id: int,
        nvme: NVMeDir,
        pfs: PFSDir,
        host: str = "127.0.0.1",
        port: int = 0,
        mover_workers: int = 2,
        mover_queue_depth: int = 64,
        tracer: Optional[Tracer] = None,
        dispatch_workers: int = 4,
    ):
        self.node_id = node_id
        self.nvme = nvme
        self.pfs = pfs
        self.stats = ServerStats()
        #: server-side spans are always created *from* an incoming trace
        #: context — no context, no span — so an always-enabled tracer
        #: costs nothing until a client opts into tracing
        self.tracer = tracer if tracer is not None else Tracer(node=node_id)
        self.events = get_event_log()
        self.log = node_logger(__name__, node_id)
        self.telemetry = Telemetry(node=node_id)
        self.telemetry.adopt_counters("server", self.stats.counters)
        self.telemetry.gauge("mover_queue_len", lambda: self.mover.queue_len)
        self.telemetry.gauge("cached_bytes", lambda: self.nvme.used_bytes)
        self.telemetry.gauge("cached_entries", lambda: self.nvme.entry_count())
        self.telemetry.gauge("evictions", lambda: self.nvme.evictions)
        self.hung = threading.Event()
        self.dropped = threading.Event()
        #: released only at shutdown so hung handlers can exit (legacy name,
        #: kept for chaos tooling; the loop-side twin is ``_hang_release``)
        self.hang_barrier = threading.Event()
        if dispatch_workers < 1:
            raise ValueError(f"dispatch_workers must be >= 1, got {dispatch_workers}")
        # Bound before start() so callers can learn the ephemeral port —
        # and so two servers can never race for it.  create_server sets
        # SO_REUSEADDR, matching the old allow_reuse_address.
        self._listen_sock = socket.create_server((host, port), backlog=256)
        self._addr: tuple[str, int] = self._listen_sock.getsockname()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        #: loop-confined state (touched only from the loop thread, or via
        #: call_soon_threadsafe): live StreamWriters, their handler tasks,
        #: and the shutdown/hang events
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._aio_server: Optional[asyncio.base_events.Server] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._hang_release: Optional[asyncio.Event] = None
        self._closed = False
        #: blocking work (PFS reads, NVMe installs, STAT aggregation) runs
        #: here, never on the event loop; the name prefix keeps these
        #: threads inside the suite's leaked-thread allowance
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers,
            thread_name_prefix=f"ftcache-server-{node_id}-exec",
        )
        self.mover = DataMoverPool(
            nvme,
            self.stats,
            node_id,
            workers=mover_workers,
            queue_depth=mover_queue_depth,
            tracer=self.tracer,
            events=self.events,
        )
        self._alive = False
        #: last OP_JOIN_PLAN announcement (None until this node is the
        #: target of an elastic join); single dict assignment, read-only
        #: for observers, so no lock is needed
        self.join_plan: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._addr

    @property
    def alive(self) -> bool:
        return self._alive and not self.hung.is_set() and not self.dropped.is_set()

    def start(self) -> "FTCacheServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name=f"ftcache-server-{self.node_id}", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10):  # pragma: no cover - startup wedge
            raise RuntimeError("server event loop failed to start")
        self._alive = True
        self.log.info("serving on %s:%d", *self.address)
        return self

    def _run_loop(self) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._serve_main())
        finally:
            # Mirror asyncio.run()'s teardown: cancel stragglers (pipelined
            # handlers severed mid-write), then close the loop for real.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            asyncio.set_event_loop(None)
            loop.close()
            self._ready.set()  # unblock start() even if setup itself failed

    async def _serve_main(self) -> None:
        self._stop_event = asyncio.Event()
        self._hang_release = asyncio.Event()
        try:
            self._aio_server = await asyncio.start_server(self._serve_conn, sock=self._listen_sock)
        finally:
            self._ready.set()
        await self._stop_event.wait()
        # Shutdown sequence: release hung handlers, stop accepting, then
        # sever live connections so pooled client sockets observe the
        # restart instead of silently talking to a dead instance.
        self._hang_release.set()
        server = self._aio_server
        if server is not None:
            server.close()
            await server.wait_closed()
        for writer in list(self._writers):
            writer.transport.abort()
        # Severed handlers see EOF/reset and return on their own; waiting
        # for them here (instead of cancelling them in loop teardown)
        # avoids 3.11's noisy cancelled-connection-task log callback.
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=2.0)

    def kill(self, mode: str = "hang") -> None:
        """Simulate node failure.

        ``hang``: stop answering (clients block until their TTL).
        ``drop``: close the listening socket (connections refused).
        """
        if mode not in ("hang", "drop"):
            raise ValueError(f"mode must be 'hang' or 'drop', got {mode!r}")
        self.log.warning("killed (mode=%s)", mode)
        self._alive = False
        if mode == "hang":
            self.hung.set()
        else:
            self.dropped.set()  # live connections reset on next request
            self._close_listener()

    def _close_listener(self) -> None:
        """Close the accept socket, from whichever side owns it right now."""
        loop = self._loop

        def _do() -> None:
            if self._aio_server is not None:
                self._aio_server.close()  # closes the listen socket it wraps
            else:  # pragma: no cover - loop up but server not yet created
                self._listen_sock.close()

        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(_do)
                return
            except RuntimeError:  # pragma: no cover - loop raced to a close
                pass
        try:
            self._listen_sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        """Clean shutdown (not a failure simulation): stop the listener,
        sever accepted connections, and drain the data-mover pool."""
        if self._closed:
            return
        self._closed = True
        self._alive = False
        self.hang_barrier.set()
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():

            def _shutdown() -> None:
                if self._hang_release is not None:
                    self._hang_release.set()
                if self._stop_event is not None:
                    self._stop_event.set()

            try:
                loop.call_soon_threadsafe(_shutdown)
            except RuntimeError:  # pragma: no cover - loop raced to a close
                pass
            thread.join(timeout=10)
        else:
            # Never started: the pre-bound listener is ours to close.
            try:
                self._listen_sock.close()
            except OSError:  # pragma: no cover
                pass
        self._executor.shutdown(wait=True)
        self.mover.close(drain=True)

    # -- event-loop data plane --------------------------------------------------------
    async def _serve_conn(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            set_nodelay(sock)
        self._writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        loop = asyncio.get_running_loop()
        wlock = asyncio.Lock()  # one frame on the wire at a time
        sem = asyncio.Semaphore(_PIPELINE_DEPTH)
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    msg, wire = await read_frame_async(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # client went away / server shutting down
                except ProtocolError as exc:
                    self.stats.bump(errors=1)
                    self.log.warning("protocol error from %s: %s",
                                     writer.get_extra_info("peername"), exc)
                    break
                if self.dropped.is_set():
                    break  # hard failure: sever the connection mid-conversation
                if self.hung.is_set():
                    # Drained node: swallow the request until shutdown; the
                    # client's TTL is the only way it learns anything (Sec IV-A).
                    assert self._hang_release is not None
                    await self._hang_release.wait()
                    break
                if wire == "binary":
                    # Pipelined lane: every frame becomes its own task and
                    # completes out of order, correlated by the echoed seq.
                    self.stats.bump(binary_reqs=1)
                    await sem.acquire()
                    task = loop.create_task(self._handle_pipelined(msg, writer, wlock, sem))
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
                else:
                    # Legacy lane: JSON frames keep the strict one-at-a-time,
                    # in-order contract old clients were written against.
                    self.stats.bump(json_reqs=1)
                    if not await self._handle_one(msg, "json", writer, wlock):
                        break
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            writer.transport.abort()

    async def _handle_pipelined(self, msg: Message, writer, wlock, sem) -> None:
        try:
            await self._handle_one(msg, "binary", writer, wlock)
        finally:
            sem.release()

    async def _handle_one(self, msg: Message, wire: str, writer, wlock) -> bool:
        """Serve one framed request; False when the connection is unusable."""
        loop = asyncio.get_running_loop()
        try:
            if wire == "binary" and msg.op == OP_READ:
                if await self._serve_read_sendfile(msg, writer, wlock):
                    return True
            ctx = extract(msg.header)
            qspan = self.tracer.start_span("server.exec_queue", ctx)

            def _run() -> Message:
                qspan.end()  # duration == decode→executor-pickup wait
                return self.dispatch(msg)

            response = await loop.run_in_executor(self._executor, _run)
            sspan = self.tracer.start_span("server.serialize", ctx, nbytes=len(response.payload))
            try:
                if wire == "binary":
                    head = encode_binary_response_header(msg.op, response, seq=msg.seq)
                else:
                    head = encode_json_frame(response)
                async with wlock:
                    writer.write(head)
                    if response.payload:
                        # Separate write: the framed payload is never copied
                        # into a header+payload concatenation.
                        writer.write(response.payload)
                    await writer.drain()
            finally:
                sspan.end()
            return True
        except (ConnectionError, OSError):
            return False  # client went away mid-response
        except RuntimeError:
            return False  # executor/transport torn down under us (shutdown)
        except asyncio.CancelledError:
            raise
        except Exception:  # pragma: no cover - dispatch bug, not wire state
            self.log.exception("unhandled error serving %s", msg.op)
            self.stats.bump(errors=1)
            return False

    async def _serve_read_sendfile(self, msg: Message, writer, wlock) -> bool:
        """Zero-copy fast path for a binary READ that hits the cache.

        Returns True when the request was fully served from the loop (the
        reply header + ``loop.sendfile`` of the NVMe entry); False sends
        the caller down the normal dispatch path (miss, raced eviction,
        or a malformed request).
        """
        path = msg.header.get("path", "")
        if not path:
            return False
        entry = self.nvme.open_read(path)
        if entry is None:
            return False
        f, size = entry
        loop = asyncio.get_running_loop()
        ctx = extract(msg.header)
        t0 = time.perf_counter()
        span = self.tracer.start_span("server.read", ctx, path=path, mode="sendfile", nbytes=size)
        head = encode_binary_response_header(
            OP_READ, Message.ok_response(source="cache"), seq=msg.seq, payload_len=size
        )
        try:
            async with wlock:
                writer.write(head)
                await writer.drain()
                if size:
                    fspan = self.tracer.start_span("server.sendfile", span, nbytes=size)
                    try:
                        await loop.sendfile(writer.transport, f, count=size, fallback=True)
                    except NotImplementedError:  # pragma: no cover - exotic loop
                        writer.write(f.read(size))
                        await writer.drain()
                    fspan.end()
        except (ConnectionError, OSError, RuntimeError):
            # Request was consumed; the reader loop learns of the dead
            # connection on its next frame.  RuntimeError: transport
            # closed under sendfile during shutdown.
            span.end(status="conn_error")
            return True
        finally:
            f.close()
        self.stats.bump(hits=1, sendfile_serves=1)
        self.telemetry.observe("op_read_s", time.perf_counter() - t0)
        span.end()
        return True

    # -- request handling -----------------------------------------------------------
    def dispatch(self, msg: Message) -> Message:
        """Route one request; every op gets a span (when the request carries
        a trace context) and a latency observation in the telemetry registry."""
        op = msg.op or "unknown"
        span = self.tracer.start_span(f"server.{op.lower()}", extract(msg.header))
        t0 = time.perf_counter()
        try:
            response = self._dispatch(msg, span)
        except Exception:
            span.end(status="error")
            raise
        self.telemetry.observe(f"op_{op.lower()}_s", time.perf_counter() - t0)
        span.end(status="ok" if response.ok else "error")
        return response

    def _dispatch(self, msg: Message, span=NULL_SPAN) -> Message:
        if msg.op == OP_PING:
            return Message.ok_response(node_id=self.node_id)
        if msg.op == OP_STAT:
            return Message.ok_response(
                node_id=self.node_id,
                cached_entries=self.nvme.entry_count(),
                cached_bytes=self.nvme.used_bytes,
                capacity_bytes=self.nvme.capacity_bytes,
                evictions=self.nvme.evictions,
                mover_queue_len=self.mover.queue_len,
                mover_workers=self.mover.workers,
                **self.stats.counters(),
            )
        if msg.op == OP_READ:
            return self._read(msg.header.get("path", ""), span)
        if msg.op == OP_PUT:
            return self._put(msg.header.get("path", ""), msg.payload)
        if msg.op == OP_JOIN_PLAN:
            return self._join_plan(
                msg.header.get("planned_keys", 0),
                msg.header.get("planned_bytes", 0),
                msg.header.get("epoch", 0),
            )
        if msg.op == OP_TRANSFER:
            return self._transfer(msg.header.get("path", ""), msg.payload, span)
        if msg.op == OP_OBS:
            return self._obs(
                msg.header.get("spans_limit", 256),
                msg.header.get("events_limit", 256),
            )
        self.stats.bump(errors=1)
        return Message.error_response(f"unknown op {msg.op!r}")

    def _read(self, path: str, parent=NULL_SPAN) -> Message:
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        if self.nvme.contains(path):
            nspan = self.tracer.start_span("server.nvme_read", parent, path=path)
            try:
                data = self.nvme.read(path)
            except OSError:
                # Entry raced away (eviction); fall through to the PFS.
                nspan.end(status="race_fallthrough")
                self.stats.bump(race_fallthroughs=1)
            else:
                nspan.end()
                self.stats.bump(hits=1)
                return Message.ok_response(payload=data, source="cache")
        pspan = self.tracer.start_span("server.pfs_read", parent, path=path)
        try:
            data = self.pfs.read(path)
        except FileNotFoundError:
            pspan.end(status="enoent")
            self.stats.bump(errors=1)
            return Message.error_response(f"no such file: {path}", code="ENOENT")
        pspan.end()
        self.stats.bump(misses=1, pfs_reads=1)
        self.mover.submit(path, data, ctx=parent.ctx)
        return Message.ok_response(payload=data, source="pfs")

    def _obs(self, spans_limit, events_limit) -> Message:
        """Observability export: one JSON payload with the unified telemetry
        snapshot, tracer accounting, recent spans, and recent events.  The
        response header stays empty on purpose — bulk data belongs in the
        payload lane, keeping the wire contract (RPC004) trivially green."""
        snap = self.telemetry.snapshot()
        snap["tracer"] = self.tracer.counters()
        snap["spans"] = self.tracer.buffer.snapshot(limit=int(spans_limit))
        snap["events"] = self.events.snapshot(limit=int(events_limit))
        return Message.ok_response(payload=json.dumps(snap, default=str).encode("utf-8"))

    def _join_plan(self, planned_keys: int, planned_bytes: int, epoch: int) -> Message:
        """Record an impending join's move plan (this node is the joiner).

        Purely informational — warmup arrives as OP_TRANSFERs — but it
        doubles as the coordinator's liveness check and makes the plan
        visible in this node's state for debugging an aborted join.
        """
        self.join_plan = {
            "planned_keys": int(planned_keys),
            "planned_bytes": int(planned_bytes),
            "epoch": int(epoch),
        }
        self.stats.bump(join_plans=1)
        return Message.ok_response(node_id=self.node_id, accepted_keys=int(planned_keys))

    def _transfer(self, path: str, data: bytes, parent=NULL_SPAN) -> Message:
        """Warmup backfill: hand one moved key to the bounded data mover.

        The mover — not this handler — writes the NVMe entry, so transfer
        ingest obeys the same queue depth / coalescing / drop-oldest
        policy as miss recaching: a join cannot stampede this node.  The
        reply reports the queue length so the coordinator can throttle.
        """
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        accepted = self.mover.submit(path, data, ctx=parent.ctx)
        if accepted:
            self.stats.bump(transfers_in=1, transfer_bytes=len(data))
        return Message.ok_response(accepted=accepted, queue_len=self.mover.queue_len)

    def _put(self, path: str, data: bytes) -> Message:
        """Replica push (replication extension): install an entry directly."""
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        try:
            self.nvme.write(path, data)
        except OSError as exc:
            # With LRU eviction this only fires for an entry larger than the
            # whole device — capacity pressure evicts instead of refusing.
            self.stats.bump(errors=1)
            return Message.error_response(f"cache full: {exc}", code="ENOSPC")
        self.stats.bump(recached=1)
        return Message.ok_response(stored=len(data))
