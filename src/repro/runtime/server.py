"""Threaded FT-Cache server: one per (simulated) node, real sockets.

Serves the same protocol as the paper's HVAC server daemon: a READ either
hits the node-local cache directory or falls through to the shared PFS
directory, serves the bytes, and hands them to a background *data mover*
for recaching — the Sec IV-B retrieve → serve → cache sequence, now with
actual files and actual threads.

The data mover is a **bounded worker pool** (:class:`DataMoverPool`), not
a thread per miss: a miss storm (cold cache, failover re-homing a node's
keys, chaos-monkey churn) enqueues recache work onto a fixed number of
workers behind a bounded queue.  Duplicate keys already queued or being
written are coalesced, and when the queue is full the *oldest* pending
entry is dropped (and counted) — recaching is an optimisation, so losing
one write-through only costs a future PFS read, never correctness.

Failure injection mirrors a drained node: :meth:`FTCacheServer.kill` with
``mode="hang"`` keeps the port open but never answers (clients see socket
timeouts, exactly the paper's detection path); ``mode="drop"`` closes the
listener outright (connection refused).
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from functools import partial

from ..analysis import lockwitness
from ..obs import NULL_SPAN, Telemetry, Tracer, extract, get_event_log, node_logger
from ..obs.context import TraceContext
from .protocol import (
    OP_JOIN_PLAN,
    OP_OBS,
    OP_PING,
    OP_PUT,
    OP_READ,
    OP_STAT,
    OP_TRANSFER,
    Message,
    recv_message,
    send_message,
)
from .storage import NVMeDir, PFSDir

__all__ = ["FTCacheServer", "ServerStats", "DataMoverPool"]

#: every monotone per-server counter, in one place so cluster aggregation,
#: STAT responses, and snapshot dictionaries can never drift apart
STAT_COUNTER_KEYS = (
    "hits",
    "misses",
    "pfs_reads",
    "recached",
    "errors",
    "race_fallthroughs",
    "mover_enqueued",
    "mover_coalesced",
    "mover_dropped",
    "join_plans",
    "transfers_in",
    "transfer_bytes",
)


@dataclass
class ServerStats:
    hits: int = 0
    misses: int = 0
    pfs_reads: int = 0
    recached: int = 0
    errors: int = 0
    #: reads that saw ``contains()`` true but lost the race to an eviction
    #: and fell through to the PFS (previously indistinguishable from a miss)
    race_fallthroughs: int = 0
    #: data-mover queue accounting (see DataMoverPool)
    mover_enqueued: int = 0
    mover_coalesced: int = 0
    mover_dropped: int = 0
    #: elastic-join warmup accounting (repro.rebalance): plans announced
    #: to this node, transfer requests its mover accepted, and their bytes
    join_plans: int = 0
    transfers_in: int = 0
    transfer_bytes: int = 0
    _lock: threading.Lock = field(
        default_factory=partial(lockwitness.named_lock, "server-stats"), repr=False
    )

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, d in deltas.items():
                setattr(self, name, getattr(self, name) + d)

    def counters(self) -> dict:
        """Point-in-time copy of every counter (one lock acquisition)."""
        with self._lock:
            return {k: getattr(self, k) for k in STAT_COUNTER_KEYS}


class DataMoverPool:
    """Bounded worker pool for write-through recaching.

    ``submit(path, data)`` enqueues one recache; a fixed set of worker
    threads drains the queue into the cache directory.  Three policies
    keep a miss storm from melting the node:

    * **bounded queue** — at most ``queue_depth`` pending entries;
    * **coalescing** — a key already queued or currently being written is
      not enqueued again (the bytes are identical: both came from the
      PFS), counted as ``mover_coalesced``;
    * **drop-oldest overflow** — a full queue drops its *oldest* pending
      entry to admit the new one (recency wins: the new key was just
      requested), counted as ``mover_dropped``.

    :meth:`close` performs a graceful drain: no new work is accepted,
    workers finish whatever is queued, then exit.
    """

    def __init__(
        self,
        nvme: NVMeDir,
        stats: ServerStats,
        node_id: int,
        workers: int = 2,
        queue_depth: int = 64,
        tracer: Optional[Tracer] = None,
        events=None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.nvme = nvme
        self.stats = stats
        self.node_id = node_id
        self.workers = workers
        self.queue_depth = queue_depth
        self.tracer = tracer if tracer is not None else Tracer(node=node_id, enabled=False)
        self.events = events if events is not None else get_event_log()
        self._cond = lockwitness.named_condition("mover-cond")
        #: path → (bytes, queue-wait span): the span starts at submit and
        #: ends at dequeue, so its duration *is* the queue wait
        self._queue: "OrderedDict[str, tuple]" = OrderedDict()
        self._inflight: set[str] = set()
        self._closed = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"data-mover-{node_id}-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- producer side ---------------------------------------------------------------
    def submit(self, path: str, data: bytes, ctx: Optional[TraceContext] = None) -> bool:
        """Enqueue one recache; False only after :meth:`close`.

        ``ctx`` is the submitting request's trace context; when present,
        the queue wait and the eventual NVMe write become spans of that
        trace, so a traced READ shows its asynchronous recache tail.
        """
        dropped_span = None
        with self._cond:
            if self._closed:
                return False
            if path in self._queue or path in self._inflight:
                self.stats.bump(mover_coalesced=1)
                return True
            if len(self._queue) >= self.queue_depth:
                _, (_, dropped_span) = self._queue.popitem(last=False)
                self.stats.bump(mover_dropped=1)
            qspan = self.tracer.start_span("mover.queue_wait", ctx, path=path)
            self._queue[path] = (data, qspan)
            self.stats.bump(mover_enqueued=1)
            self._cond.notify()
        if dropped_span is not None:
            dropped_span.end(status="dropped")
        return True

    # -- worker side -----------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:  # closed and drained
                    return
                path, (data, qspan) = self._queue.popitem(last=False)
                self._inflight.add(path)
            qspan.end()
            self.events.emit("recache_begin", node=self.node_id, path=path, nbytes=len(data))
            wspan = self.tracer.start_span("mover.nvme_write", qspan, path=path)
            ok = True
            try:
                try:
                    self.nvme.write(path, data)
                    self.stats.bump(recached=1)
                except OSError:
                    ok = False  # cache full: serveable but not cacheable
            finally:
                with self._cond:
                    self._inflight.discard(path)
            wspan.end(status="ok" if ok else "error")
            self.events.emit("recache_end", node=self.node_id, path=path, ok=ok)

    # -- introspection / lifecycle -----------------------------------------------------
    @property
    def queue_len(self) -> int:
        with self._cond:
            return len(self._queue)

    def alive_workers(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def close(self, drain: bool = True, timeout: float = 5.0) -> None:
        """Stop accepting work; drain (or discard) the queue; join workers."""
        discarded = []
        with self._cond:
            self._closed = True
            if not drain:
                discarded = [span for _, span in self._queue.values()]
                self._queue.clear()
            self._cond.notify_all()
        for span in discarded:
            span.end(status="dropped")
        deadline = timeout
        for t in self._threads:
            t.join(timeout=max(0.1, deadline / max(1, len(self._threads))))


class _Handler(socketserver.BaseRequestHandler):
    server: "_TCPServer"

    def setup(self) -> None:  # noqa: D102 - socketserver hook
        self.server.owner._register_conn(self.request)

    def finish(self) -> None:  # noqa: D102 - socketserver hook
        self.server.owner._unregister_conn(self.request)

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        owner: "FTCacheServer" = self.server.owner
        try:
            while True:
                msg = recv_message(self.request)
                if owner.dropped.is_set():
                    # Hard failure: sever the connection mid-conversation.
                    self.request.close()
                    return
                if owner.hung.is_set():
                    # Drained node: swallow the request forever; the client's
                    # TTL is the only way it learns anything (Sec IV-A).
                    owner.hang_barrier.wait()
                    return
                response = owner.dispatch(msg)
                sspan = owner.tracer.start_span("server.serialize", extract(msg.header),
                                                nbytes=len(response.payload))
                send_message(self.request, response)
                sspan.end()
        except (ConnectionError, OSError):
            return  # client went away / server shutting down


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "FTCacheServer"


class FTCacheServer:
    """One node's cache daemon over a real TCP socket."""

    def __init__(
        self,
        node_id: int,
        nvme: NVMeDir,
        pfs: PFSDir,
        host: str = "127.0.0.1",
        port: int = 0,
        mover_workers: int = 2,
        mover_queue_depth: int = 64,
        tracer: Optional[Tracer] = None,
    ):
        self.node_id = node_id
        self.nvme = nvme
        self.pfs = pfs
        self.stats = ServerStats()
        #: server-side spans are always created *from* an incoming trace
        #: context — no context, no span — so an always-enabled tracer
        #: costs nothing until a client opts into tracing
        self.tracer = tracer if tracer is not None else Tracer(node=node_id)
        self.events = get_event_log()
        self.log = node_logger(__name__, node_id)
        self.telemetry = Telemetry(node=node_id)
        self.telemetry.adopt_counters("server", self.stats.counters)
        self.telemetry.gauge("mover_queue_len", lambda: self.mover.queue_len)
        self.telemetry.gauge("cached_bytes", lambda: self.nvme.used_bytes)
        self.telemetry.gauge("cached_entries", lambda: self.nvme.entry_count())
        self.telemetry.gauge("evictions", lambda: self.nvme.evictions)
        self.hung = threading.Event()
        self.dropped = threading.Event()
        #: released only at shutdown so hung handlers can exit
        self.hang_barrier = threading.Event()
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.owner = self
        self._thread: Optional[threading.Thread] = None
        self.mover = DataMoverPool(
            nvme,
            self.stats,
            node_id,
            workers=mover_workers,
            queue_depth=mover_queue_depth,
            tracer=self.tracer,
            events=self.events,
        )
        #: accepted connections, severed on close() so pooled client sockets
        #: observe a restart instead of silently talking to a dead instance
        self._conns: set[socket.socket] = set()
        self._conns_lock = lockwitness.named_lock("server-conns")
        self._alive = False
        #: last OP_JOIN_PLAN announcement (None until this node is the
        #: target of an elastic join); single dict assignment, read-only
        #: for observers, so no lock is needed
        self.join_plan: Optional[dict] = None

    # -- lifecycle -----------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    @property
    def alive(self) -> bool:
        return self._alive and not self.hung.is_set() and not self.dropped.is_set()

    def start(self) -> "FTCacheServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name=f"ftcache-server-{self.node_id}", daemon=True
        )
        self._thread.start()
        self._alive = True
        self.log.info("serving on %s:%d", *self.address)
        return self

    def _register_conn(self, sock: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(sock)

    def _unregister_conn(self, sock: socket.socket) -> None:
        with self._conns_lock:
            self._conns.discard(sock)

    def kill(self, mode: str = "hang") -> None:
        """Simulate node failure.

        ``hang``: stop answering (clients block until their TTL).
        ``drop``: close the listening socket (connections refused).
        """
        if mode not in ("hang", "drop"):
            raise ValueError(f"mode must be 'hang' or 'drop', got {mode!r}")
        self.log.warning("killed (mode=%s)", mode)
        self._alive = False
        if mode == "hang":
            self.hung.set()
        else:
            self.dropped.set()  # live connections reset on next request
            self._tcp.shutdown()
            self._tcp.server_close()

    def close(self) -> None:
        """Clean shutdown (not a failure simulation): stop the listener,
        sever accepted connections, and drain the data-mover pool."""
        self._alive = False
        self.hang_barrier.set()
        try:
            if self._thread is not None:
                # shutdown() waits on the serve_forever loop; calling it on a
                # never-started server would block forever.
                self._tcp.shutdown()
            self._tcp.server_close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._conns_lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass
        self.mover.close(drain=True)

    # -- request handling -----------------------------------------------------------
    def dispatch(self, msg: Message) -> Message:
        """Route one request; every op gets a span (when the request carries
        a trace context) and a latency observation in the telemetry registry."""
        op = msg.op or "unknown"
        span = self.tracer.start_span(f"server.{op.lower()}", extract(msg.header))
        t0 = time.perf_counter()
        try:
            response = self._dispatch(msg, span)
        except Exception:
            span.end(status="error")
            raise
        self.telemetry.observe(f"op_{op.lower()}_s", time.perf_counter() - t0)
        span.end(status="ok" if response.ok else "error")
        return response

    def _dispatch(self, msg: Message, span=NULL_SPAN) -> Message:
        if msg.op == OP_PING:
            return Message.ok_response(node_id=self.node_id)
        if msg.op == OP_STAT:
            return Message.ok_response(
                node_id=self.node_id,
                cached_entries=self.nvme.entry_count(),
                cached_bytes=self.nvme.used_bytes,
                capacity_bytes=self.nvme.capacity_bytes,
                evictions=self.nvme.evictions,
                mover_queue_len=self.mover.queue_len,
                mover_workers=self.mover.workers,
                **self.stats.counters(),
            )
        if msg.op == OP_READ:
            return self._read(msg.header.get("path", ""), span)
        if msg.op == OP_PUT:
            return self._put(msg.header.get("path", ""), msg.payload)
        if msg.op == OP_JOIN_PLAN:
            return self._join_plan(
                msg.header.get("planned_keys", 0),
                msg.header.get("planned_bytes", 0),
                msg.header.get("epoch", 0),
            )
        if msg.op == OP_TRANSFER:
            return self._transfer(msg.header.get("path", ""), msg.payload, span)
        if msg.op == OP_OBS:
            return self._obs(
                msg.header.get("spans_limit", 256),
                msg.header.get("events_limit", 256),
            )
        self.stats.bump(errors=1)
        return Message.error_response(f"unknown op {msg.op!r}")

    def _read(self, path: str, parent=NULL_SPAN) -> Message:
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        if self.nvme.contains(path):
            nspan = self.tracer.start_span("server.nvme_read", parent, path=path)
            try:
                data = self.nvme.read(path)
            except OSError:
                # Entry raced away (eviction); fall through to the PFS.
                nspan.end(status="race_fallthrough")
                self.stats.bump(race_fallthroughs=1)
            else:
                nspan.end()
                self.stats.bump(hits=1)
                return Message.ok_response(payload=data, source="cache")
        pspan = self.tracer.start_span("server.pfs_read", parent, path=path)
        try:
            data = self.pfs.read(path)
        except FileNotFoundError:
            pspan.end(status="enoent")
            self.stats.bump(errors=1)
            return Message.error_response(f"no such file: {path}", code="ENOENT")
        pspan.end()
        self.stats.bump(misses=1, pfs_reads=1)
        self.mover.submit(path, data, ctx=parent.ctx)
        return Message.ok_response(payload=data, source="pfs")

    def _obs(self, spans_limit, events_limit) -> Message:
        """Observability export: one JSON payload with the unified telemetry
        snapshot, tracer accounting, recent spans, and recent events.  The
        response header stays empty on purpose — bulk data belongs in the
        payload lane, keeping the wire contract (RPC004) trivially green."""
        snap = self.telemetry.snapshot()
        snap["tracer"] = self.tracer.counters()
        snap["spans"] = self.tracer.buffer.snapshot(limit=int(spans_limit))
        snap["events"] = self.events.snapshot(limit=int(events_limit))
        return Message.ok_response(payload=json.dumps(snap, default=str).encode("utf-8"))

    def _join_plan(self, planned_keys: int, planned_bytes: int, epoch: int) -> Message:
        """Record an impending join's move plan (this node is the joiner).

        Purely informational — warmup arrives as OP_TRANSFERs — but it
        doubles as the coordinator's liveness check and makes the plan
        visible in this node's state for debugging an aborted join.
        """
        self.join_plan = {
            "planned_keys": int(planned_keys),
            "planned_bytes": int(planned_bytes),
            "epoch": int(epoch),
        }
        self.stats.bump(join_plans=1)
        return Message.ok_response(node_id=self.node_id, accepted_keys=int(planned_keys))

    def _transfer(self, path: str, data: bytes, parent=NULL_SPAN) -> Message:
        """Warmup backfill: hand one moved key to the bounded data mover.

        The mover — not this handler — writes the NVMe entry, so transfer
        ingest obeys the same queue depth / coalescing / drop-oldest
        policy as miss recaching: a join cannot stampede this node.  The
        reply reports the queue length so the coordinator can throttle.
        """
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        accepted = self.mover.submit(path, data, ctx=parent.ctx)
        if accepted:
            self.stats.bump(transfers_in=1, transfer_bytes=len(data))
        return Message.ok_response(accepted=accepted, queue_len=self.mover.queue_len)

    def _put(self, path: str, data: bytes) -> Message:
        """Replica push (replication extension): install an entry directly."""
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        try:
            self.nvme.write(path, data)
        except OSError as exc:
            # With LRU eviction this only fires for an entry larger than the
            # whole device — capacity pressure evicts instead of refusing.
            self.stats.bump(errors=1)
            return Message.error_response(f"cache full: {exc}", code="ENOSPC")
        self.stats.bump(recached=1)
        return Message.ok_response(stored=len(data))
