"""Threaded FT-Cache server: one per (simulated) node, real sockets.

Serves the same protocol as the paper's HVAC server daemon: a READ either
hits the node-local cache directory or falls through to the shared PFS
directory, serves the bytes, and hands them to a background *data mover*
thread for recaching — the Sec IV-B retrieve → serve → cache sequence,
now with actual files and actual threads.

Failure injection mirrors a drained node: :meth:`FTCacheServer.kill` with
``mode="hang"`` keeps the port open but never answers (clients see socket
timeouts, exactly the paper's detection path); ``mode="drop"`` closes the
listener outright (connection refused).
"""

from __future__ import annotations

import socket
import socketserver
import threading
from dataclasses import dataclass, field
from typing import Optional

from .protocol import OP_PING, OP_PUT, OP_READ, OP_STAT, Message, recv_message, send_message
from .storage import NVMeDir, PFSDir

__all__ = ["FTCacheServer", "ServerStats"]


@dataclass
class ServerStats:
    hits: int = 0
    misses: int = 0
    pfs_reads: int = 0
    recached: int = 0
    errors: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, d in deltas.items():
                setattr(self, name, getattr(self, name) + d)


class _Handler(socketserver.BaseRequestHandler):
    server: "_TCPServer"

    def handle(self) -> None:  # noqa: D102 - socketserver hook
        owner: "FTCacheServer" = self.server.owner
        try:
            while True:
                msg = recv_message(self.request)
                if owner.dropped.is_set():
                    # Hard failure: sever the connection mid-conversation.
                    self.request.close()
                    return
                if owner.hung.is_set():
                    # Drained node: swallow the request forever; the client's
                    # TTL is the only way it learns anything (Sec IV-A).
                    owner.hang_barrier.wait()
                    return
                response = owner.dispatch(msg)
                send_message(self.request, response)
        except (ConnectionError, OSError):
            return  # client went away / server shutting down


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "FTCacheServer"


class FTCacheServer:
    """One node's cache daemon over a real TCP socket."""

    def __init__(
        self,
        node_id: int,
        nvme: NVMeDir,
        pfs: PFSDir,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.node_id = node_id
        self.nvme = nvme
        self.pfs = pfs
        self.stats = ServerStats()
        self.hung = threading.Event()
        self.dropped = threading.Event()
        #: released only at shutdown so hung handlers can exit
        self.hang_barrier = threading.Event()
        self._tcp = _TCPServer((host, port), _Handler, bind_and_activate=True)
        self._tcp.owner = self
        self._thread: Optional[threading.Thread] = None
        self._movers: list[threading.Thread] = []
        self._alive = False

    # -- lifecycle -----------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._tcp.server_address  # type: ignore[return-value]

    @property
    def alive(self) -> bool:
        return self._alive and not self.hung.is_set() and not self.dropped.is_set()

    def start(self) -> "FTCacheServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, name=f"ftcache-server-{self.node_id}", daemon=True
        )
        self._thread.start()
        self._alive = True
        return self

    def kill(self, mode: str = "hang") -> None:
        """Simulate node failure.

        ``hang``: stop answering (clients block until their TTL).
        ``drop``: close the listening socket (connections refused).
        """
        if mode not in ("hang", "drop"):
            raise ValueError(f"mode must be 'hang' or 'drop', got {mode!r}")
        self._alive = False
        if mode == "hang":
            self.hung.set()
        else:
            self.dropped.set()  # live connections reset on next request
            self._tcp.shutdown()
            self._tcp.server_close()

    def close(self) -> None:
        """Clean shutdown (not a failure simulation)."""
        self._alive = False
        self.hang_barrier.set()
        try:
            self._tcp.shutdown()
            self._tcp.server_close()
        except OSError:  # pragma: no cover - already closed
            pass
        for t in self._movers:
            t.join(timeout=2.0)

    # -- request handling -----------------------------------------------------------
    def dispatch(self, msg: Message) -> Message:
        if msg.op == OP_PING:
            return Message.ok_response(node_id=self.node_id)
        if msg.op == OP_STAT:
            return Message.ok_response(
                node_id=self.node_id,
                cached_entries=self.nvme.entry_count(),
                cached_bytes=self.nvme.used_bytes,
                capacity_bytes=self.nvme.capacity_bytes,
                hits=self.stats.hits,
                misses=self.stats.misses,
                pfs_reads=self.stats.pfs_reads,
                recached=self.stats.recached,
                errors=self.stats.errors,
                evictions=self.nvme.evictions,
            )
        if msg.op == OP_READ:
            return self._read(msg.header.get("path", ""))
        if msg.op == OP_PUT:
            return self._put(msg.header.get("path", ""), msg.payload)
        self.stats.bump(errors=1)
        return Message.error_response(f"unknown op {msg.op!r}")

    def _read(self, path: str) -> Message:
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        if self.nvme.contains(path):
            try:
                data = self.nvme.read(path)
                self.stats.bump(hits=1)
                return Message.ok_response(payload=data, source="cache")
            except OSError:
                # Entry raced away (eviction); fall through to the PFS.
                pass
        try:
            data = self.pfs.read(path)
        except FileNotFoundError:
            self.stats.bump(errors=1)
            return Message.error_response(f"no such file: {path}", code="ENOENT")
        self.stats.bump(misses=1, pfs_reads=1)
        self._recache_async(path, data)
        return Message.ok_response(payload=data, source="pfs")

    def _put(self, path: str, data: bytes) -> Message:
        """Replica push (replication extension): install an entry directly."""
        if not path:
            self.stats.bump(errors=1)
            return Message.error_response("missing path")
        try:
            self.nvme.write(path, data)
        except OSError as exc:
            # With LRU eviction this only fires for an entry larger than the
            # whole device — capacity pressure evicts instead of refusing.
            self.stats.bump(errors=1)
            return Message.error_response(f"cache full: {exc}", code="ENOSPC")
        self.stats.bump(recached=1)
        return Message.ok_response(stored=len(data))

    def _recache_async(self, path: str, data: bytes) -> None:
        """Data-mover thread: write-through to the cache directory."""

        def _move() -> None:
            try:
                self.nvme.write(path, data)
                self.stats.bump(recached=1)
            except OSError:
                pass  # cache full: serveable but not cacheable

        t = threading.Thread(target=_move, name=f"data-mover-{self.node_id}", daemon=True)
        t.start()
        self._movers = [m for m in self._movers if m.is_alive()] + [t]
