"""In-process cluster manager for the threaded runtime.

Spins up ``n`` :class:`~repro.runtime.server.FTCacheServer` threads over
per-node cache directories and one shared PFS directory, wires a
fault-tolerant client to them, and offers kill-based failure injection —
the laptop-scale twin of a Frontier allocation.

Typical use (also ``examples/runtime_cluster.py``)::

    with LocalCluster(n_servers=4, workdir=tmp, policy="nvme") as cluster:
        cluster.populate(n_files=64, file_bytes=1 << 16)
        client = cluster.client()
        data = client.read(cluster.paths[0])     # miss → PFS → recached
        cluster.kill_server(cluster.owner_of(cluster.paths[0]))
        data = client.read(cluster.paths[0])     # TTL → declare → re-route
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..core.fault_policy import FaultPolicy, make_policy
from ..core.membership import MembershipView
from ..core.replication import ReplicatedRecache
from ..core.hash_ring import HashRing
from ..core.static_hash import StaticHash
from ..obs import SpanBuffer, Tracer, get_event_log
from ..rebalance import JoinCoordinator, JoinReport, RingDiff, RingEpoch
from .client import FTCacheClient
from .server import STAT_COUNTER_KEYS, FTCacheServer
from .storage import NVMeDir, PFSDir

__all__ = ["LocalCluster"]


class LocalCluster:
    """n threaded cache servers + shared PFS dir + failure injection."""

    def __init__(
        self,
        n_servers: int = 4,
        workdir: Optional[str | Path] = None,
        policy: str = "nvme",
        vnodes_per_node: int = 100,
        ttl: float = 0.5,
        timeout_threshold: int = 2,
        pfs_read_delay: float = 0.0,
        nvme_capacity_bytes: Optional[int] = None,
        replicas: int = 2,
        mover_workers: int = 2,
        mover_queue_depth: int = 64,
        ring_probes: int = 1,
        trace_sample_rate: float = 0.0,
        trace_seed: int = 0,
        wire: str = "binary",
    ):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not 0.0 <= trace_sample_rate <= 1.0:
            raise ValueError(f"trace_sample_rate must be in [0, 1], got {trace_sample_rate}")
        if wire not in ("binary", "json"):
            raise ValueError(f"wire must be 'binary' or 'json', got {wire!r}")
        #: request codec for every client this cluster creates (READ/PUT/
        #: TRANSFER frames; control ops always ride JSON)
        self.wire = wire
        self.policy_name = policy
        self.replicas = replicas
        self.ttl = ttl
        self.timeout_threshold = timeout_threshold
        self.mover_workers = mover_workers
        self.mover_queue_depth = mover_queue_depth
        self.nvme_capacity_bytes = nvme_capacity_bytes
        self.ring_probes = ring_probes
        #: head-based sampling rate for client-rooted traces; 0 disables
        #: tracing entirely (servers still trace iff a header arrives,
        #: which then never happens)
        self.trace_sample_rate = trace_sample_rate
        self.trace_seed = trace_seed
        #: span sink for join-control clients, which are closed (and their
        #: tracers lost) when each join finishes — the buffer outlives them
        self.control_spans = SpanBuffer()
        self._owns_workdir = workdir is None
        self.workdir = Path(workdir) if workdir is not None else Path(tempfile.mkdtemp(prefix="ftcache-"))
        self.pfs = PFSDir(self.workdir / "pfs", read_delay=pfs_read_delay)
        self.servers: dict[int, FTCacheServer] = {}
        for i in range(n_servers):
            nvme = NVMeDir(self.workdir / f"nvme{i}", capacity_bytes=nvme_capacity_bytes)
            self.servers[i] = self._spawn_server(i, nvme)
        self.vnodes_per_node = vnodes_per_node
        #: per-node capacity weight, threaded into every new client's ring
        #: (nodes absent here weigh 1.0); set by join_server(weight=...)
        self.node_weights: dict[int, float] = {}
        #: cluster-level liveness/placement truth: kills mark FAILED,
        #: restarts mark ACTIVE, joins admit — always *before* placements flip
        self.membership = MembershipView(sorted(self.servers))
        #: placement version; advanced on every membership change
        self.ring_epoch = RingEpoch()
        self.paths: list[str] = []
        self._clients: list[FTCacheClient] = []
        #: reports of completed/aborted elastic joins, in order
        self.join_reports: list[JoinReport] = []
        #: counters of server instances retired by restart_server, so
        #: cluster-wide totals stay monotone across repairs
        self._retired_stats = {k: 0 for k in (*STAT_COUNTER_KEYS, "evictions")}

    def _spawn_server(self, node_id: int, nvme: NVMeDir, host: str = "127.0.0.1", port: int = 0) -> FTCacheServer:
        return FTCacheServer(
            node_id,
            nvme,
            self.pfs,
            host=host,
            port=port,
            mover_workers=self.mover_workers,
            mover_queue_depth=self.mover_queue_depth,
        ).start()

    # -- construction helpers ---------------------------------------------------------
    def _make_placement(self):
        if self.policy_name in ("FT w/ NVMe", "nvme", "elastic", "replicated", "FT w/ NVMe (replicated)"):
            return HashRing(
                nodes=sorted(self.servers),
                vnodes_per_node=self.vnodes_per_node,
                weights=self.node_weights or None,
                probes=self.ring_probes,
            )
        return StaticHash(nodes=sorted(self.servers))

    def make_policy(self) -> FaultPolicy:
        if self.policy_name in ("replicated", "FT w/ NVMe (replicated)"):
            return ReplicatedRecache(self._make_placement(), replicas=self.replicas)
        return make_policy(self.policy_name, self._make_placement())

    def client(self, policy: Optional[FaultPolicy] = None) -> FTCacheClient:
        """A new fault-tolerant client (own policy instance by default)."""
        tracer = None
        if self.trace_sample_rate > 0.0:
            tracer = Tracer(
                node=f"client-{len(self._clients)}",
                sample_rate=self.trace_sample_rate,
                seed=self.trace_seed + len(self._clients),
            )
        c = FTCacheClient(
            servers={i: s.address for i, s in self.servers.items()},
            policy=policy if policy is not None else self.make_policy(),
            pfs=self.pfs,
            ttl=self.ttl,
            timeout_threshold=self.timeout_threshold,
            tracer=tracer,
            wire=self.wire,
        )
        self._clients.append(c)
        return c

    # -- dataset ------------------------------------------------------------------------
    def populate(self, n_files: int = 64, file_bytes: int = 4096, seed: int = 0) -> list[str]:
        """Write a synthetic dataset into the PFS dir; returns the paths."""
        rng = np.random.default_rng(seed)
        self.paths = []
        for i in range(n_files):
            path = f"/dataset/train/sample_{i:06d}.bin"
            self.pfs.write(path, rng.bytes(file_bytes))
            self.paths.append(path)
        return self.paths

    def owner_of(self, path: str, policy: Optional[FaultPolicy] = None) -> int:
        pol = policy if policy is not None else (self._clients[0].policy if self._clients else self.make_policy())
        target = pol.target_for(path)
        if target.kind != "node":
            raise ValueError(f"{path!r} routes to the PFS under the current policy state")
        return int(target.node)

    # -- failure injection ----------------------------------------------------------------
    def kill_server(self, node_id: int, mode: str = "hang") -> None:
        """The DRAIN analogue: the server stops answering."""
        get_event_log().emit("node_killed", node=node_id, mode=mode)
        self.servers[node_id].kill(mode=mode)
        self.membership.mark_failed(node_id)
        self.ring_epoch.advance()

    def restart_server(
        self, node_id: int, notify_clients: bool = True, same_address: bool = False
    ) -> FTCacheServer:
        """Bring a killed node back (repair + elastic rejoin).

        A fresh server starts over the node's existing cache directory —
        entries written before the failure survive, so the rejoin is warm.
        Clients created by this cluster are re-pointed at the new address
        and their policies re-admit the node (keys flow back to it).

        ``same_address=True`` rebinds the node's previous host:port — the
        HPC repair case where a node rejoins under its old identity.  With
        ``notify_clients=False`` this exercises the stale-pooled-socket
        path: clients discover the restart only when a reused connection
        resets, and must reconnect transparently rather than feed the
        failure detector.
        """
        old = self.servers[node_id]
        host, port = old.address
        old.close()
        for k, v in old.stats.counters().items():
            self._retired_stats[k] += v
        self._retired_stats["evictions"] += old.nvme.evictions
        nvme = NVMeDir(old.nvme.root, capacity_bytes=old.nvme.capacity_bytes)  # rescans surviving entries
        if same_address:
            fresh = self._spawn_server(node_id, nvme, host=host, port=port)
        else:
            fresh = self._spawn_server(node_id, nvme)
        self.servers[node_id] = fresh
        get_event_log().emit(
            "node_restarted", node=node_id, same_address=same_address,
            notify_clients=notify_clients,
        )
        self.membership.ensure_active(node_id)
        self.ring_epoch.advance()
        if notify_clients:
            for c in self._clients:
                c.admit_node(node_id, fresh.address)
        return fresh

    # -- elastic scale-out ------------------------------------------------------------
    def join_server(
        self,
        weight: float = 1.0,
        nvme_capacity_bytes: Optional[int] = None,
        throttle_fraction: float = 0.75,
    ) -> JoinReport:
        """Live-join a brand-new server: plan → warm → cutover, zero client
        errors (see :mod:`repro.rebalance`).

        Spawns a fresh server on a new node id, computes the exact
        moved-key plan against the current ring, backfills those keys into
        the new node via its bounded data mover (reading from current
        owners, falling back to the PFS), and only then flips the node
        into membership and every existing client's placement under a new
        ring epoch.  Until cutover, no placement anywhere can route to the
        node; after cutover, its cache already holds the moved keys.

        ``weight`` is the node's relative capacity: it receives
        ``weight / total_weight`` of the keyspace (weighted vnodes).
        Returns the :class:`~repro.rebalance.JoinReport`; raises
        :class:`~repro.rebalance.JoinAborted` (after shutting the spawned
        server down) if the warmup cannot complete.
        """
        node_id = max(self.servers) + 1
        nvme = NVMeDir(
            self.workdir / f"nvme{node_id}",
            capacity_bytes=nvme_capacity_bytes
            if nvme_capacity_bytes is not None
            else self.nvme_capacity_bytes,
        )
        fresh = self._spawn_server(node_id, nvme)
        try:
            reference_ring = HashRing(
                nodes=sorted(self.servers),
                vnodes_per_node=self.vnodes_per_node,
                weights=self.node_weights or None,
                probes=self.ring_probes,
            )
            sizes = {
                p: self.pfs.resolve(p).stat().st_size for p in self.paths if self.pfs.exists(p)
            }
            plan = RingDiff(reference_ring).plan_join(
                node_id, self.paths, weight=weight, sizes=sizes,
                planned_epoch=self.ring_epoch.value,
            )

            # Dedicated control-plane client: explicit-node RPCs only, its
            # placement policy is never consulted (and must not be — the
            # joining node is deliberately absent from every placement here).
            control = FTCacheClient(
                servers={i: s.address for i, s in self.servers.items()},
                policy=make_policy("pfs", StaticHash(nodes=sorted(self.servers))),
                pfs=self.pfs,
                ttl=self.ttl,
                timeout_threshold=self.timeout_threshold,
                # Warmup traffic is rare and diagnostic gold: trace all of
                # it (when tracing is on at all) into the cluster-owned
                # buffer, which outlives this short-lived client.
                tracer=Tracer(node="control", buffer=self.control_spans)
                if self.trace_sample_rate > 0.0
                else None,
                wire=self.wire,
            )
        except Exception:
            fresh.close()  # never leak a server thread on a failed plan
            raise
        control.register_address(node_id, fresh.address)

        def cutover() -> int:
            # Ordering is the invariant (see DESIGN.md): membership first —
            # its version bump + subscriber notifications observe pre-join
            # routing — then the cluster's own books, then each client's
            # placement via the admit_node epoch machinery.
            self.membership.ensure_active(node_id)
            self.servers[node_id] = fresh
            if weight != 1.0:
                self.node_weights[node_id] = float(weight)
            for c in self._clients:
                c.admit_node(node_id, fresh.address, weight=weight)
            return self.ring_epoch.advance()

        def rollback() -> None:
            fresh.close()

        coordinator = JoinCoordinator(
            plan=plan,
            control=control,
            pfs=self.pfs,
            cutover=cutover,
            rollback=rollback,
            queue_depth=self.mover_queue_depth,
            throttle_fraction=throttle_fraction,
        )
        try:
            report = coordinator.run()
        finally:
            control.close()
            self.join_reports.append(coordinator.report)
        return report

    @property
    def alive_servers(self) -> list[int]:
        return [i for i, s in self.servers.items() if s.alive]

    def total_stats(self) -> dict:
        out = dict(self._retired_stats)
        for s in self.servers.values():
            for k, v in s.stats.counters().items():
                out[k] += v
            out["evictions"] += s.nvme.evictions
        return out

    def server_snapshots(self) -> dict[int, dict]:
        """Per-server occupancy/traffic snapshot (in-process OP_STAT twin)."""
        out: dict[int, dict] = {}
        for i, s in self.servers.items():
            out[i] = {
                "alive": s.alive,
                "cached_entries": s.nvme.entry_count(),
                "cached_bytes": s.nvme.used_bytes,
                "capacity_bytes": s.nvme.capacity_bytes,
                "evictions": s.nvme.evictions,
                "mover_queue_len": s.mover.queue_len,
                "mover_workers": s.mover.workers,
                **s.stats.counters(),
            }
        return out

    # -- observability -------------------------------------------------------------------
    def dump_obs(self, outdir: str | Path) -> list[Path]:
        """Write every span buffer + the event log as JSONL into ``outdir``.

        One ``spans-<name>.jsonl`` per process-side component (each server,
        each client, the join-control buffer) plus ``events.jsonl`` —
        exactly the layout ``python -m repro.obs`` merges back into
        cross-node trace trees.  Empty buffers write nothing.  Returns the
        files written.
        """
        outdir = Path(outdir)
        outdir.mkdir(parents=True, exist_ok=True)
        sources: list[tuple[str, list[dict]]] = [
            (f"server-{i}", s.tracer.buffer.snapshot()) for i, s in self.servers.items()
        ]
        sources += [
            (f"client-{j}", c.tracer.buffer.snapshot()) for j, c in enumerate(self._clients)
        ]
        sources.append(("control", self.control_spans.snapshot()))
        written: list[Path] = []
        for name, spans in sources:
            if not spans:
                continue
            path = outdir / f"spans-{name}.jsonl"
            path.write_text("".join(json.dumps(s, default=str) + "\n" for s in spans))
            written.append(path)
        events = get_event_log().snapshot()
        if events:
            path = outdir / "events.jsonl"
            path.write_text("".join(json.dumps(e, default=str) + "\n" for e in events))
            written.append(path)
        return written

    # -- lifecycle -----------------------------------------------------------------------
    def close(self) -> None:
        for c in self._clients:
            c.close()
        for s in self.servers.values():
            s.close()
        if self._owns_workdir:
            shutil.rmtree(self.workdir, ignore_errors=True)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
