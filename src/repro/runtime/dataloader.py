"""PyTorch-style data loader over the FT-Cache client.

The paper's reproduction band notes that "PyTorch data-loader integration
[is] natural" — this module is that integration surface, minus the torch
dependency: an iterable, epoch-shuffled, multi-worker batch loader whose
``__iter__`` yields lists of raw sample bytes fetched through the
fault-tolerant cache client.  Swap ``collate`` for a tensor constructor
and it drops into a training loop unchanged.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from ..analysis import lockwitness
from ..sim.rng import derive_seed
from .client import FTCacheClient

__all__ = ["CachedDataLoader"]


def _default_collate(samples: list[bytes]) -> list[bytes]:
    return samples


class CachedDataLoader:
    """Epoch-shuffled batch loader reading through an :class:`FTCacheClient`.

    Parameters mirror ``torch.utils.data.DataLoader`` where they make
    sense: ``batch_size``, ``shuffle``, ``num_workers`` (prefetch threads
    sharing the fault-tolerant client), ``drop_last``, and ``collate``.
    Call :meth:`set_epoch` between epochs, as with
    ``DistributedSampler.set_epoch``.
    """

    def __init__(
        self,
        paths: Sequence[str],
        client: FTCacheClient,
        batch_size: int = 8,
        shuffle: bool = True,
        seed: int = 0,
        num_workers: int = 0,
        drop_last: bool = False,
        collate: Callable[[list[bytes]], Any] = _default_collate,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        self.paths = list(paths)
        self.client = client
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.num_workers = num_workers
        self.drop_last = drop_last
        self.collate = collate
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Select the shuffle permutation for the coming iteration."""
        self.epoch = int(epoch)

    def __len__(self) -> int:
        n = len(self.paths)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size)

    def _order(self) -> np.ndarray:
        if not self.shuffle:
            return np.arange(len(self.paths))
        rng = np.random.default_rng(derive_seed(self.seed, f"epoch:{self.epoch}"))
        return rng.permutation(len(self.paths))

    def __iter__(self) -> Iterator[Any]:
        order = self._order()
        batches = [
            order[i : i + self.batch_size] for i in range(0, len(order), self.batch_size)
        ]
        if self.drop_last and batches and len(batches[-1]) < self.batch_size:
            batches.pop()
        if self.num_workers == 0:
            for batch in batches:
                yield self.collate(self._fetch(batch))
            return
        yield from self._iter_threaded(batches)

    def _fetch(self, batch: np.ndarray) -> list[bytes]:
        """One batch's bytes via :meth:`FTCacheClient.read_many` — on the
        binary wire, same-owner samples pipeline over one socket instead
        of paying a full round trip per sample."""
        return self.client.read_many([self.paths[j] for j in batch])

    def _iter_threaded(self, batches: list[np.ndarray]) -> Iterator[Any]:
        """Bounded prefetch pipeline: workers fetch batches ahead, in order."""
        results: dict[int, Any] = {}
        errors: dict[int, BaseException] = {}
        done = threading.Event()
        work: "queue.Queue[Optional[tuple[int, np.ndarray]]]" = queue.Queue()
        ready = threading.Semaphore(0)
        lock = lockwitness.named_lock("loader-results")

        for item in enumerate(batches):
            work.put(item)
        for _ in range(self.num_workers):
            work.put(None)

        def _worker() -> None:
            while not done.is_set():
                item = work.get()
                if item is None:
                    return
                idx, batch = item
                try:
                    out = self.collate(self._fetch(batch))
                    with lock:
                        results[idx] = out
                except BaseException as exc:  # surfaced to the consumer
                    with lock:
                        errors[idx] = exc
                ready.release()

        workers = [
            threading.Thread(target=_worker, name=f"loader-worker-{i}", daemon=True)
            for i in range(self.num_workers)
        ]
        for w in workers:
            w.start()
        try:
            for idx in range(len(batches)):
                while True:
                    with lock:
                        if idx in errors:
                            raise errors.pop(idx)
                        if idx in results:
                            out = results.pop(idx)
                            break
                    ready.acquire()
                yield out
        finally:
            done.set()
            # Drain the queue so workers blocked on get() can exit.
            try:
                while True:
                    work.get_nowait()
            except queue.Empty:
                pass
            for _ in workers:
                work.put(None)
            for w in workers:
                w.join(timeout=2.0)
