"""Operational CLI for the threaded runtime.

Run standalone cache servers and talk to them — the shape of the
artifact's ``ftc_server`` / ``libftc_client`` pair, as console commands::

    # terminal 1..n: one server per "node"
    python -m repro.runtime serve --node-id 0 --port 7000 \\
        --nvme /tmp/ftc/nvme0 --pfs /tmp/ftc/pfs

    # any terminal: reads through the fault-tolerant client
    python -m repro.runtime get /dataset/train/sample_000001.bin \\
        --servers 0=127.0.0.1:7000,1=127.0.0.1:7001 --pfs /tmp/ftc/pfs

    # health/occupancy of one server
    python -m repro.runtime stat --server 127.0.0.1:7000

    # synthetic dataset into the PFS dir
    python -m repro.runtime populate --pfs /tmp/ftc/pfs --files 64 --bytes 65536
"""

from __future__ import annotations

import argparse
import socket
import sys
import time

from ..core.hash_ring import HashRing
from ..core.fault_policy import make_policy
from ..obs import configure_logging
from .client import FTCacheClient
from .protocol import OP_STAT, Message, recv_message, send_message, set_nodelay
from .server import FTCacheServer
from .storage import NVMeDir, PFSDir

__all__ = ["main"]


def _parse_servers(spec: str) -> dict[int, tuple[str, int]]:
    """``0=host:port,1=host:port`` → {0: (host, port), ...}."""
    out: dict[int, tuple[str, int]] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            node_s, addr = part.split("=", 1)
            host, port_s = addr.rsplit(":", 1)
            out[int(node_s)] = (host, int(port_s))
        except ValueError:
            raise SystemExit(f"bad server spec {part!r}; expected node=host:port") from None
    if not out:
        raise SystemExit("--servers must name at least one server")
    return out


def cmd_serve(args: argparse.Namespace) -> int:
    nvme = NVMeDir(args.nvme, capacity_bytes=args.capacity or None)
    pfs = PFSDir(args.pfs, read_delay=args.pfs_delay)
    server = FTCacheServer(
        args.node_id,
        nvme,
        pfs,
        host=args.host,
        port=args.port,
        mover_workers=args.mover_workers,
        mover_queue_depth=args.mover_queue_depth,
    ).start()
    host, port = server.address
    print(f"ftcache server node {args.node_id} listening on {host}:{port} "
          f"(nvme={args.nvme}, pfs={args.pfs})", flush=True)
    try:
        while args.run_seconds is None or args.run_seconds > 0:
            step = 0.5 if args.run_seconds is None else min(0.5, args.run_seconds)
            time.sleep(step)
            if args.run_seconds is not None:
                args.run_seconds -= step
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
    return 0


def _client(args: argparse.Namespace) -> FTCacheClient:
    servers = _parse_servers(args.servers)
    ring = HashRing(nodes=sorted(servers), vnodes_per_node=args.vnodes)
    policy = make_policy(args.policy, ring)
    return FTCacheClient(
        servers=servers,
        policy=policy,
        pfs=PFSDir(args.pfs),
        ttl=args.ttl,
        timeout_threshold=args.threshold,
        wire=getattr(args, "wire", "binary"),
    )


def cmd_get(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        t0 = time.perf_counter()
        data = client.read(args.path)
        elapsed = (time.perf_counter() - t0) * 1e3
    finally:
        client.close()
    sys.stdout.write(f"{len(data)} bytes in {elapsed:.1f} ms "
                     f"(timeouts={client.stats['timeouts']}, declared={client.stats['declared']})\n")
    if args.out:
        with open(args.out, "wb") as f:
            f.write(data)
        print(f"wrote {args.out}")
    return 0


def cmd_stat(args: argparse.Namespace) -> int:
    host, port_s = args.server.rsplit(":", 1)
    try:
        with socket.create_connection((host, int(port_s)), timeout=args.ttl) as sock:
            sock.settimeout(args.ttl)
            set_nodelay(sock)
            send_message(sock, Message.request(OP_STAT))
            resp = recv_message(sock)
    except OSError as exc:
        print(f"unreachable: {exc}")
        return 1
    if not resp.ok:
        print(f"error: {resp.header.get('reason')}")
        return 1
    h = resp.header
    print(f"node {h.get('node_id')}: {h.get('cached_entries')} entries, "
          f"{h.get('cached_bytes', 0) / 1e6:.1f} MB cached, "
          f"{h.get('hits')} hits / {h.get('misses')} misses, "
          f"{h.get('evictions', 0)} evictions, "
          f"mover {h.get('mover_queue_len', 0)} queued / "
          f"{h.get('mover_dropped', 0)} dropped / {h.get('mover_coalesced', 0)} coalesced")
    return 0


def cmd_populate(args: argparse.Namespace) -> int:
    import numpy as np

    pfs = PFSDir(args.pfs)
    rng = np.random.default_rng(args.seed)
    for i in range(args.files):
        pfs.write(f"/dataset/train/sample_{i:06d}.bin", rng.bytes(args.bytes))
    print(f"wrote {args.files} x {args.bytes} B under {args.pfs}/dataset/train/")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.runtime",
                                     description="FT-Cache threaded runtime tools")
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="stdlib logging level for the repro hierarchy (before the subcommand)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run one cache server")
    p.add_argument("--node-id", type=int, required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0)
    p.add_argument("--nvme", required=True, help="node-local cache directory")
    p.add_argument("--pfs", required=True, help="shared PFS directory")
    p.add_argument("--capacity", type=int, default=0, help="cache capacity bytes (0 = unbounded)")
    p.add_argument("--pfs-delay", type=float, default=0.0)
    p.add_argument("--mover-workers", type=int, default=2,
                   help="data-mover worker threads (bounded recache pool)")
    p.add_argument("--mover-queue-depth", type=int, default=64,
                   help="pending recache entries before drop-oldest overflow")
    p.add_argument("--run-seconds", type=float, default=None, help="exit after N seconds (tests)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("get", help="read one path through the FT client")
    p.add_argument("path")
    p.add_argument("--servers", required=True, help="node=host:port[,node=host:port...]")
    p.add_argument("--pfs", required=True)
    p.add_argument("--policy", default="nvme", help="nvme | pfs | NoFT")
    p.add_argument("--vnodes", type=int, default=100)
    p.add_argument("--ttl", type=float, default=1.0)
    p.add_argument("--threshold", type=int, default=3)
    p.add_argument("--wire", default="binary", choices=("binary", "json"),
                   help="request codec for data ops (binary READ fast path vs legacy JSON)")
    p.add_argument("--out", default="", help="also write the bytes to this file")
    p.set_defaults(fn=cmd_get)

    p = sub.add_parser("stat", help="query one server's occupancy")
    p.add_argument("--server", required=True, help="host:port")
    p.add_argument("--ttl", type=float, default=1.0)
    p.set_defaults(fn=cmd_stat)

    p = sub.add_parser("populate", help="write a synthetic dataset into the PFS dir")
    p.add_argument("--pfs", required=True)
    p.add_argument("--files", type=int, default=64)
    p.add_argument("--bytes", type=int, default=65536)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_populate)

    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
