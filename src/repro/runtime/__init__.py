"""Threaded FT-Cache runtime: real sockets, real files, same FT core.

The laptop-scale twin of the simulated system — servers are threads,
RPCs are TCP, the PFS is a shared directory — sharing the placement and
fault-tolerance logic from :mod:`repro.core` verbatim.
"""

from .chaos import ChaosAction, ChaosMonkey
from .client import FTCacheClient, ReadError
from .cluster import LocalCluster
from .dataloader import CachedDataLoader
from .protocol import Message, ProtocolError, recv_message, send_message
from .server import FTCacheServer, ServerStats
from .storage import NVMeDir, PFSDir

__all__ = [
    "ChaosAction",
    "ChaosMonkey",
    "FTCacheClient",
    "ReadError",
    "LocalCluster",
    "CachedDataLoader",
    "Message",
    "ProtocolError",
    "recv_message",
    "send_message",
    "FTCacheServer",
    "ServerStats",
    "NVMeDir",
    "PFSDir",
]
