"""Chaos harness for the threaded runtime.

Randomly kills (and optionally repairs) cache servers while real client
traffic flows — the sustained-failure torture test a fault-tolerant cache
has to survive before anyone should trust it.  Used by the chaos test
suite and runnable from :mod:`examples`.

The monkey respects a ``min_alive`` floor (a cluster with zero servers is
not an interesting failure mode for a *cache* — the PFS is still the
source of truth) and records every action with its timestamp so tests can
correlate observed client behaviour with injected events.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..obs.events import get_event_log
from .cluster import LocalCluster

__all__ = ["ChaosMonkey", "ChaosAction"]


@dataclass(frozen=True)
class ChaosAction:
    t: float
    kind: str  # "kill" | "restart"
    node_id: int


@dataclass
class ChaosMonkey:
    """Background kill/repair loop against a :class:`LocalCluster`."""

    cluster: LocalCluster
    #: mean seconds between chaos events
    interval: float = 0.5
    #: probability an event repairs a dead node instead of killing one
    restart_prob: float = 0.4
    #: never drop below this many live servers
    min_alive: int = 1
    kill_mode: str = "hang"
    seed: int = 0
    actions: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not (0.0 <= self.restart_prob <= 1.0):
            raise ValueError("restart_prob must be in [0, 1]")
        if self.min_alive < 1:
            raise ValueError("min_alive must be >= 1")
        self._rng = np.random.default_rng(self.seed)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = time.monotonic()

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> "ChaosMonkey":
        if self._thread is not None:
            raise RuntimeError("chaos monkey already unleashed")
        self._thread = threading.Thread(target=self._run, name="chaos-monkey", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosMonkey":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the loop --------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            gap = float(self._rng.exponential(self.interval))
            if self._stop.wait(timeout=min(gap, 2.0)):
                return
            self._one_event()

    def _one_event(self) -> None:
        alive = self.cluster.alive_servers
        dead = [i for i in self.cluster.servers if i not in alive]
        do_restart = dead and (self._rng.random() < self.restart_prob or len(alive) <= self.min_alive)
        if do_restart:
            node = int(dead[int(self._rng.integers(0, len(dead)))])
            self.cluster.restart_server(node)
            self._record("restart", node)
        elif len(alive) > self.min_alive:
            node = int(alive[int(self._rng.integers(0, len(alive)))])
            self.cluster.kill_server(node, mode=self.kill_mode)
            self._record("kill", node)

    def _record(self, kind: str, node: int) -> None:
        self.actions.append(ChaosAction(t=time.monotonic() - self._t0, kind=kind, node_id=node))
        get_event_log().emit("chaos", action=kind, node=node)

    # -- reporting -------------------------------------------------------------------
    @property
    def kills(self) -> int:
        return sum(1 for a in self.actions if a.kind == "kill")

    @property
    def restarts(self) -> int:
        return sum(1 for a in self.actions if a.kind == "restart")

    def summary(self) -> str:
        return (
            f"chaos: {self.kills} kills, {self.restarts} restarts over "
            f"{self.actions[-1].t:.1f}s" if self.actions else "chaos: no events"
        )
