"""Storage backends for the threaded runtime.

* :class:`NVMeDir` — a local directory standing in for a node's NVMe
  volume (cache entries are plain files keyed by a sanitised path).
* :class:`PFSDir` — a shared directory standing in for the parallel file
  system, with an optional artificial per-read delay so cache hits are
  measurably cheaper on a laptop (the real gap between Lustre and local
  flash doesn't exist between two directories on the same disk).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from ..analysis import lockwitness
from ..obs.events import get_event_log

__all__ = ["NVMeDir", "PFSDir"]

#: in-flight atomic-write staging files: distinguishable by prefix so scans
#: (entry_count, the __init__ rescan) can exclude them, and a rescan can
#: safely unlink leftovers from a writer that died mid-install
_TMP_PREFIX = ".tmp-"


def _entry_name(key: str) -> str:
    """Filesystem-safe cache-entry name for an arbitrary path key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=16).hexdigest()
    tail = os.path.basename(key)[-40:] or "entry"
    safe_tail = "".join(c if c.isalnum() or c in "._-" else "_" for c in tail)
    return f"{digest}_{safe_tail}"


class NVMeDir:
    """Node-local cache directory: byte accounting, atomic writes, LRU eviction.

    Capacity pressure evicts least-recently-used entries (same semantics as
    the sim-side :class:`repro.hvac.cache_store.CacheStore`) instead of
    refusing the write — only an entry larger than the whole device still
    raises :class:`OSError`.  Readers racing an eviction see the entry
    disappear between :meth:`contains` and :meth:`read`; callers treat the
    resulting ``FileNotFoundError`` as a miss and fall through to the PFS.
    """

    def __init__(self, root: str | Path, capacity_bytes: Optional[int] = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity_bytes = capacity_bytes
        self._lock = lockwitness.named_lock("nvme-lru")
        self.evictions = 0
        # Recency order for surviving entries: oldest mtime first, so a warm
        # rejoin resumes with a sensible (if approximate) LRU order.
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        for f in sorted(self.root.iterdir(), key=lambda f: f.stat().st_mtime):
            if not f.is_file():
                continue
            if f.name.startswith(_TMP_PREFIX):
                # Leftover staging file from a writer that died mid-install:
                # never a valid entry, so reclaim the bytes instead of
                # counting them into the LRU.
                try:
                    f.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass
                continue
            self._lru[f.name] = f.stat().st_size
        self._used = sum(self._lru.values())

    @property
    def used_bytes(self) -> int:
        return self._used

    def _path(self, key: str) -> Path:
        return self.root / _entry_name(key)

    def contains(self, key: str) -> bool:
        return self._path(key).exists()

    def read(self, key: str) -> bytes:
        data = self._path(key).read_bytes()
        with self._lock:  # LRU refresh on hit
            name = _entry_name(key)
            if name in self._lru:
                self._lru.move_to_end(name)
        return data

    def open_read(self, key: str):
        """Open an installed entry for zero-copy serving: ``(file, size)``
        or None when the entry is absent (miss, or lost the race to an
        eviction).  The caller owns the file object and must close it.

        The returned descriptor pins the inode, so a concurrent eviction
        unlinking the entry mid-``sendfile`` is harmless — the bytes
        stream from the still-open file.  The LRU refresh mirrors
        :meth:`read`.
        """
        try:
            f = self._path(key).open("rb")
        except OSError:
            return None
        size = os.fstat(f.fileno()).st_size
        with self._lock:  # LRU refresh on hit
            name = _entry_name(key)
            if name in self._lru:
                self._lru.move_to_end(name)
        return f, size

    def write(self, key: str, data: bytes) -> None:
        """Atomically install a cache entry, evicting LRU entries if needed.

        A concurrent writer of the same key is harmless: both write the
        same bytes and the rename is atomic on POSIX.  Raises ``OSError``
        only for an entry that cannot fit even in an empty cache.
        """
        if self.capacity_bytes is not None and len(data) > self.capacity_bytes:
            raise OSError(f"entry of {len(data)} bytes exceeds cache capacity {self.capacity_bytes}")
        name = _entry_name(key)
        evicted: list[tuple[str, int]] = []
        # The stage/rename/unlink I/O stays inside the critical section on purpose:
        # eviction choice, byte accounting, and the install must commit atomically
        # (a reader may race an eviction; the accounting may not).  Everything here
        # is local-NVMe single-entry I/O, never network or unbounded waits.
        with self._lock:  # ftlint: disable=RT001 -- atomic install: accounting+file ops must commit together (local NVMe, bounded)
            old_size = self._lru.pop(name, None)
            if old_size is not None:
                self._used -= old_size
            if self.capacity_bytes is not None:
                while self._used + len(data) > self.capacity_bytes and self._lru:
                    victim, vsize = self._lru.popitem(last=False)
                    try:
                        (self.root / victim).unlink()
                    except FileNotFoundError:  # pragma: no cover - already raced away
                        pass
                    self._used -= vsize
                    self.evictions += 1
                    evicted.append((victim, vsize))
            target = self._path(key)
            tmp = self.root / f"{_TMP_PREFIX}{os.getpid()}-{threading.get_ident()}-{name}"
            try:
                tmp.write_bytes(data)
                os.replace(tmp, target)
            except OSError:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
            self._lru[name] = len(data)
            self._used += len(data)
        # Event emission stays outside the critical section (RT001): the
        # counters above are the atomic truth; events are best-effort order.
        for victim, vsize in evicted:
            get_event_log().emit("eviction", store=self.root.name, entry=victim, nbytes=vsize)

    def drop(self, key: str) -> None:
        path = self._path(key)
        # Same contract as write(): the stat/unlink must be atomic with the
        # accounting update or a concurrent write() would double-count bytes.
        with self._lock:  # ftlint: disable=RT001 -- unlink must be atomic with LRU accounting (local NVMe, single entry)
            try:
                size = path.stat().st_size
                path.unlink()
            except FileNotFoundError:
                return
            self._lru.pop(path.name, None)
            self._used = max(0, self._used - size)

    def clear(self) -> None:
        """Empty the cache.  Only the accounting reset runs under the lock
        (RT001: a whole-directory unlink loop is unbounded I/O and has no
        business in a critical section); every installed entry is LRU-tracked,
        so the snapshot of names taken under the lock is complete, and the
        unlinks proceed outside it exactly like evictions racing readers."""
        with self._lock:
            victims = list(self._lru)
            self._lru.clear()
            self._used = 0
        for name in victims:
            try:
                (self.root / name).unlink()
            except FileNotFoundError:
                pass

    def entry_count(self) -> int:
        """Installed entries only — in-flight ``.tmp-*`` staging files are
        not cache entries and must not inflate occupancy reports."""
        return sum(
            1 for f in self.root.iterdir() if f.is_file() and not f.name.startswith(_TMP_PREFIX)
        )


class PFSDir:
    """Shared 'parallel file system' directory with optional read delay."""

    def __init__(self, root: str | Path, read_delay: float = 0.0):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if read_delay < 0:
            raise ValueError("read_delay must be >= 0")
        self.read_delay = read_delay
        self._reads = 0
        self._lock = lockwitness.named_lock("pfs-reads")

    @property
    def reads(self) -> int:
        return self._reads

    def resolve(self, key: str) -> Path:
        """Map a dataset key (absolute-ish path) into this PFS root."""
        rel = key.lstrip("/")
        path = (self.root / rel).resolve()
        if not str(path).startswith(str(self.root.resolve())):
            raise PermissionError(f"path escape: {key!r}")
        return path

    def exists(self, key: str) -> bool:
        return self.resolve(key).exists()

    def read(self, key: str) -> bytes:
        if self.read_delay:
            time.sleep(self.read_delay)
        data = self.resolve(key).read_bytes()
        with self._lock:
            self._reads += 1
        return data

    def write(self, key: str, data: bytes) -> None:
        path = self.resolve(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(data)
