"""Terminal visualisation of experiment results."""

from .ascii import bar_chart, histogram, line_plot
from .text import heading, minutes, pct, render_series, render_table

__all__ = [
    "bar_chart",
    "histogram",
    "line_plot",
    "heading",
    "minutes",
    "pct",
    "render_series",
    "render_table",
]
