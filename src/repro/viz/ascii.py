"""Terminal charts for experiment output (no plotting dependencies).

The experiment CLI renders its series as Unicode block charts so the
paper's figures are *visible*, not just tabulated, in any terminal:

* :func:`bar_chart` — horizontal bars with value labels (Fig 5's grouped
  runtimes, Fig 6b's receiver counts);
* :func:`line_plot` — multi-series braille-free scatter on a character
  grid (Fig 1's weekly series);
* :func:`histogram` — distribution of a sample (detector latencies).

Everything returns a plain ``str``; nothing writes to stdout.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = ["bar_chart", "line_plot", "histogram"]

_BLOCKS = " ▏▎▍▌▋▊▉█"
_MARKERS = "●○▲△■□◆◇"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2e}"
    return f"{v:.4g}"


def bar_chart(
    labels: Sequence,
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal bar chart with fractional-block resolution."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return title
    if any(v < 0 for v in values):
        raise ValueError("bar_chart takes non-negative values")
    vmax = max(values) or 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = [title] if title else []
    for label, v in zip(labels, values):
        filled = v / vmax * width
        whole = int(filled)
        frac = int((filled - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        lines.append(f"{str(label).rjust(label_w)} │{bar.ljust(width)}│ {_fmt(v)}{unit}")
    return "\n".join(lines)


def line_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Multi-series character-grid plot with a shared axis.

    ``series`` maps a name to ``(xs, ys)``; each series gets its own
    marker, listed in the legend.  NaNs are skipped.
    """
    if not series:
        return title
    pts_all = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        pts_all.extend((x, y) for x, y in zip(xs, ys) if not (math.isnan(y) or math.isnan(x)))
    if not pts_all:
        return title
    x_lo = min(p[0] for p in pts_all)
    x_hi = max(p[0] for p in pts_all)
    y_lo = min(p[1] for p in pts_all)
    y_hi = max(p[1] for p in pts_all)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for i, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if math.isnan(x) or math.isnan(y):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    y_hi_s, y_lo_s = _fmt(y_hi), _fmt(y_lo)
    gutter = max(len(y_hi_s), len(y_lo_s))
    lines = [title] if title else []
    if y_label:
        lines.append(y_label)
    for r, row in enumerate(grid):
        if r == 0:
            prefix = y_hi_s.rjust(gutter)
        elif r == height - 1:
            prefix = y_lo_s.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix} ┤{''.join(row)}")
    lines.append(" " * gutter + " └" + "─" * width)
    lines.append(" " * (gutter + 2) + _fmt(x_lo) + _fmt(x_hi).rjust(width - len(_fmt(x_lo))))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """Binned distribution as a bar chart with range labels."""
    if bins < 1:
        raise ValueError("bins must be >= 1")
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        return title
    lo = min(vals) if lo is None else lo
    hi = max(vals) if hi is None else hi
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for v in vals:
        idx = min(bins - 1, max(0, int((v - lo) / span * bins)))
        counts[idx] += 1
    labels = [
        f"[{_fmt(lo + span * i / bins)}, {_fmt(lo + span * (i + 1) / bins)})" for i in range(bins)
    ]
    return bar_chart(labels, counts, width=width, title=title)
