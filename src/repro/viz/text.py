"""Generic text-rendering helpers (tables, headings, series).

Dependency-light on purpose: used by the experiment reports, the run
report, and anything else that prints aligned text without pulling in the
experiment package.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_series", "heading", "pct", "minutes"]



def heading(title: str, char: str = "=") -> str:
    return f"{title}\n{char * len(title)}"


def pct(x: float, digits: int = 1) -> str:
    return f"{x:.{digits}f}%"


def minutes(seconds: float, digits: int = 1) -> str:
    return f"{seconds / 60:.{digits}f} min"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Any]], indent: str = "") -> str:
    """Fixed-width text table (no external deps, stable for goldens)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    sep = "  "
    lines.append(indent + sep.join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(indent + sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(indent + sep.join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[Any], ys: Sequence[Any], indent: str = "  ") -> str:
    """One labelled x→y series, one point per line."""
    lines = [f"{name}:"]
    for x, y in zip(xs, ys):
        lines.append(f"{indent}{x}: {y}")
    return "\n".join(lines)
