"""Consistent hashing ring with virtual nodes — the paper's core mechanism.

Both nodes and keys hash onto a logical circle of 64-bit positions; a key is
owned by the first node position at or clockwise-after the key's position
(Sec IV-B, Fig 4).  Each physical node is represented by ``vnodes_per_node``
*virtual nodes* so that, when a node fails, its keys scatter across many
survivors instead of landing entirely on one clockwise neighbour — this is
precisely the load-balancing effect measured in the paper's Figure 6(b).

Two guarantees make the ring the right recaching structure (versus the
original HVAC's hash-mod-N):

* **Minimal movement on failure** — removing a node re-homes *only* the keys
  that node owned; every other key keeps its owner (property-tested in
  ``tests/core/test_hash_ring.py``).
* **Minimal movement on join** — an added node steals keys only for itself.

Implementation: positions live in a sorted ``uint64`` NumPy array with a
parallel owner-index array, so a lookup is one ``searchsorted`` (O(log V))
and bulk lookups over hundreds of thousands of keys vectorise to a single
``searchsorted`` call.  Membership changes rebuild the arrays from the
per-node vnode cache in O(V log V) — for 1024 nodes × 100 vnodes that is
~10⁵ elements, a few milliseconds, and far cheaper than the data movement
it decides.  An ordered-map variant matching the paper's ``std::map``
implementation lives in :mod:`repro.core.avl` for the ablation study.

Two refinements serve elastic scale-out (:mod:`repro.rebalance`):

* **Capacity weights** — a node with weight ``w`` carries ``round(w ×
  vnodes_per_node)`` virtual nodes, so a join can bring a bigger (or
  smaller) NVMe and receive a proportional share of the keyspace.
  :meth:`add_node` accepts the weight at join time.
* **Multiprobe lookup** (``probes > 1``) — each key derives ``probes``
  candidate ring positions (SplitMix64 remixes of its hash) and is owned
  by the probe whose clockwise successor is *nearest*.  This smooths the
  arc-length variance that makes one node a hotspot at low vnode counts,
  without growing the ring (the classic multi-probe consistent hashing
  trade: O(probes) lookups for O(1) memory).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .hashing import hash64, splitmix64
from .placement import Key, NodeId, PlacementPolicy

__all__ = ["HashRing", "EmptyRingError", "DEFAULT_VNODES"]

#: Paper's production setting: "The virtual node count is set to 100 per
#: physical node" (Sec V-A).
DEFAULT_VNODES = 100


class EmptyRingError(LookupError):
    """Lookup attempted on a ring with no nodes."""


def _vnode_token(node: NodeId, replica: int) -> str:
    return f"{node}#vn{replica}"


class HashRing(PlacementPolicy):
    """Consistent-hashing ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial members (any hashable ids; the cluster uses ints, the
        runtime uses ``host:port`` strings).
    vnodes_per_node:
        Virtual nodes per physical node.  More vnodes → more receivers
        share a failed node's load, at the cost of a larger ring
        (Fig 6b trade-off).  Defaults to the paper's 100.
    algo:
        Hash algorithm for both vnode positions and keys.

    Examples
    --------
    >>> ring = HashRing(nodes=range(4), vnodes_per_node=100)
    >>> owner = ring.lookup("/data/train/sample_000042.tfrecord")
    >>> ring.remove_node(owner)          # node failure
    >>> ring.lookup("/data/train/sample_000042.tfrecord") in ring.nodes
    True
    """

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        vnodes_per_node: int = DEFAULT_VNODES,
        algo: str = "blake2b",
        weights: Optional[dict] = None,
        probes: int = 1,
    ):
        if vnodes_per_node < 1:
            raise ValueError(f"vnodes_per_node must be >= 1, got {vnodes_per_node}")
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.vnodes_per_node = int(vnodes_per_node)
        self.algo = algo
        #: multiprobe lookup width; 1 = classic consistent hashing, k > 1
        #: hashes each key k ways and takes the probe with the smallest
        #: clockwise gap to its successor vnode (hotspot smoothing)
        self.probes = int(probes)
        self._probe_salts = np.fromiter(
            (hash64(f"probe-salt:{j}", algo) for j in range(1, self.probes)),
            dtype=np.uint64,
            count=self.probes - 1,
        )
        #: per-node capacity weight; a node with weight w gets
        #: ``round(w × vnodes_per_node)`` virtual nodes (min 1), so its
        #: share of the keyspace scales with its capacity — heterogeneous
        #: NVMe sizes are first-class
        self._weights: dict[NodeId, float] = dict(weights) if weights else {}
        for node, w in self._weights.items():
            if w <= 0:
                raise ValueError(f"weight for node {node!r} must be positive, got {w}")
        self._members: dict[NodeId, np.ndarray] = {}
        self._vnode_cache: dict[NodeId, np.ndarray] = {}
        self._positions = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=object)
        self._dirty = False
        for n in nodes:
            self._admit(n)
        self._rebuild()

    # -- membership -----------------------------------------------------------
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._members)

    def vnodes_of(self, node: NodeId) -> int:
        """Virtual-node count for ``node`` (weight-scaled, at least 1)."""
        weight = self._weights.get(node, 1.0)
        return max(1, int(round(weight * self.vnodes_per_node)))

    def weight_of(self, node: NodeId) -> float:
        return self._weights.get(node, 1.0)

    def _vnode_hashes(self, node: NodeId) -> np.ndarray:
        count = self.vnodes_of(node)
        cached = self._vnode_cache.get(node)
        if cached is None or len(cached) != count:
            cached = np.fromiter(
                (hash64(_vnode_token(node, r), self.algo) for r in range(count)),
                dtype=np.uint64,
                count=count,
            )
            self._vnode_cache[node] = cached
        return cached

    def _admit(self, node: NodeId) -> None:
        if node in self._members:
            raise ValueError(f"node {node!r} already on the ring")
        self._members[node] = self._vnode_hashes(node)
        self._dirty = True

    def add_node(self, node: NodeId, weight: Optional[float] = None) -> None:
        """Admit ``node``, optionally with a capacity ``weight`` (default 1.0).

        Passing a weight at join time is what lets an elastic scale-out
        bring heterogeneous hardware: the new node's share of the keyspace
        is ``weight / total_weight`` rather than ``1/N``.
        """
        if weight is not None:
            if weight <= 0:
                raise ValueError(f"weight for node {node!r} must be positive, got {weight}")
            self._weights[node] = float(weight)
        self._admit(node)
        self._rebuild()

    def remove_node(self, node: NodeId) -> None:
        if node not in self._members:
            raise KeyError(f"node {node!r} not on the ring")
        del self._members[node]
        self._dirty = True
        self._rebuild()

    def _rebuild(self) -> None:
        if not self._dirty:
            return
        self._dirty = False
        if not self._members:
            self._positions = np.empty(0, dtype=np.uint64)
            self._owners = np.empty(0, dtype=object)
            return
        nodes = list(self._members)
        pos = np.concatenate([self._members[n] for n in nodes])
        counts = [len(self._members[n]) for n in nodes]
        own_idx = np.repeat(np.arange(len(nodes)), counts)
        # Deterministic ordering under (vanishingly rare) position collisions:
        # sort by (position, owner index).
        order = np.lexsort((own_idx, pos))
        self._positions = pos[order]
        owners = np.empty(len(pos), dtype=object)
        for i, n in enumerate(nodes):
            owners[own_idx == i] = n
        self._owners = owners[order]

    # -- lookups -----------------------------------------------------------------
    def _probe_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        """Shape (probes, n) candidate positions; row 0 is the raw hash."""
        h = key_hashes.astype(np.uint64, copy=False)
        if self.probes == 1:
            return h[np.newaxis, :]
        rows = [h]
        for salt in self._probe_salts:
            rows.append(splitmix64(h ^ salt))
        return np.stack(rows)

    def _probe_owners(
        self, positions: np.ndarray, owners: np.ndarray, key_hashes: np.ndarray
    ) -> np.ndarray:
        """Multiprobe owner selection against an arbitrary (positions, owners)
        view — shared by the live ring, the exclusion view, and the
        candidate-join view so all three agree bit-for-bit."""
        ph = self._probe_hashes(key_hashes)  # (probes, n)
        idx = np.searchsorted(positions, ph, side="right")
        idx[idx == len(positions)] = 0
        if self.probes == 1:
            return owners[idx[0]]
        # Clockwise gap from each probe to its successor vnode; uint64
        # modular subtraction wraps correctly past the top of the ring.
        with np.errstate(over="ignore"):
            gaps = positions[idx] - ph
        best = np.argmin(gaps, axis=0)
        return owners[idx[best, np.arange(ph.shape[1])]]

    def lookup_hash(self, key_hash: int) -> NodeId:
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        if self.probes == 1:
            idx = int(np.searchsorted(self._positions, np.uint64(key_hash), side="right"))
            if idx == len(self._positions):
                idx = 0  # wrap past the top of the ring
            return self._owners[idx]
        return self._probe_owners(
            self._positions, self._owners, np.array([key_hash], dtype=np.uint64)
        )[0]

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        return self._probe_owners(self._positions, self._owners, key_hashes)

    def lookup_hashes_excluding(self, key_hashes: np.ndarray, exclude: NodeId) -> np.ndarray:
        """Owners as if ``exclude`` had been removed — without mutating the ring.

        Equivalent to ``deepcopy → remove_node → lookup_hashes`` but O(V)
        masking plus one ``searchsorted``; this is what makes the 500-trial
        load-redistribution sweep (Fig 6b) tractable at 1024 nodes ×
        1000 vnodes.
        """
        if exclude not in self._members:
            raise KeyError(f"node {exclude!r} not on the ring")
        if len(self._members) <= 1:
            raise EmptyRingError("removing the only node leaves an empty ring")
        keep = self._owners != exclude
        return self._probe_owners(self._positions[keep], self._owners[keep], key_hashes)

    def lookup_hashes_including(
        self, key_hashes: np.ndarray, node: NodeId, weight: Optional[float] = None
    ) -> np.ndarray:
        """Owners as if ``node`` had been added — without mutating the ring.

        This is the planning half of an elastic join (``repro.rebalance``):
        the coordinator diffs these owners against :meth:`lookup_hashes` to
        find exactly the keys the candidate would steal, *before* touching
        any live placement.  Mirrors :meth:`_rebuild`'s concatenate +
        ``lexsort((owner, position))`` ordering so the answer is
        bit-for-bit what :meth:`add_node` would later produce.
        """
        if node in self._members:
            raise ValueError(f"node {node!r} already on the ring")
        if weight is not None and weight <= 0:
            raise ValueError(f"weight for node {node!r} must be positive, got {weight}")
        w = float(weight) if weight is not None else self._weights.get(node, 1.0)
        count = max(1, int(round(w * self.vnodes_per_node)))
        cand = np.fromiter(
            (hash64(_vnode_token(node, r), self.algo) for r in range(count)),
            dtype=np.uint64,
            count=count,
        )
        nodes = list(self._members) + [node]
        pos = np.concatenate([self._members[n] for n in self._members] + [cand])
        counts = [len(self._members[n]) for n in self._members] + [count]
        own_idx = np.repeat(np.arange(len(nodes)), counts)
        order = np.lexsort((own_idx, pos))
        owners = np.empty(len(pos), dtype=object)
        for i, n in enumerate(nodes):
            owners[own_idx == i] = n
        return self._probe_owners(pos[order], owners[order], key_hashes)

    def successors(self, key: Key, k: Optional[int] = None) -> list[NodeId]:
        """First ``k`` *distinct* nodes clockwise from ``key``'s position.

        ``k=1`` is the owner; larger ``k`` gives the preference list used by
        the replicated-caching extension (``repro.hvac.server`` replicas).
        """
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        if k is None:
            k = 1
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self._members))
        h = hash64(key, self.algo)
        start = int(np.searchsorted(self._positions, np.uint64(h), side="right"))
        out: list[NodeId] = []
        seen: set[NodeId] = set()
        n = len(self._positions)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == k:
                    break
        return out

    # -- introspection / analysis --------------------------------------------------
    @property
    def ring_size(self) -> int:
        """Total number of virtual-node positions on the ring."""
        return len(self._positions)

    def vnode_positions(self, node: NodeId) -> np.ndarray:
        """Sorted ring positions of ``node``'s virtual nodes."""
        if node not in self._members:
            raise KeyError(f"node {node!r} not on the ring")
        return np.sort(self._members[node])

    def positions_unit(self) -> np.ndarray:
        """All vnode positions mapped to [0, 1) (Fig 4 presentation)."""
        return self._positions.astype(np.float64) / 2.0**64

    def arc_fractions(self) -> dict[NodeId, float]:
        """Fraction of the ring's keyspace each node owns.

        With many vnodes these concentrate around ``1 / len(nodes)``; the
        spread quantifies expected load imbalance for uniform keys.
        """
        if len(self._positions) == 0:
            return {}
        pos = self._positions.astype(np.float64)
        # Arc ending at position i is owned by owner[i]; arcs are the gaps
        # between consecutive positions, wrapping at the top.
        gaps = np.empty_like(pos)
        gaps[1:] = pos[1:] - pos[:-1]
        gaps[0] = pos[0] + (2.0**64 - pos[-1])
        fractions: dict[NodeId, float] = {n: 0.0 for n in self._members}
        for owner, gap in zip(self._owners, gaps):
            fractions[owner] += gap
        total = 2.0**64
        return {n: g / total for n, g in fractions.items()}

    def memory_footprint(self) -> int:
        """Approximate bytes held by the ring arrays (vnode-count trade-off)."""
        return int(self._positions.nbytes + self._owners.nbytes) + sum(
            a.nbytes for a in self._members.values()
        )

    def clone(self) -> "HashRing":
        """Independent copy with identical membership, weights and probes.

        Join planning snapshots the ring this way so the plan is computed
        against frozen state while the live ring keeps serving lookups.
        """
        return HashRing(
            nodes=list(self._members),
            vnodes_per_node=self.vnodes_per_node,
            algo=self.algo,
            weights={n: self._weights[n] for n in self._weights if n in self._members},
            probes=self.probes,
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HashRing(nodes={len(self._members)}, vnodes_per_node={self.vnodes_per_node}, "
            f"algo={self.algo!r}, probes={self.probes})"
        )
