"""Consistent hashing ring with virtual nodes — the paper's core mechanism.

Both nodes and keys hash onto a logical circle of 64-bit positions; a key is
owned by the first node position at or clockwise-after the key's position
(Sec IV-B, Fig 4).  Each physical node is represented by ``vnodes_per_node``
*virtual nodes* so that, when a node fails, its keys scatter across many
survivors instead of landing entirely on one clockwise neighbour — this is
precisely the load-balancing effect measured in the paper's Figure 6(b).

Two guarantees make the ring the right recaching structure (versus the
original HVAC's hash-mod-N):

* **Minimal movement on failure** — removing a node re-homes *only* the keys
  that node owned; every other key keeps its owner (property-tested in
  ``tests/core/test_hash_ring.py``).
* **Minimal movement on join** — an added node steals keys only for itself.

Implementation: positions live in a sorted ``uint64`` NumPy array with a
parallel owner-index array, so a lookup is one ``searchsorted`` (O(log V))
and bulk lookups over hundreds of thousands of keys vectorise to a single
``searchsorted`` call.  Membership changes rebuild the arrays from the
per-node vnode cache in O(V log V) — for 1024 nodes × 100 vnodes that is
~10⁵ elements, a few milliseconds, and far cheaper than the data movement
it decides.  An ordered-map variant matching the paper's ``std::map``
implementation lives in :mod:`repro.core.avl` for the ablation study.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from .hashing import hash64
from .placement import Key, NodeId, PlacementPolicy

__all__ = ["HashRing", "EmptyRingError", "DEFAULT_VNODES"]

#: Paper's production setting: "The virtual node count is set to 100 per
#: physical node" (Sec V-A).
DEFAULT_VNODES = 100


class EmptyRingError(LookupError):
    """Lookup attempted on a ring with no nodes."""


def _vnode_token(node: NodeId, replica: int) -> str:
    return f"{node}#vn{replica}"


class HashRing(PlacementPolicy):
    """Consistent-hashing ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial members (any hashable ids; the cluster uses ints, the
        runtime uses ``host:port`` strings).
    vnodes_per_node:
        Virtual nodes per physical node.  More vnodes → more receivers
        share a failed node's load, at the cost of a larger ring
        (Fig 6b trade-off).  Defaults to the paper's 100.
    algo:
        Hash algorithm for both vnode positions and keys.

    Examples
    --------
    >>> ring = HashRing(nodes=range(4), vnodes_per_node=100)
    >>> owner = ring.lookup("/data/train/sample_000042.tfrecord")
    >>> ring.remove_node(owner)          # node failure
    >>> ring.lookup("/data/train/sample_000042.tfrecord") in ring.nodes
    True
    """

    def __init__(
        self,
        nodes: Iterable[NodeId] = (),
        vnodes_per_node: int = DEFAULT_VNODES,
        algo: str = "blake2b",
        weights: Optional[dict] = None,
    ):
        if vnodes_per_node < 1:
            raise ValueError(f"vnodes_per_node must be >= 1, got {vnodes_per_node}")
        self.vnodes_per_node = int(vnodes_per_node)
        self.algo = algo
        #: per-node capacity weight; a node with weight w gets
        #: ``round(w × vnodes_per_node)`` virtual nodes (min 1), so its
        #: share of the keyspace scales with its capacity — heterogeneous
        #: NVMe sizes are first-class
        self._weights: dict[NodeId, float] = dict(weights) if weights else {}
        for node, w in self._weights.items():
            if w <= 0:
                raise ValueError(f"weight for node {node!r} must be positive, got {w}")
        self._members: dict[NodeId, np.ndarray] = {}
        self._vnode_cache: dict[NodeId, np.ndarray] = {}
        self._positions = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=object)
        self._dirty = False
        for n in nodes:
            self._admit(n)
        self._rebuild()

    # -- membership -----------------------------------------------------------
    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._members)

    def vnodes_of(self, node: NodeId) -> int:
        """Virtual-node count for ``node`` (weight-scaled, at least 1)."""
        weight = self._weights.get(node, 1.0)
        return max(1, int(round(weight * self.vnodes_per_node)))

    def weight_of(self, node: NodeId) -> float:
        return self._weights.get(node, 1.0)

    def _vnode_hashes(self, node: NodeId) -> np.ndarray:
        count = self.vnodes_of(node)
        cached = self._vnode_cache.get(node)
        if cached is None or len(cached) != count:
            cached = np.fromiter(
                (hash64(_vnode_token(node, r), self.algo) for r in range(count)),
                dtype=np.uint64,
                count=count,
            )
            self._vnode_cache[node] = cached
        return cached

    def _admit(self, node: NodeId) -> None:
        if node in self._members:
            raise ValueError(f"node {node!r} already on the ring")
        self._members[node] = self._vnode_hashes(node)
        self._dirty = True

    def add_node(self, node: NodeId) -> None:
        self._admit(node)
        self._rebuild()

    def remove_node(self, node: NodeId) -> None:
        if node not in self._members:
            raise KeyError(f"node {node!r} not on the ring")
        del self._members[node]
        self._dirty = True
        self._rebuild()

    def _rebuild(self) -> None:
        if not self._dirty:
            return
        self._dirty = False
        if not self._members:
            self._positions = np.empty(0, dtype=np.uint64)
            self._owners = np.empty(0, dtype=object)
            return
        nodes = list(self._members)
        pos = np.concatenate([self._members[n] for n in nodes])
        counts = [len(self._members[n]) for n in nodes]
        own_idx = np.repeat(np.arange(len(nodes)), counts)
        # Deterministic ordering under (vanishingly rare) position collisions:
        # sort by (position, owner index).
        order = np.lexsort((own_idx, pos))
        self._positions = pos[order]
        owners = np.empty(len(pos), dtype=object)
        for i, n in enumerate(nodes):
            owners[own_idx == i] = n
        self._owners = owners[order]

    # -- lookups -----------------------------------------------------------------
    def lookup_hash(self, key_hash: int) -> NodeId:
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        idx = int(np.searchsorted(self._positions, np.uint64(key_hash), side="right"))
        if idx == len(self._positions):
            idx = 0  # wrap past the top of the ring
        return self._owners[idx]

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        idx = np.searchsorted(self._positions, key_hashes.astype(np.uint64, copy=False), side="right")
        idx[idx == len(self._positions)] = 0
        return self._owners[idx]

    def lookup_hashes_excluding(self, key_hashes: np.ndarray, exclude: NodeId) -> np.ndarray:
        """Owners as if ``exclude`` had been removed — without mutating the ring.

        Equivalent to ``deepcopy → remove_node → lookup_hashes`` but O(V)
        masking plus one ``searchsorted``; this is what makes the 500-trial
        load-redistribution sweep (Fig 6b) tractable at 1024 nodes ×
        1000 vnodes.
        """
        if exclude not in self._members:
            raise KeyError(f"node {exclude!r} not on the ring")
        if len(self._members) <= 1:
            raise EmptyRingError("removing the only node leaves an empty ring")
        keep = self._owners != exclude
        positions = self._positions[keep]
        owners = self._owners[keep]
        idx = np.searchsorted(positions, key_hashes.astype(np.uint64, copy=False), side="right")
        idx[idx == len(positions)] = 0
        return owners[idx]

    def successors(self, key: Key, k: Optional[int] = None) -> list[NodeId]:
        """First ``k`` *distinct* nodes clockwise from ``key``'s position.

        ``k=1`` is the owner; larger ``k`` gives the preference list used by
        the replicated-caching extension (``repro.hvac.server`` replicas).
        """
        if len(self._positions) == 0:
            raise EmptyRingError("hash ring has no nodes")
        if k is None:
            k = 1
        if k < 1:
            raise ValueError("k must be >= 1")
        k = min(k, len(self._members))
        h = hash64(key, self.algo)
        start = int(np.searchsorted(self._positions, np.uint64(h), side="right"))
        out: list[NodeId] = []
        seen: set[NodeId] = set()
        n = len(self._positions)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == k:
                    break
        return out

    # -- introspection / analysis --------------------------------------------------
    @property
    def ring_size(self) -> int:
        """Total number of virtual-node positions on the ring."""
        return len(self._positions)

    def vnode_positions(self, node: NodeId) -> np.ndarray:
        """Sorted ring positions of ``node``'s virtual nodes."""
        if node not in self._members:
            raise KeyError(f"node {node!r} not on the ring")
        return np.sort(self._members[node])

    def positions_unit(self) -> np.ndarray:
        """All vnode positions mapped to [0, 1) (Fig 4 presentation)."""
        return self._positions.astype(np.float64) / 2.0**64

    def arc_fractions(self) -> dict[NodeId, float]:
        """Fraction of the ring's keyspace each node owns.

        With many vnodes these concentrate around ``1 / len(nodes)``; the
        spread quantifies expected load imbalance for uniform keys.
        """
        if len(self._positions) == 0:
            return {}
        pos = self._positions.astype(np.float64)
        # Arc ending at position i is owned by owner[i]; arcs are the gaps
        # between consecutive positions, wrapping at the top.
        gaps = np.empty_like(pos)
        gaps[1:] = pos[1:] - pos[:-1]
        gaps[0] = pos[0] + (2.0**64 - pos[-1])
        fractions: dict[NodeId, float] = {n: 0.0 for n in self._members}
        for owner, gap in zip(self._owners, gaps):
            fractions[owner] += gap
        total = 2.0**64
        return {n: g / total for n, g in fractions.items()}

    def memory_footprint(self) -> int:
        """Approximate bytes held by the ring arrays (vnode-count trade-off)."""
        return int(self._positions.nbytes + self._owners.nbytes) + sum(
            a.nbytes for a in self._members.values()
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"HashRing(nodes={len(self._members)}, vnodes_per_node={self.vnodes_per_node}, "
            f"algo={self.algo!r})"
        )
