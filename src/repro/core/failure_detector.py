"""Timeout-counter failure detection (Sec IV-A).

The FT-Cache client flags a server as failed only after a *run* of RPC
timeouts: "Upon a timeout, the client increments a counter … Once the
timeout count for a specific node reaches a predefined threshold, that node
is flagged as failed."  The counter absorbs transient network delays so a
single slow response does not trigger recovery (a false positive would
needlessly evict a healthy node and recache its data).

Two tunables, mirroring the artifact's ``TIMEOUT_SECONDS`` and
``TIMEOUT_LIMIT``:

``ttl``
    Per-RPC time-to-live in seconds.  The paper's guidance: the TTL "only
    needs to be greater than the longest observed latency".
``threshold``
    Consecutive timeouts required to declare failure.

The detector is engine-agnostic (it never sleeps or schedules); callers
report outcomes with :meth:`record_timeout` / :meth:`record_success` and
act on the returned verdict.  Both the simulated HVAC client and the real
threaded runtime client drive the same instance, so the detection logic is
tested once and deployed twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

__all__ = ["TimeoutFailureDetector", "DetectorStats"]

NodeId = Hashable


@dataclass
class DetectorStats:
    """Observability counters for detector behaviour and tuning."""

    timeouts: int = 0
    successes: int = 0
    declared_failures: int = 0
    #: timeouts that were followed by a success before reaching the
    #: threshold — i.e. transient delays the counter correctly absorbed.
    absorbed_transients: int = 0
    #: per-node time of first timeout in the current run (for detection-
    #: latency measurement); cleared on success or declaration.
    first_timeout_at: dict = field(default_factory=dict)
    #: node -> (declare_time - first_timeout_time), recorded at declaration.
    detection_latency: dict = field(default_factory=dict)


class TimeoutFailureDetector:
    """Counts consecutive per-node RPC timeouts against a threshold."""

    def __init__(self, ttl: float = 5.0, threshold: int = 3):
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.ttl = float(ttl)
        self.threshold = int(threshold)
        self._counts: dict[NodeId, int] = {}
        self._declared: set[NodeId] = set()
        self.stats = DetectorStats()

    # -- reporting --------------------------------------------------------------
    def record_timeout(self, node: NodeId, now: Optional[float] = None) -> bool:
        """Report one RPC timeout against ``node``.

        Returns True exactly once, at the moment the consecutive-timeout
        count reaches the threshold (the caller should then mark the node
        failed); further timeouts against a declared node return False.
        """
        if node in self._declared:
            return False
        self.stats.timeouts += 1
        count = self._counts.get(node, 0) + 1
        self._counts[node] = count
        if count == 1 and now is not None:
            self.stats.first_timeout_at[node] = now
        if count >= self.threshold:
            self._declared.add(node)
            self._counts.pop(node, None)
            self.stats.declared_failures += 1
            if now is not None and node in self.stats.first_timeout_at:
                self.stats.detection_latency[node] = now - self.stats.first_timeout_at.pop(node)
            return True
        return False

    def record_success(self, node: NodeId) -> None:
        """Report a successful RPC: resets the node's consecutive count."""
        self.stats.successes += 1
        pending = self._counts.pop(node, 0)
        if pending:
            self.stats.absorbed_transients += pending
        self.stats.first_timeout_at.pop(node, None)

    # -- queries ------------------------------------------------------------------
    def is_declared(self, node: NodeId) -> bool:
        return node in self._declared

    @property
    def declared(self) -> frozenset:
        return frozenset(self._declared)

    def pending_count(self, node: NodeId) -> int:
        """Current consecutive-timeout count for ``node`` (0 when clean)."""
        return self._counts.get(node, 0)

    def reset(self, node: NodeId) -> None:
        """Forget a node entirely (used when a node rejoins elastically)."""
        self._declared.discard(node)
        self._counts.pop(node, None)

    #: Worst-case wall-clock from first lost RPC to declaration, assuming
    #: back-to-back requests: threshold sequential TTL expirations.
    @property
    def worst_case_detection_time(self) -> float:
        return self.ttl * self.threshold

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TimeoutFailureDetector(ttl={self.ttl}, threshold={self.threshold}, "
            f"declared={len(self._declared)})"
        )
