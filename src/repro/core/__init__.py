"""Core contribution: consistent-hash placement and fault-tolerance policies.

Public surface:

* Placement — :class:`HashRing` (the paper's mechanism), plus the
  comparison baselines :class:`StaticHash`, :class:`RendezvousHash`,
  :class:`RangePartition`, and the ``std::map``-style :class:`TreeHashRing`.
* Fault tolerance — :class:`TimeoutFailureDetector`,
  :class:`MembershipView`, and the three policies
  :class:`NoFT` / :class:`PFSRedirect` / :class:`ElasticRecache`.
* Analysis — :func:`movement_on_removal`,
  :func:`redistribution_after_failure`, :func:`imbalance_stats`.
"""

from .avl import AVLMap, TreeHashRing
from .failure_detector import DetectorStats, TimeoutFailureDetector
from .fault_policy import (
    POLICY_NAMES,
    ElasticRecache,
    FaultPolicy,
    NoFT,
    PFSRedirect,
    Target,
    UnrecoverableNodeFailure,
    make_policy,
)
from .hash_ring import DEFAULT_VNODES, EmptyRingError, HashRing
from .hashing import HASH_ALGOS, bulk_hash64, hash64, hash_unit, splitmix64
from .load_analysis import (
    ImbalanceStats,
    MovementReport,
    RedistributionReport,
    imbalance_stats,
    movement_on_removal,
    redistribution_after_failure,
)
from .membership import MembershipView, NodeState
from .placement import PlacementPolicy
from .range_partition import RangePartition
from .replication import ReplicatedRecache, salt_hash, salted_hashes
from .rendezvous import RendezvousHash
from .static_hash import StaticHash

__all__ = [
    "AVLMap",
    "TreeHashRing",
    "DetectorStats",
    "TimeoutFailureDetector",
    "POLICY_NAMES",
    "ElasticRecache",
    "FaultPolicy",
    "NoFT",
    "PFSRedirect",
    "Target",
    "UnrecoverableNodeFailure",
    "make_policy",
    "DEFAULT_VNODES",
    "EmptyRingError",
    "HashRing",
    "HASH_ALGOS",
    "bulk_hash64",
    "hash64",
    "hash_unit",
    "splitmix64",
    "ImbalanceStats",
    "MovementReport",
    "RedistributionReport",
    "imbalance_stats",
    "movement_on_removal",
    "redistribution_after_failure",
    "MembershipView",
    "NodeState",
    "PlacementPolicy",
    "RangePartition",
    "ReplicatedRecache",
    "salt_hash",
    "salted_hashes",
    "RendezvousHash",
    "StaticHash",
]
