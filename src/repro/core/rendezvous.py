"""Rendezvous (highest-random-weight) hashing.

Section IV-B of the paper discusses "employing multiple hash functions" to
redistribute only the failed node's data.  Rendezvous hashing is the
canonical realisation of that idea: each key scores every node with an
independent hash and the highest score wins.  Removing a node re-homes only
the keys it owned (same minimal-movement property as the ring), but every
lookup is O(N) in the node count — the scalability concern the paper raises
for multi-hash schemes on large clusters and repeated failures.

Included as the second movement-cost baseline in the placement ablation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .hashing import hash64, splitmix64
from .placement import NodeId, PlacementPolicy

__all__ = ["RendezvousHash"]


class RendezvousHash(PlacementPolicy):
    """Highest-random-weight placement: ``argmax_n mix(h(key) ^ h(n))``."""

    def __init__(self, nodes: Iterable[NodeId] = (), algo: str = "blake2b"):
        self.algo = algo
        self._nodes: list[NodeId] = []
        self._node_hashes: list[int] = []
        for n in nodes:
            self.add_node(n)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._nodes)

    def add_node(self, node: NodeId, weight: "float | None" = None) -> None:
        # unweighted HRW; weight accepted for interface uniformity and ignored
        if node in self._nodes:
            raise ValueError(f"node {node!r} already present")
        self._nodes.append(node)
        self._node_hashes.append(hash64(f"hrw:{node}", self.algo))

    def remove_node(self, node: NodeId) -> None:
        try:
            i = self._nodes.index(node)
        except ValueError:
            raise KeyError(f"node {node!r} not present") from None
        del self._nodes[i]
        del self._node_hashes[i]

    @staticmethod
    def _score(key_hash: np.ndarray, node_hash: int) -> np.ndarray:
        return splitmix64(key_hash ^ np.uint64(node_hash))

    def lookup_hash(self, key_hash: int) -> NodeId:
        if not self._nodes:
            raise LookupError("no nodes")
        # Scalar path reuses the vector scorer over the node axis.
        kh = np.uint64(key_hash)
        scores = splitmix64(np.asarray(self._node_hashes, dtype=np.uint64) ^ kh)
        return self._nodes[int(np.argmax(scores))]

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        """Vectorised over keys, streamed over nodes (O(N·K) time, O(K) memory).

        A full N×K score matrix would be hundreds of MB at cluster scale, so
        we keep a running maximum instead — same arithmetic, constant memory.
        """
        if not self._nodes:
            raise LookupError("no nodes")
        kh = key_hashes.astype(np.uint64, copy=False)
        best_score = self._score(kh, self._node_hashes[0])
        best_idx = np.zeros(len(kh), dtype=np.intp)
        for i in range(1, len(self._nodes)):
            score = self._score(kh, self._node_hashes[i])
            better = score > best_score
            np.copyto(best_score, score, where=better)
            best_idx[better] = i
        catalog = np.array(self._nodes, dtype=object)
        return catalog[best_idx]

    def __repr__(self) -> str:  # pragma: no cover
        return f"RendezvousHash(nodes={len(self._nodes)}, algo={self.algo!r})"
