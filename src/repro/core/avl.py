"""AVL ordered map with ceiling queries — the paper's ``std::map`` analogue.

The published FT-Cache implements its hash ring "with the *std::map* class
from C++ STL", relying on logarithmic successor queries to resolve key →
clockwise vnode.  This module reproduces that design point: a self-balancing
binary search tree offering O(log n) ``insert`` / ``delete`` /
``ceiling_entry`` so membership changes are incremental rather than
rebuild-the-array.  :class:`TreeHashRing` wraps it in the
:class:`~repro.core.placement.PlacementPolicy` interface; the placement
ablation benchmarks it against the NumPy-array
:class:`~repro.core.hash_ring.HashRing` (which wins bulk lookups, as the
array does on modern hardware, while the tree wins single-node updates).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Optional

from .hashing import hash64
from .placement import NodeId, PlacementPolicy

__all__ = ["AVLMap", "TreeHashRing"]


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key: int, value: Any):
        self.key = key
        self.value = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1


def _h(n: Optional[_Node]) -> int:
    return n.height if n else 0


def _update(n: _Node) -> None:
    n.height = 1 + max(_h(n.left), _h(n.right))


def _balance_factor(n: _Node) -> int:
    return _h(n.left) - _h(n.right)


def _rotate_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rotate_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _rebalance(n: _Node) -> _Node:
    _update(n)
    bf = _balance_factor(n)
    if bf > 1:
        assert n.left is not None
        if _balance_factor(n.left) < 0:
            n.left = _rotate_left(n.left)
        return _rotate_right(n)
    if bf < -1:
        assert n.right is not None
        if _balance_factor(n.right) > 0:
            n.right = _rotate_right(n.right)
        return _rotate_left(n)
    return n


class AVLMap:
    """Sorted ``int → value`` map with O(log n) ceiling/floor queries."""

    def __init__(self, items: Iterable[tuple[int, Any]] = ()):
        self._root: Optional[_Node] = None
        self._size = 0
        for k, v in items:
            self.insert(k, v)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- mutation --------------------------------------------------------------
    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""

        def _ins(n: Optional[_Node]) -> _Node:
            if n is None:
                self._size += 1
                return _Node(key, value)
            if key < n.key:
                n.left = _ins(n.left)
            elif key > n.key:
                n.right = _ins(n.right)
            else:
                n.value = value
                return n
            return _rebalance(n)

        self._root = _ins(self._root)

    def delete(self, key: int) -> None:
        """Remove ``key``; raises :class:`KeyError` when absent."""
        found = [False]

        def _pop_min(n: _Node) -> tuple[Optional[_Node], _Node]:
            """Detach the minimum node of subtree ``n``; returns (new_root, min)."""
            if n.left is None:
                return n.right, n
            n.left, m = _pop_min(n.left)
            return _rebalance(n), m

        def _del(n: Optional[_Node]) -> Optional[_Node]:
            if n is None:
                return None
            if key < n.key:
                n.left = _del(n.left)
            elif key > n.key:
                n.right = _del(n.right)
            else:
                found[0] = True
                if n.left is None:
                    return n.right
                if n.right is None:
                    return n.left
                n.right, succ = _pop_min(n.right)
                n.key, n.value = succ.key, succ.value
            return _rebalance(n)

        self._root = _del(self._root)
        if not found[0]:
            raise KeyError(key)
        self._size -= 1

    # -- queries -----------------------------------------------------------------
    def get(self, key: int, default: Any = None) -> Any:
        n = self._root
        while n is not None:
            if key < n.key:
                n = n.left
            elif key > n.key:
                n = n.right
            else:
                return n.value
        return default

    def __contains__(self, key: int) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def ceiling_entry(self, key: int) -> Optional[tuple[int, Any]]:
        """Smallest ``(k, v)`` with ``k >= key``, or None."""
        n = self._root
        best: Optional[_Node] = None
        while n is not None:
            if n.key >= key:
                best = n
                n = n.left
            else:
                n = n.right
        return (best.key, best.value) if best else None

    def floor_entry(self, key: int) -> Optional[tuple[int, Any]]:
        """Largest ``(k, v)`` with ``k <= key``, or None."""
        n = self._root
        best: Optional[_Node] = None
        while n is not None:
            if n.key <= key:
                best = n
                n = n.right
            else:
                n = n.left
        return (best.key, best.value) if best else None

    def min_entry(self) -> Optional[tuple[int, Any]]:
        n = self._root
        if n is None:
            return None
        while n.left is not None:
            n = n.left
        return (n.key, n.value)

    def items(self) -> Iterator[tuple[int, Any]]:
        """In-order (sorted) iteration."""
        stack: list[_Node] = []
        n = self._root
        while stack or n is not None:
            while n is not None:
                stack.append(n)
                n = n.left
            n = stack.pop()
            yield (n.key, n.value)
            n = n.right

    def height(self) -> int:
        return _h(self._root)

    def check_invariants(self) -> None:
        """Assert BST ordering and AVL balance (test hook)."""

        def _chk(n: Optional[_Node]) -> tuple[int, int, int]:
            if n is None:
                return 0, -1, -1
            hl, lo_l, hi_l = _chk(n.left)
            hr, lo_r, hi_r = _chk(n.right)
            if n.left is not None and hi_l >= n.key:
                raise AssertionError("BST order violated (left)")
            if n.right is not None and lo_r <= n.key:
                raise AssertionError("BST order violated (right)")
            if abs(hl - hr) > 1:
                raise AssertionError("AVL balance violated")
            h = 1 + max(hl, hr)
            if h != n.height:
                raise AssertionError("stale height")
            lo = lo_l if n.left is not None else n.key
            hi = hi_r if n.right is not None else n.key
            return h, lo, hi

        _chk(self._root)


class TreeHashRing(PlacementPolicy):
    """Consistent-hash ring backed by an :class:`AVLMap` (paper's std::map).

    Functionally identical to :class:`~repro.core.hash_ring.HashRing` — the
    equivalence is property-tested — but with O(log V) incremental
    membership updates instead of array rebuilds.
    """

    def __init__(self, nodes: Iterable[NodeId] = (), vnodes_per_node: int = 100, algo: str = "blake2b"):
        if vnodes_per_node < 1:
            raise ValueError("vnodes_per_node must be >= 1")
        self.vnodes_per_node = int(vnodes_per_node)
        self.algo = algo
        self._map = AVLMap()
        self._members: dict[NodeId, list[int]] = {}
        for n in nodes:
            self.add_node(n)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._members)

    def _positions_for(self, node: NodeId) -> list[int]:
        return [hash64(f"{node}#vn{r}", self.algo) for r in range(self.vnodes_per_node)]

    def add_node(self, node: NodeId, weight: "float | None" = None) -> None:
        # the ordered-map ablation keeps uniform vnodes; weight is ignored
        if node in self._members:
            raise ValueError(f"node {node!r} already on the ring")
        positions = self._positions_for(node)
        for p in positions:
            existing = self._map.get(p)
            # Mirror HashRing's deterministic collision tiebreak: the node
            # admitted earlier keeps the position.
            if existing is None:
                self._map.insert(p, node)
        self._members[node] = positions

    def remove_node(self, node: NodeId) -> None:
        positions = self._members.pop(node, None)
        if positions is None:
            raise KeyError(f"node {node!r} not on the ring")
        for p in positions:
            if self._map.get(p) == node:
                self._map.delete(p)
                # A colliding vnode of a later node may now claim the slot.
                for other, other_pos in self._members.items():
                    if p in other_pos:
                        self._map.insert(p, other)
                        break

    def lookup_hash(self, key_hash: int) -> NodeId:
        if not self._map:
            raise LookupError("hash ring has no nodes")
        entry = self._map.ceiling_entry(key_hash + 1)  # strictly-after = side="right"
        if entry is None:
            entry = self._map.min_entry()
            assert entry is not None
        return entry[1]

    def __repr__(self) -> str:  # pragma: no cover
        return f"TreeHashRing(nodes={len(self._members)}, vnodes_per_node={self.vnodes_per_node})"
