"""Cluster membership view maintained by each FT-Cache client.

Each client tracks, *locally and autonomously* (Sec IV-A: "each node
autonomously detects failures, eliminating the need for additional
inter-node communication"), which server nodes it believes are alive.
The view is a simple state machine per node::

    ACTIVE --(timeout threshold reached)--> FAILED
    ACTIVE --(drain notice)---------------> FAILED
    FAILED --(re-admission, elastic join)--> ACTIVE

Listeners (the fault policy, metrics) are notified on every transition.
"""

from __future__ import annotations

import enum
from typing import Callable, Hashable, Iterable

__all__ = ["NodeState", "MembershipView"]

NodeId = Hashable


class NodeState(enum.Enum):
    ACTIVE = "active"
    FAILED = "failed"


class MembershipView:
    """Per-client record of which server nodes are believed alive."""

    def __init__(self, nodes: Iterable[NodeId] = ()):
        self._state: dict[NodeId, NodeState] = {n: NodeState.ACTIVE for n in nodes}
        self._listeners: list[Callable[[NodeId, NodeState], None]] = []
        self._version = 0

    # -- queries ---------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotone counter bumped on every state transition."""
        return self._version

    def state_of(self, node: NodeId) -> NodeState:
        try:
            return self._state[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def is_active(self, node: NodeId) -> bool:
        return self._state.get(node) is NodeState.ACTIVE

    @property
    def active_nodes(self) -> tuple[NodeId, ...]:
        return tuple(n for n, s in self._state.items() if s is NodeState.ACTIVE)

    @property
    def failed_nodes(self) -> tuple[NodeId, ...]:
        return tuple(n for n, s in self._state.items() if s is NodeState.FAILED)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._state

    def __len__(self) -> int:
        return len(self._state)

    # -- transitions ---------------------------------------------------------------
    def subscribe(self, listener: Callable[[NodeId, NodeState], None]) -> None:
        """Register a callback invoked as ``listener(node, new_state)``."""
        self._listeners.append(listener)

    def _transition(self, node: NodeId, state: NodeState) -> None:
        if node not in self._state:
            raise KeyError(f"unknown node {node!r}")
        if self._state[node] is state:
            return
        self._state[node] = state
        self._version += 1
        for cb in list(self._listeners):
            cb(node, state)

    def mark_failed(self, node: NodeId) -> None:
        self._transition(node, NodeState.FAILED)

    def mark_active(self, node: NodeId) -> None:
        self._transition(node, NodeState.ACTIVE)

    def admit(self, node: NodeId) -> None:
        """Add a brand-new node in ACTIVE state (elastic scale-up).

        The version bump and listener notification happen *before* this
        call returns, i.e. before any caller can couple the node into a
        placement — subscribers observing the admission are guaranteed to
        see pre-join routing (the lookup-before-backfill window is closed
        by ordering, not by luck; see ``repro.rebalance.coordinator``).
        """
        if node in self._state:
            raise ValueError(f"node {node!r} already tracked")
        self._state[node] = NodeState.ACTIVE
        self._version += 1
        for cb in list(self._listeners):
            cb(node, NodeState.ACTIVE)

    def ensure_active(self, node: NodeId) -> None:
        """Admit ``node`` if unknown, else transition it to ACTIVE.

        Idempotent convenience for join/rejoin paths that cannot know
        whether the node was ever tracked (a rejoining server is tracked
        FAILED; a brand-new one is untracked).
        """
        if node in self._state:
            self._transition(node, NodeState.ACTIVE)
        else:
            self.admit(node)
