"""Static hash-mod-N partitioning — the original HVAC placement (Sec IV-B).

The key's hash modulo the node count indexes a fixed node list.  Simple and
perfectly uniform, but brittle under membership change: dropping from N to
N−1 nodes re-derives *every* assignment, so on a node failure nearly
``(N−1)/N`` of all keys change owner and well-cached data must migrate —
the inefficiency that motivates the paper's hash ring.  This class is kept
as the movement-cost baseline for the placement ablation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .placement import NodeId, PlacementPolicy

__all__ = ["StaticHash"]


class StaticHash(PlacementPolicy):
    """``owner = nodes[hash(key) % len(nodes)]`` over an ordered node list."""

    def __init__(self, nodes: Iterable[NodeId] = (), algo: str = "blake2b"):
        self.algo = algo
        self._nodes: list[NodeId] = []
        for n in nodes:
            self.add_node(n)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._nodes)

    def add_node(self, node: NodeId, weight: "float | None" = None) -> None:
        # hash-mod-N has no capacity notion; weight accepted for interface
        # uniformity and ignored
        if node in self._nodes:
            raise ValueError(f"node {node!r} already present")
        self._nodes.append(node)

    def remove_node(self, node: NodeId) -> None:
        # Removal compacts the list: every key's modulo target shifts, which
        # is exactly the global-reshuffle behaviour this baseline exists to
        # demonstrate.
        try:
            self._nodes.remove(node)
        except ValueError:
            raise KeyError(f"node {node!r} not present") from None

    def lookup_hash(self, key_hash: int) -> NodeId:
        if not self._nodes:
            raise LookupError("no nodes")
        return self._nodes[key_hash % len(self._nodes)]

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        if not self._nodes:
            raise LookupError("no nodes")
        idx = key_hashes.astype(np.uint64, copy=False) % np.uint64(len(self._nodes))
        catalog = np.array(self._nodes, dtype=object)
        return catalog[idx.astype(np.intp)]

    def __repr__(self) -> str:  # pragma: no cover
        return f"StaticHash(nodes={len(self._nodes)}, algo={self.algo!r})"
