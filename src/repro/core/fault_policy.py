"""Fault-tolerance policies: what a client does once a node is declared dead.

The paper evaluates three system configurations (Sec V-A); each maps to one
policy class here, shared verbatim between the simulated HVAC client and
the real threaded runtime client:

``NoFT`` (baseline HVAC)
    No recovery.  A declared node failure aborts the training job
    (:class:`UnrecoverableNodeFailure`), matching "immediate job
    termination upon failure" in Fig 5(b)'s dashed line.

``PFSRedirect`` (Sec IV-A, artifact A₁)
    Placement is left untouched; every key whose owner is failed is read
    from the PFS, on *every* subsequent access.  Cheap to implement, but
    each post-failure epoch pays full PFS latency for the lost shard.

``ElasticRecache`` (Sec IV-B, artifact A₂ — the contribution)
    The failed node is removed from the hash ring; lost keys re-home to
    the next clockwise virtual node.  The new owner misses once, fetches
    from the PFS, serves, and recaches — a single extra PFS access per
    lost file.

A policy owns a :class:`~repro.core.placement.PlacementPolicy` and exposes
one routing query, :meth:`FaultPolicy.target_for`, returning either a node
target or a PFS target.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Hashable, Literal, Optional

from .placement import Key, PlacementPolicy

__all__ = [
    "Target",
    "FaultPolicy",
    "NoFT",
    "PFSRedirect",
    "ElasticRecache",
    "UnrecoverableNodeFailure",
    "make_policy",
    "POLICY_NAMES",
]

NodeId = Hashable


class UnrecoverableNodeFailure(RuntimeError):
    """A node failed under a policy with no recovery path (NoFT)."""

    def __init__(self, node: NodeId):
        super().__init__(f"node {node!r} failed and the NoFT policy cannot recover")
        self.node = node


@dataclass(frozen=True)
class Target:
    """Where to send an I/O request: a cache server or the PFS."""

    kind: Literal["node", "pfs"]
    node: Optional[NodeId] = None

    @staticmethod
    def to_node(node: NodeId) -> "Target":
        return Target("node", node)

    @staticmethod
    def to_pfs() -> "Target":
        return Target("pfs")


class FaultPolicy(abc.ABC):
    """Routing + failure-reaction strategy over a placement policy."""

    #: human-readable identifier used in experiment tables
    name: str = "abstract"

    def __init__(self, placement: PlacementPolicy):
        self.placement = placement
        self._failed: set[NodeId] = set()

    @property
    def failed_nodes(self) -> frozenset:
        return frozenset(self._failed)

    @property
    def active_nodes(self) -> tuple[NodeId, ...]:
        return tuple(n for n in self.placement.nodes if n not in self._failed)

    @abc.abstractmethod
    def target_for(self, key: Key) -> Target:
        """Routing decision for ``key`` under the current failure state."""

    @abc.abstractmethod
    def on_node_failed(self, node: NodeId) -> None:
        """React to a failure declaration from the detector."""

    def on_node_joined(self, node: NodeId, weight: "float | None" = None) -> None:
        """Default elastic-join handling: (re)admit into placement.

        ``weight`` is the joining node's relative capacity, forwarded to
        the placement (capacity-aware policies scale the node's share of
        the keyspace; others ignore it).
        """
        self._failed.discard(node)
        if node not in self.placement.nodes:
            self.placement.add_node(node, weight=weight)


class NoFT(FaultPolicy):
    """Baseline HVAC: no fault tolerance; failure aborts the job."""

    name = "NoFT"

    def target_for(self, key: Key) -> Target:
        return Target.to_node(self.placement.lookup(key))

    def on_node_failed(self, node: NodeId) -> None:
        self._failed.add(node)
        raise UnrecoverableNodeFailure(node)


class PFSRedirect(FaultPolicy):
    """FT w/ PFS: keys owned by failed nodes are read from the PFS forever.

    The placement is intentionally *not* updated: the original HVAC hash
    remains valid for surviving nodes, and requests for lost keys bypass
    the cache layer entirely (Fig 3a).
    """

    name = "FT w/ PFS"

    def target_for(self, key: Key) -> Target:
        owner = self.placement.lookup(key)
        if owner in self._failed:
            return Target.to_pfs()
        return Target.to_node(owner)

    def on_node_failed(self, node: NodeId) -> None:
        self._failed.add(node)


class ElasticRecache(FaultPolicy):
    """FT w/ NVMe: remove the failed node from the ring and re-route.

    Requires a placement whose removal semantics are minimal-movement (the
    hash ring); with ``StaticHash`` this class would still function but
    would trigger the mass migration the paper's Sec IV-B warns about —
    the placement ablation measures exactly that.
    """

    name = "FT w/ NVMe"

    def target_for(self, key: Key) -> Target:
        return Target.to_node(self.placement.lookup(key))

    def on_node_failed(self, node: NodeId) -> None:
        if node in self._failed:
            return
        self._failed.add(node)
        if node in self.placement.nodes:
            self.placement.remove_node(node)


POLICY_NAMES = ("NoFT", "FT w/ PFS", "FT w/ NVMe")


def make_policy(name: str, placement: PlacementPolicy) -> FaultPolicy:
    """Factory from an experiment-table name to a policy instance."""
    table = {
        "NoFT": NoFT,
        "noft": NoFT,
        "FT w/ PFS": PFSRedirect,
        "pfs": PFSRedirect,
        "FT w/ NVMe": ElasticRecache,
        "nvme": ElasticRecache,
        "elastic": ElasticRecache,
    }
    try:
        cls = table[name]
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; choose from {POLICY_NAMES}") from None
    return cls(placement)
