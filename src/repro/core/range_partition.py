"""Range partitioning over the hash space (Sec IV-B alternative).

Each node owns a contiguous interval of the 64-bit key-hash space.  On a
node failure its interval is absorbed by a neighbour; with
``rebalance=True`` all boundaries are then re-spaced evenly, which restores
balance but relocates keys on *other* nodes too — the "more extensive
redistribution" drawback the paper attributes to range partitioning [19].
With ``rebalance=False`` movement is minimal but the absorbing neighbour
carries a double-width range (persistent imbalance).  The placement
ablation benchmarks both modes against the ring.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .placement import NodeId, PlacementPolicy

__all__ = ["RangePartition"]

_SPACE = 2**64


class RangePartition(PlacementPolicy):
    """Contiguous hash-range ownership with optional rebalancing on removal.

    Node ``i`` owns ``[boundaries[i], boundaries[i+1])``; the final range
    wraps to ``2**64``.
    """

    def __init__(self, nodes: Iterable[NodeId] = (), algo: str = "blake2b", rebalance: bool = True):
        self.algo = algo
        self.rebalance = bool(rebalance)
        self._nodes: list[NodeId] = list(nodes)
        if len(set(self._nodes)) != len(self._nodes):
            raise ValueError("duplicate node ids")
        self._starts = self._even_boundaries(len(self._nodes))

    @staticmethod
    def _even_boundaries(n: int) -> np.ndarray:
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        return (np.arange(n, dtype=np.float64) * (_SPACE / n)).astype(np.uint64)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return tuple(self._nodes)

    def range_of(self, node: NodeId) -> tuple[int, int]:
        """Half-open hash interval ``[lo, hi)`` owned by ``node``."""
        i = self._nodes.index(node)
        lo = int(self._starts[i])
        hi = int(self._starts[i + 1]) if i + 1 < len(self._nodes) else _SPACE
        return lo, hi

    def add_node(self, node: NodeId, weight: "float | None" = None) -> None:
        # ranges are split evenly or by widest-range; weight is ignored
        if node in self._nodes:
            raise ValueError(f"node {node!r} already present")
        self._nodes.append(node)
        if self.rebalance:
            self._starts = self._even_boundaries(len(self._nodes))
        else:
            # Split the widest range in half and hand the top half to the
            # newcomer (keeps movement local to one range).
            widths = np.diff(np.append(self._starts, np.uint64(_SPACE - 1)).astype(np.float64))
            i = int(np.argmax(widths))
            hi = float(self._starts[i + 1]) if i + 1 < len(self._starts) else float(_SPACE)
            mid = np.uint64((float(self._starts[i]) + hi) / 2)
            self._starts = np.insert(self._starts, i + 1, mid)
            # Newcomer owns the inserted range: rotate it into position i+1.
            self._nodes.insert(i + 1, self._nodes.pop())

    def remove_node(self, node: NodeId) -> None:
        try:
            i = self._nodes.index(node)
        except ValueError:
            raise KeyError(f"node {node!r} not present") from None
        del self._nodes[i]
        if self.rebalance:
            self._starts = self._even_boundaries(len(self._nodes))
        else:
            # The successor (or, for the last range, the predecessor) absorbs
            # the orphaned interval; other boundaries are untouched.
            if i + 1 < len(self._starts):
                self._starts = np.delete(self._starts, i + 1)
            else:
                self._starts = np.delete(self._starts, i)

    def lookup_hash(self, key_hash: int) -> NodeId:
        if not self._nodes:
            raise LookupError("no nodes")
        idx = int(np.searchsorted(self._starts, np.uint64(key_hash), side="right")) - 1
        if idx < 0:
            idx = 0  # hashes below the first boundary belong to the first range
        return self._nodes[idx]

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        if not self._nodes:
            raise LookupError("no nodes")
        idx = np.searchsorted(self._starts, key_hashes.astype(np.uint64, copy=False), side="right") - 1
        np.clip(idx, 0, len(self._nodes) - 1, out=idx)
        catalog = np.array(self._nodes, dtype=object)
        return catalog[idx]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"RangePartition(nodes={len(self._nodes)}, rebalance={self.rebalance}, "
            f"algo={self.algo!r})"
        )
