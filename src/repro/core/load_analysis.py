"""Data-movement and load-distribution analysis over placement policies.

This module computes, fully vectorised, the quantities behind the paper's
Figure 6(b) (how many *receiver nodes* absorb a failed node's keys, and how
many files each receives, as a function of virtual-node count) and the
Sec IV-B movement comparison (hash ring vs modulo vs multi-hash vs range).

All functions are non-destructive: policies passed in are deep-copied
before membership is mutated.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from .placement import PlacementPolicy

__all__ = [
    "MovementReport",
    "RedistributionReport",
    "movement_on_removal",
    "redistribution_after_failure",
    "imbalance_stats",
]

NodeId = Hashable


@dataclass(frozen=True)
class MovementReport:
    """Key-movement accounting for one node removal.

    ``lost_keys`` *must* move (their owner died); ``collateral_moves`` are
    keys on surviving nodes whose owner nevertheless changed — the waste a
    good strategy avoids.  A strategy is *minimal* when collateral is zero:
    removing a node moves only that node's keys (Karger et al. [20]).
    """

    policy: str
    total_keys: int
    lost_keys: int
    collateral_moves: int

    @property
    def moved_keys(self) -> int:
        return self.lost_keys + self.collateral_moves

    @property
    def movement_fraction(self) -> float:
        """Fraction of *all* keys that changed owner."""
        return self.moved_keys / self.total_keys if self.total_keys else 0.0

    @property
    def collateral_fraction(self) -> float:
        """Fraction of *surviving-node* keys needlessly relocated."""
        surviving = self.total_keys - self.lost_keys
        return self.collateral_moves / surviving if surviving else 0.0

    @property
    def is_minimal(self) -> bool:
        return self.collateral_moves == 0


def movement_on_removal(
    policy: PlacementPolicy, key_hashes: np.ndarray, victim: NodeId, label: str | None = None
) -> MovementReport:
    """Measure key movement caused by removing ``victim`` from ``policy``.

    The policy is deep-copied; the caller's instance is unmodified.
    """
    if victim not in policy.nodes:
        raise KeyError(f"victim {victim!r} not in policy membership")
    before = policy.lookup_hashes(key_hashes)
    work = copy.deepcopy(policy)
    work.remove_node(victim)
    after = work.lookup_hashes(key_hashes)
    lost_mask = before == victim
    changed = before != after
    collateral = int(np.count_nonzero(changed & ~lost_mask))
    return MovementReport(
        policy=label or type(policy).__name__,
        total_keys=int(len(key_hashes)),
        lost_keys=int(np.count_nonzero(lost_mask)),
        collateral_moves=collateral,
    )


@dataclass(frozen=True)
class RedistributionReport:
    """Where one failed node's keys land — the Fig 6(b) quantities."""

    victim: NodeId
    lost_files: int
    #: new owner -> number of the victim's files it absorbed
    receivers: dict = field(default_factory=dict)

    @property
    def receiver_count(self) -> int:
        """Number of distinct surviving nodes that received files."""
        return len(self.receivers)

    @property
    def files_per_receiver_mean(self) -> float:
        if not self.receivers:
            return 0.0
        return float(np.mean(list(self.receivers.values())))

    @property
    def files_per_receiver_std(self) -> float:
        if not self.receivers:
            return 0.0
        return float(np.std(list(self.receivers.values())))

    @property
    def files_per_receiver_max(self) -> int:
        return max(self.receivers.values()) if self.receivers else 0


def redistribution_after_failure(
    policy: PlacementPolicy, key_hashes: np.ndarray, victim: NodeId
) -> RedistributionReport:
    """Compute the receiver set for ``victim``'s keys after its removal.

    Vectorised: two bulk lookups plus one ``np.unique`` over the lost keys.
    The policy is deep-copied; the caller's instance is unmodified.
    """
    if victim not in policy.nodes:
        raise KeyError(f"victim {victim!r} not in policy membership")
    before = policy.lookup_hashes(key_hashes)
    lost_mask = before == victim
    lost_hashes = key_hashes[lost_mask]
    work = copy.deepcopy(policy)
    work.remove_node(victim)
    if len(lost_hashes) == 0:
        return RedistributionReport(victim=victim, lost_files=0, receivers={})
    new_owners = work.lookup_hashes(lost_hashes)
    uniq, counts = np.unique(new_owners, return_counts=True)
    receivers = {n: int(c) for n, c in zip(uniq.tolist(), counts.tolist())}
    return RedistributionReport(victim=victim, lost_files=int(len(lost_hashes)), receivers=receivers)


@dataclass(frozen=True)
class ImbalanceStats:
    """Summary statistics of a per-node load histogram."""

    mean: float
    std: float
    cv: float
    max_over_mean: float
    min_over_mean: float


def imbalance_stats(counts: np.ndarray | list[int]) -> ImbalanceStats:
    """Load-imbalance summary of per-node key counts.

    ``cv`` (coefficient of variation, std/mean) is the headline balance
    metric; ``max_over_mean`` bounds the straggler node's overload.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("empty load histogram")
    mean = float(arr.mean())
    std = float(arr.std())
    if mean == 0.0:
        return ImbalanceStats(mean=0.0, std=std, cv=0.0, max_over_mean=0.0, min_over_mean=0.0)
    return ImbalanceStats(
        mean=mean,
        std=std,
        cv=std / mean,
        max_over_mean=float(arr.max()) / mean,
        min_over_mean=float(arr.min()) / mean,
    )
