"""Placement-policy interface shared by every partitioning strategy.

A *placement policy* answers one question — which node owns this key? —
and supports membership changes (node joins/failures).  The FT-Cache
client consults a policy on every intercepted read; the load-distribution
experiments consult it in bulk over hundreds of thousands of keys, so the
interface exposes both scalar (:meth:`PlacementPolicy.lookup`) and
vectorised (:meth:`PlacementPolicy.lookup_hashes`) paths.

Implementations in this package:

======================  =====================================================
:class:`~repro.core.hash_ring.HashRing`            consistent hashing with
                                                   virtual nodes (the paper's
                                                   contribution, Sec IV-B)
:class:`~repro.core.static_hash.StaticHash`        hash-mod-N (original HVAC)
:class:`~repro.core.rendezvous.RendezvousHash`     highest-random-weight
                                                   (Sec IV-B "multiple hash
                                                   functions" alternative)
:class:`~repro.core.range_partition.RangePartition` contiguous key ranges
                                                   (Sec IV-B alternative)
======================  =====================================================
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence, Union

import numpy as np

from .hashing import bulk_hash64, hash64

__all__ = ["PlacementPolicy", "NodeId", "Key"]

NodeId = Hashable
Key = Union[str, bytes, int]


class PlacementPolicy(abc.ABC):
    """Maps keys to owning nodes; survives node removal/addition."""

    #: hash algorithm used to place keys (see :data:`repro.core.hashing.HASH_ALGOS`)
    algo: str = "blake2b"

    # -- membership ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def nodes(self) -> tuple[NodeId, ...]:
        """Currently active nodes, in a deterministic order."""

    @abc.abstractmethod
    def add_node(self, node: NodeId, weight: "float | None" = None) -> None:
        """Admit ``node``; subsequent lookups may route keys to it.

        ``weight`` is the node's relative capacity.  Policies without a
        notion of capacity accept and ignore it so elastic join code can
        pass it uniformly.
        """

    @abc.abstractmethod
    def remove_node(self, node: NodeId) -> None:
        """Evict ``node`` (failure or drain); its keys must re-route."""

    def __contains__(self, node: NodeId) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- lookups ---------------------------------------------------------------
    @abc.abstractmethod
    def lookup_hash(self, key_hash: int) -> NodeId:
        """Owner of a pre-hashed key (64-bit unsigned)."""

    def lookup(self, key: Key) -> NodeId:
        """Owner of ``key``."""
        return self.lookup_hash(hash64(key, self.algo))

    def lookup_hashes(self, key_hashes: np.ndarray) -> np.ndarray:
        """Vectorised owner lookup over a ``uint64`` hash array.

        The default implementation loops; subclasses override with a
        genuinely vectorised version where the structure allows it.
        Returns an object array of node ids aligned with the input.
        """
        return np.array([self.lookup_hash(int(h)) for h in key_hashes], dtype=object)

    def lookup_many(self, keys: Union[np.ndarray, Sequence[Key]]) -> np.ndarray:
        """Vectorised owner lookup over raw keys."""
        return self.lookup_hashes(bulk_hash64(keys, self.algo))

    # -- analysis ---------------------------------------------------------------
    def assignment_counts(self, key_hashes: np.ndarray) -> dict[NodeId, int]:
        """Histogram of how many of ``key_hashes`` each node owns."""
        owners = self.lookup_hashes(key_hashes)
        uniq, counts = np.unique(owners, return_counts=True)
        return {n: int(c) for n, c in zip(uniq.tolist(), counts.tolist())}
