"""Stable hash functions for data placement.

Placement hashing has two requirements that Python's builtin ``hash`` does
not meet: stability across processes/runs (``PYTHONHASHSEED`` randomises
``str`` hashes) and uniformity over the full 64-bit range.  This module
provides:

* :func:`hash64` — stable 64-bit digest of a string/bytes key, with a choice
  of algorithms (BLAKE2b default; MD5/SHA1 for parity with common consistent
  hashing deployments; FNV-1a for a cheap non-crypto option).
* :func:`hash_unit` — the same digest mapped to ``[0, 1)``, matching the
  ring-position presentation used in the paper's Figure 4.
* :func:`splitmix64` / :func:`bulk_hash64` — vectorised hashing of integer
  key arrays with NumPy, used by the load-distribution simulation (Fig 6b)
  which hashes ~5 × 10⁵ keys per trial × 500 trials; a Python-level loop
  would dominate the experiment's runtime.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

import numpy as np

__all__ = ["hash64", "hash_unit", "splitmix64", "bulk_hash64", "fnv1a64", "HASH_ALGOS"]

_U64 = np.uint64
_MASK64 = (1 << 64) - 1

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def _to_bytes(key: Union[str, bytes]) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"unhashable placement key type: {type(key).__name__}")


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash (cheap, non-cryptographic, stable)."""
    h = FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * FNV_PRIME) & _MASK64
    return h


def _digest64(algo: str, data: bytes) -> int:
    if algo == "blake2b":
        return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")
    if algo == "md5":
        return int.from_bytes(hashlib.md5(data).digest()[:8], "little")
    if algo == "sha1":
        return int.from_bytes(hashlib.sha1(data).digest()[:8], "little")
    if algo == "fnv1a":
        return fnv1a64(data)
    raise ValueError(f"unknown hash algorithm {algo!r}; choose from {sorted(HASH_ALGOS)}")


HASH_ALGOS = frozenset({"blake2b", "md5", "sha1", "fnv1a"})


def hash64(key: Union[str, bytes, int], algo: str = "blake2b") -> int:
    """Stable uniform 64-bit hash of ``key``.

    Integer keys take the SplitMix64 path so that the scalar result agrees
    exactly with :func:`bulk_hash64` over an integer array — placement
    decisions must not depend on whether a key was looked up one at a time
    or in bulk.
    """
    if isinstance(key, int) and not isinstance(key, bool):
        if key < 0:
            raise ValueError("integer placement keys must be non-negative")
        return int(splitmix64(np.array([key], dtype=_U64))[0])
    return _digest64(algo, _to_bytes(key))


def hash_unit(key: Union[str, bytes, int], algo: str = "blake2b") -> float:
    """``hash64`` mapped to the unit interval ``[0, 1)``.

    This is the ring-position convention the paper illustrates (e.g. file E
    at position 0.293853 in Figure 4).
    """
    return hash64(key, algo) / 2.0**64


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser: uniform 64-bit mix of integer keys.

    Operates elementwise on a ``uint64`` array.  SplitMix64 is a bijection
    on 64-bit integers with excellent avalanche behaviour, making it a
    sound stand-in for a cryptographic hash when keys are dense integers
    (file indices), at NumPy speed.
    """
    z = np.asarray(x, dtype=_U64).copy()
    with np.errstate(over="ignore"):
        z += _U64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        z = z ^ (z >> _U64(31))
    return z


def bulk_hash64(keys: Union[np.ndarray, Iterable[Union[str, bytes, int]]], algo: str = "blake2b") -> np.ndarray:
    """Hash many keys to a ``uint64`` array.

    Integer arrays take the vectorised :func:`splitmix64` path; anything
    else falls back to per-key :func:`hash64` (still stable, just slower).
    """
    if isinstance(keys, np.ndarray) and np.issubdtype(keys.dtype, np.integer):
        return splitmix64(keys.astype(_U64, copy=False))
    out = np.fromiter((hash64(k, algo) for k in keys), dtype=_U64)
    return out
