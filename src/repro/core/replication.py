"""Replicated elastic recaching — the natural extension of the paper.

The published FT-Cache stores each file on exactly one node, so a failure
always costs one PFS refetch per lost file.  Replicating every cache entry
on ``k`` nodes removes even that cost for single-node failures: a
surviving replica serves the data immediately and redundancy is restored
in the background, off the training's critical path.  The trade-offs are
``k×`` NVMe capacity and ``k×`` population write traffic — both cheap on
Frontier-class nodes (3.5 TB NVMe vs ~1.3 GB/node of CosmoFlow data).

Replica placement uses *salted* ring lookups (replica ``r`` of a key is
placed by hashing the key with salt ``r``), which vectorises over whole
datasets.  With ``k`` independent placements the probability that a
single failure destroys every replica of some file is ``O(N^{1-k})``;
duplicate placement (two replicas landing on one node) occurs for ~``1/N``
of files per extra replica, slightly reducing effective redundancy — the
``distinct_replica_fraction`` helper quantifies it.

The ``repro.dl.fastsim`` fluid model accepts ``replication=k`` and the
``replication`` ablation experiment measures the end-to-end effect.
"""

from __future__ import annotations

import numpy as np

from .hash_ring import HashRing
from .fault_policy import ElasticRecache
from .hashing import hash64, splitmix64
from .placement import Key, NodeId

__all__ = ["ReplicatedRecache", "salted_hashes", "salt_hash"]

_U64 = np.uint64


def salt_hash(key_hash: int, replica: int) -> int:
    """Scalar salted re-hash: replica ``r``'s independent placement hash."""
    if replica == 0:
        return key_hash
    salt = hash64(f"replica-salt:{replica}")
    return int(splitmix64(np.array([key_hash ^ salt], dtype=_U64))[0])


def salted_hashes(key_hashes: np.ndarray, replica: int) -> np.ndarray:
    """Vectorised salted re-hash of a ``uint64`` key-hash array."""
    if replica == 0:
        return key_hashes.astype(_U64, copy=False)
    salt = _U64(hash64(f"replica-salt:{replica}"))
    return splitmix64(key_hashes.astype(_U64, copy=False) ^ salt)


class ReplicatedRecache(ElasticRecache):
    """FT w/ NVMe plus ``k``-way cache replication.

    ``target_for`` still returns the primary owner (replica 0);
    :meth:`replica_targets` lists every replica's owner, and
    :meth:`surviving_replica` gives the first owner that is not failed —
    the node a client reads from when the primary just died and has not
    yet been declared/removed.
    """

    name = "FT w/ NVMe (replicated)"

    def __init__(self, placement: HashRing, replicas: int = 2):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        super().__init__(placement)
        self.replicas = int(replicas)
        # Snapshot of the healthy ring: a replica target that still matches
        # the pristine assignment *held the data before any failure*, so
        # readers should prefer it over a freshly re-homed (empty) target.
        import copy as _copy

        self._pristine = _copy.deepcopy(placement)

    def replica_targets(self, key: Key) -> list[NodeId]:
        """Owner of every replica (may contain duplicates, ~1/N chance)."""
        base = hash64(key, self.placement.algo)
        return [self.placement.lookup_hash(salt_hash(base, r)) for r in range(self.replicas)]

    def read_candidates(self, key: Key) -> list[NodeId]:
        """Surviving replica owners, data-holders first.

        Targets whose assignment matches the pristine (pre-failure) ring
        certainly cached the entry during normal operation; re-homed
        targets are empty until the recache path fills them, so they come
        last — a reader failing over after a node death is served by a
        warm replica instead of triggering a PFS refetch.
        """
        base = hash64(key, self.placement.algo)
        warm: list[NodeId] = []
        cold: list[NodeId] = []
        for r in range(self.replicas):
            h = salt_hash(base, r)
            current = self.placement.lookup_hash(h)
            if current in self._failed:
                continue
            pristine = self._pristine.lookup_hash(h)
            bucket = warm if current == pristine else cold
            if current not in warm and current not in cold:
                bucket.append(current)
        out = warm + cold
        return out if out else [self.placement.lookup(key)]

    def surviving_replica(self, key: Key) -> NodeId:
        """First replica owner not known-failed (primary under no failures)."""
        for node in self.replica_targets(key):
            if node not in self._failed:
                return node
        # All replicas on failed nodes (or stale view): fall back to the
        # ring's current assignment — the recache path.
        return self.placement.lookup(key)

    def replica_owner_matrix(self, key_hashes: np.ndarray) -> np.ndarray:
        """``[replicas, n_keys]`` owner matrix, fully vectorised."""
        rows = [
            self.placement.lookup_hashes(salted_hashes(key_hashes, r))
            for r in range(self.replicas)
        ]
        return np.stack([row.astype(object) for row in rows])

    def distinct_replica_fraction(self, key_hashes: np.ndarray) -> float:
        """Fraction of keys whose replicas all landed on distinct nodes."""
        owners = self.replica_owner_matrix(key_hashes)
        distinct = np.ones(owners.shape[1], dtype=bool)
        for i in range(owners.shape[0]):
            for j in range(i + 1, owners.shape[0]):
                distinct &= owners[i] != owners[j]
        return float(distinct.mean())
