"""Placement micro-benchmarks and the Sec IV-B strategy ablation.

Covers the design choices DESIGN.md calls out: vnode count (ring size vs
cost), array vs ``std::map``-style ring, and movement cost per strategy.
"""

import numpy as np
import pytest

from repro.core import (
    HashRing,
    RendezvousHash,
    StaticHash,
    TreeHashRing,
    bulk_hash64,
)
from repro.experiments import format_placement_ablation, run_placement_ablation

KEYS_100K = bulk_hash64(np.arange(100_000))


class TestRingOperations:
    def test_ring_build_1024x100(self, benchmark):
        """Ring construction at the paper's production scale."""
        ring = benchmark(lambda: HashRing(nodes=range(1024), vnodes_per_node=100))
        assert ring.ring_size == 102_400

    @pytest.mark.parametrize("vnodes", [10, 100, 1000])
    def test_ring_build_vs_vnode_count(self, benchmark, vnodes):
        """Fig 6(b) trade-off: build cost grows with the vnode ratio."""
        ring = benchmark(lambda: HashRing(nodes=range(128), vnodes_per_node=vnodes))
        assert ring.ring_size == 128 * vnodes

    def test_scalar_lookup(self, benchmark):
        ring = HashRing(nodes=range(1024), vnodes_per_node=100)
        owner = benchmark(ring.lookup, "/data/train/sample_00042.tfrecord")
        assert owner in ring.nodes

    def test_bulk_lookup_100k(self, benchmark):
        ring = HashRing(nodes=range(1024), vnodes_per_node=100)
        owners = benchmark(ring.lookup_hashes, KEYS_100K)
        assert len(owners) == 100_000

    def test_node_removal(self, benchmark):
        """Membership update: the operation on the failure path."""

        def remove_and_restore():
            ring.remove_node(500)
            ring.add_node(500)

        ring = HashRing(nodes=range(1024), vnodes_per_node=100)
        benchmark(remove_and_restore)

    def test_excluding_lookup_fig6b_kernel(self, benchmark):
        """The Fig 6(b) inner loop: re-home one node's keys, no rebuild."""
        ring = HashRing(nodes=range(1024), vnodes_per_node=100)
        owners = ring.lookup_hashes(KEYS_100K)
        lost = KEYS_100K[owners == ring.lookup_hash(int(KEYS_100K[0]))]
        victim = ring.lookup_hash(int(KEYS_100K[0]))
        new_owners = benchmark(ring.lookup_hashes_excluding, lost, victim)
        assert victim not in set(new_owners.tolist())


class TestArrayVsTreeRing:
    """The paper used std::map; the array ring wins bulk lookups."""

    def test_tree_ring_lookup(self, benchmark):
        tree = TreeHashRing(nodes=range(128), vnodes_per_node=100)
        benchmark(tree.lookup_hash, int(KEYS_100K[0]))

    def test_array_ring_lookup(self, benchmark):
        ring = HashRing(nodes=range(128), vnodes_per_node=100)
        benchmark(ring.lookup_hash, int(KEYS_100K[0]))

    def test_tree_ring_update(self, benchmark):
        tree = TreeHashRing(nodes=range(128), vnodes_per_node=100)

        def update():
            tree.remove_node(64)
            tree.add_node(64)

        benchmark(update)


class TestBaselines:
    def test_static_hash_bulk(self, benchmark):
        sh = StaticHash(nodes=range(1024))
        benchmark(sh.lookup_hashes, KEYS_100K)

    def test_rendezvous_bulk_small_cluster(self, benchmark):
        # O(N·K): only viable at modest node counts — the paper's
        # scalability concern about multi-hash schemes, in numbers.
        rv = RendezvousHash(nodes=range(64))
        benchmark(rv.lookup_hashes, KEYS_100K)


def test_movement_ablation_table(benchmark):
    """Sec IV-B: data moved on one failure, per strategy (printed table)."""
    result = benchmark.pedantic(
        run_placement_ablation, kwargs=dict(n_nodes=64, n_keys=100_000), rounds=1, iterations=1
    )
    print()
    print(format_placement_ablation(result))
    by_name = {m.policy: m for m in result.movement}
    assert by_name["HashRing (paper)"].is_minimal
    assert by_name["StaticHash (orig. HVAC)"].movement_fraction > 0.9
