"""Benchmark-suite configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables/figures
and prints the reproduced rows (run with ``-s`` to see them).  Heavy
end-to-end sweeps run exactly once per benchmark (``pedantic`` with one
round) — the timing is informative, the *printed series* is the artifact.

Scale is selected with ``REPRO_BENCH_SCALE`` = ``quick`` (default) |
``paper`` | ``smoke``; EXPERIMENTS.md records which scale produced the
committed numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


def bench_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return {
        "paper": ExperimentScale.paper,
        "quick": ExperimentScale.quick,
        "smoke": ExperimentScale.smoke,
    }[name]()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
