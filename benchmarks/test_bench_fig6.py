"""Benchmarks regenerating Figure 6.

(a) the victim-epoch analysis — epoch duration with a mid-epoch failure
    under no-FT-needed / PFS redirection / NVMe recaching;
(b) the load-distribution simulation — receiver nodes and files/receiver
    vs virtual-node count, 500 trials at 1024 physical nodes at paper
    scale.
"""

from conftest import run_once

from repro.experiments import format_fig6a, format_fig6b, run_fig6a, run_fig6b


def test_fig6a_victim_epoch(benchmark, scale):
    result = run_once(benchmark, run_fig6a, scale=scale)
    print()
    print(format_fig6a(result))
    for row in result.rows:
        assert row.no_failure < row.pfs_redirect
        assert row.nvme_recache <= row.pfs_redirect
    # Paper: NVMe recaching approaches no-failure as node count grows —
    # in absolute terms the victim-epoch excess shrinks with scale.
    excess = [r.nvme_recache - r.no_failure for r in result.rows]
    assert excess[-1] <= excess[0]
    # And PFS redirection hurts most at the smaller scales (64-128 nodes).
    pfs_excess = [r.pfs_redirect - r.no_failure for r in result.rows]
    assert pfs_excess[0] == max(pfs_excess)


def test_fig6b_load_distribution(benchmark, scale):
    result = run_once(benchmark, run_fig6b, scale=scale, seed=2024)
    print()
    print(format_fig6b(result))
    receivers = [r.receiver_nodes_mean for r in result.rows]
    files = [r.files_per_node_mean for r in result.rows]
    assert receivers == sorted(receivers)  # rises with vnode ratio
    assert files[0] > files[-1]  # better balance
    assert result.saturating()  # diminishing returns past ~500
