"""Micro-benchmarks of the substrates: DES throughput, runtime latency.

These are not paper figures; they document the costs that size every
simulated experiment (events/second) and the real runtime's cache-hit
latency floor, so regressions in either are caught.
"""

import pytest

from repro.runtime import LocalCluster
from repro.sim import Environment, SharedBandwidth


class TestEngine:
    def test_event_throughput_10k_timeouts(self, benchmark):
        def run():
            env = Environment()

            def ticker():
                for _ in range(10_000):
                    yield env.timeout(0.001)

            env.process(ticker())
            env.run()
            return env.now

        t = benchmark(run)
        assert t == pytest.approx(10.0)

    def test_process_spawn_throughput(self, benchmark):
        def run():
            env = Environment()

            def worker():
                yield env.timeout(1.0)

            for _ in range(2_000):
                env.process(worker())
            env.run()

        benchmark(run)

    def test_fluid_link_churn(self, benchmark):
        """SharedBandwidth with continuous arrivals/departures."""

        def run():
            env = Environment()
            link = SharedBandwidth(env, rate=1000.0)

            def sender(delay):
                yield env.timeout(delay)
                yield link.transfer(100.0)

            for i in range(500):
                env.process(sender(i * 0.01))
            env.run()

        benchmark(run)


class TestRealRuntime:
    @pytest.fixture(scope="class")
    def warm_cluster(self):
        with LocalCluster(n_servers=2, policy="nvme", ttl=1.0) as c:
            paths = c.populate(n_files=8, file_bytes=65536)
            client = c.client()
            for p in paths:
                client.read(p)
            import time

            time.sleep(0.2)  # let data movers land
            yield c, client

    def test_cache_hit_latency(self, benchmark, warm_cluster):
        """Socket round-trip + NVMe-dir read for a warm 64 KiB sample."""
        cluster, client = warm_cluster
        data = benchmark(client.read, cluster.paths[0])
        assert len(data) == 65536

    def test_pfs_direct_latency(self, benchmark, warm_cluster):
        """Direct shared-dir read (the redirect path's floor)."""
        cluster, _ = warm_cluster
        data = benchmark(cluster.pfs.read, cluster.paths[1])
        assert len(data) == 65536
