"""Benchmarks regenerating Section III: Table I, Figure 1, Figure 2.

Each benchmark generates the synthetic six-month Frontier log and runs the
published analysis, printing the reproduced table/series next to the
paper's numbers.
"""

from repro.experiments import (
    format_fig1,
    format_fig2,
    format_table1,
    run_fig1,
    run_fig2,
    run_table1,
)
from repro.failures import generate_frontier_log


def test_table1_census(benchmark):
    """Table I: the job-failure census over 181,933 jobs."""
    result = benchmark(run_table1, seed=2024)
    print()
    print(format_table1(result))
    assert result.census.total_failures == 45_556


def test_fig1_weekly_series(benchmark):
    """Fig 1: weekly mean elapsed-before-failure minutes, 27 weeks."""
    result = benchmark(run_fig1, seed=2024)
    print()
    print(format_fig1(result))
    assert result.n_weeks == 27


def test_fig2_distributions(benchmark):
    """Fig 2: failure-type mix by allocation size and elapsed time."""
    result = benchmark(run_fig2, seed=2024)
    print()
    print(format_fig2(result))
    assert result.node_fail_trend_increasing()


def test_log_generation_throughput(benchmark):
    """Micro: synthetic-log generation (vectorised, 181,933 rows)."""
    log = benchmark(generate_frontier_log, seed=0)
    assert len(log) == 181_933
