"""Benchmark: the TTL/threshold tuning ablation (Sec IV-A discussion)."""

from repro.core import TimeoutFailureDetector
from repro.experiments import format_detector_ablation, run_detector_ablation


def test_detector_tuning_table(benchmark):
    """False positives vs detection delay across (TTL, threshold)."""
    result = benchmark.pedantic(run_detector_ablation, rounds=1, iterations=1)
    print()
    print(format_detector_ablation(result))
    # The published guidance: TTL above the latency tail → no false
    # positives at bounded delay.
    safe = [p for p in result.points if p.ttl >= 2.0 and p.threshold >= 3]
    assert all(p.false_positive_rate == 0.0 for p in safe)


def test_detector_hot_path(benchmark):
    """Micro: the per-RPC success path (runs on every cache read)."""
    det = TimeoutFailureDetector(ttl=1.0, threshold=3)

    def record():
        det.record_success("node-5")

    benchmark(record)
