"""Benchmarks for the extension studies: replication, time limits, prefetch.

These go beyond the paper's published figures into the design space its
discussion opens (Sec IV-A.2's time-limit risk; the single-copy cache's
obvious replication extension; pipelined loaders hiding the cold epoch).
"""

from conftest import run_once

from repro.experiments import (
    format_replication_ablation,
    format_timelimit_ablation,
    run_replication_ablation,
    run_timelimit_ablation,
)


def test_replication_ablation(benchmark, scale):
    result = run_once(benchmark, run_replication_ablation, scale=scale)
    print()
    print(format_replication_ablation(result))
    for row in result.rows:
        assert row.replicated <= row.single_copy * 1.02
        assert row.replicated_pfs_files < row.single_pfs_files


def test_timelimit_ablation(benchmark, scale):
    result = run_once(benchmark, run_timelimit_ablation, scale=scale, trials=8)
    print()
    print(format_timelimit_ablation(result))
    for row in result.rows:
        assert row.violation_rate["FT w/ PFS"] >= row.violation_rate["FT w/ NVMe"] - 1e-9


def test_prefetch_pipeline_cold_epoch(benchmark):
    """Cold-epoch cost with vs without the prefetch pipeline (fluid)."""
    from repro.cluster.config import frontier
    from repro.dl import TrainingConfig
    from repro.dl.cosmoflow import cosmoflow_dataset
    from repro.dl.fastsim import FluidTrainingModel

    ds = cosmoflow_dataset(scale=1 / 32)

    def run():
        plain = FluidTrainingModel(
            frontier(64), ds, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8), 0, seed=1
        ).run()
        piped = FluidTrainingModel(
            frontier(64),
            ds,
            "FT w/ NVMe",
            TrainingConfig(epochs=2, batch_size=8, pipelined_loader=True),
            0,
            seed=1,
        ).run()
        return plain, piped

    plain, piped = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"cold epoch: synchronous {plain.epoch_times[0] / 60:.2f} min vs "
          f"pipelined {piped.epoch_times[0] / 60:.2f} min "
          f"({100 * (1 - piped.epoch_times[0] / plain.epoch_times[0]):.0f}% hidden)")
    assert piped.epoch_times[0] < plain.epoch_times[0]


def test_trace_overhead(benchmark):
    """Micro: DES run with tracing on (the observability tax)."""
    from repro.cluster import Cluster
    from repro.dl import Dataset, TrainingConfig, TrainingJob

    ds = Dataset(name="t", n_samples=128, sample_bytes=1e6)

    def run():
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        job = TrainingJob(cluster, ds, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8), trace=True)
        job.run()
        return len(job.tracer)

    spans = benchmark(run)
    assert spans > 0
