"""Benchmarks regenerating the qualitative paper elements.

Table II (hardware provenance), Fig 3 (the executed fault-tolerance
sequences), and Fig 4 (the ring-mechanism illustration) — completing
one-bench-per-table/figure coverage of the paper.
"""

from repro.experiments import (
    format_fig3,
    format_fig4,
    format_table2,
    run_fig3,
    run_fig4,
    run_table2,
)


def test_table2_specs(benchmark):
    rows = benchmark(run_table2)
    print()
    print(format_table2(rows))
    assert any("NVMe" in r.attribute or "storage" in r.attribute for r in rows)


def test_fig3_sequences(benchmark):
    result = benchmark.pedantic(run_fig3, kwargs=dict(seed=1), rounds=1, iterations=1)
    print()
    print(format_fig3(result))
    # Fig 3(a): redirection happens, placement untouched; Fig 3(b): re-ring.
    assert any(e.step == "redirect" for e in result.pfs_redirect)
    assert any(e.step == "re-ring" for e in result.elastic_recache)


def test_fig4_ring_diagram(benchmark):
    result = benchmark(run_fig4)
    print()
    print(format_fig4(result))
    assert result.minimal_movement()
