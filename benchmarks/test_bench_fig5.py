"""Benchmark regenerating Figure 5: end-to-end training time.

(a) no failures, (b) five random single-node failures after epoch 1 —
NoFT / FT w/ PFS / FT w/ NVMe across the node sweep, printed with the
paper's published percentages beside the reproduced ones.

Runs the fluid model (cross-validated against the DES in the test suite).
``REPRO_BENCH_SCALE=paper`` reproduces the full published parameters.
"""

from conftest import run_once

from repro.experiments import format_fig5, run_fig5


def test_fig5_end_to_end(benchmark, scale):
    result = run_once(benchmark, run_fig5, scale=scale, model="fluid")
    print()
    print(format_fig5(result))
    # Published shape: failures cost time, and hash-ring recaching beats
    # PFS redirection at every node count.
    for row in result.rows:
        assert row.withfail["FT w/ NVMe"] > row.nofail["FT w/ NVMe"]
        assert row.withfail["FT w/ NVMe"] < row.withfail["FT w/ PFS"]
    # Fig 5(a): strong scaling — more nodes, less time.
    nofail = [r.nofail["FT w/ NVMe"] for r in result.rows]
    assert nofail[0] > nofail[-1]


def test_fig5_single_point_des(benchmark):
    """One DES point (64-node class, scaled dataset): the event-level twin."""
    from repro.experiments import ExperimentScale

    tiny = ExperimentScale(
        name="des-point", dataset_scale=1 / 512, node_counts=(16,), n_failures=2, repeats=1
    )
    result = run_once(benchmark, run_fig5, scale=tiny, model="des")
    row = result.rows[0]
    print()
    print(format_fig5(result))
    assert row.withfail["FT w/ NVMe"] > row.nofail["FT w/ NVMe"]
