"""Loadgen smoke bench: sustained traffic + one mid-run kill, timed once.

Seeds the repo's service-level perf trajectory: the printed per-phase
rows (throughput, p50/p99/p99.9) are the artifact; the benchmark clock
wraps the whole scenario.  Run with ``-s`` to see the rows, or
``python -m repro.loadgen`` for the standalone CLI with a JSON artifact.
"""

import pytest

from repro.loadgen import ChaosEvent, DriverConfig, PhaseSpec, Scenario, Workload, WorkloadSpec
from repro.loadgen.__main__ import PHASE_HEADER, render_phase_line
from repro.runtime import LocalCluster

from conftest import run_once


class TestLoadgenSmoke:
    def test_three_servers_one_kill(self, benchmark):
        def run():
            with LocalCluster(n_servers=3, policy="elastic", ttl=0.2, timeout_threshold=2) as cluster:
                workload = Workload(WorkloadSpec(n_files=32, file_bytes=8192, read_fraction=0.9, seed=2024))
                scenario = Scenario(
                    cluster,
                    workload,
                    phases=[
                        PhaseSpec(name="warmup", duration=0.5, driver=DriverConfig(workers=2)),
                        PhaseSpec(name="steady", duration=1.0, driver=DriverConfig(workers=4)),
                        PhaseSpec(
                            name="chaos",
                            duration=1.5,
                            driver=DriverConfig(workers=4),
                            chaos=(
                                ChaosEvent(at=0.5, action="kill"),
                                ChaosEvent(at=1.1, action="restart"),
                            ),
                        ),
                    ],
                )
                return scenario.run()

        report = run_once(benchmark, run)
        print()
        print(PHASE_HEADER)
        for phase in report.phases:
            print(render_phase_line(phase))
        totals = report.totals()
        assert totals["errors"] == 0, "requests must re-route around the killed server"
        assert totals["ops"] > 500
        chaos = report.phases[-1]
        assert any(a["action"] == "kill" for a in chaos.chaos_actions)
        # detection stall appears in the chaos-phase tail, not in errors
        assert chaos.result.latency.max >= 0.2

    def test_open_loop_tail_under_failure(self, benchmark):
        def run():
            with LocalCluster(n_servers=3, policy="elastic", ttl=0.2, timeout_threshold=2) as cluster:
                workload = Workload(WorkloadSpec(n_files=32, file_bytes=8192, seed=2024))
                scenario = Scenario(
                    cluster,
                    workload,
                    phases=[
                        PhaseSpec(name="warmup", duration=0.5, driver=DriverConfig(workers=2)),
                        PhaseSpec(
                            name="chaos",
                            duration=1.5,
                            driver=DriverConfig(mode="open", workers=4, rate=400.0, queue_depth=128),
                            chaos=(ChaosEvent(at=0.5, action="kill"),),
                        ),
                    ],
                )
                return scenario.run()

        report = run_once(benchmark, run)
        print()
        print(PHASE_HEADER)
        for phase in report.phases:
            print(render_phase_line(phase))
        assert report.totals()["errors"] == 0
        chaos = report.phases[-1].result
        if chaos.latency.count:  # p99.9 sees the detection stall; p50 does not
            assert chaos.latency.quantile(0.5) < 0.2
