#!/usr/bin/env python
"""Quickstart: the hash ring, failure detection, and fault policies.

Walks the core API end to end in a few seconds, no simulator involved:

1. build a consistent-hash ring with virtual nodes (paper default: 100);
2. place a dataset's files and inspect the load balance;
3. fail a node and see *minimal movement* — only its files re-home;
4. compare against the original HVAC's hash-mod-N reshuffle;
5. drive the timeout failure detector and an ElasticRecache policy the
   way the cache client does.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ElasticRecache, HashRing, StaticHash, TimeoutFailureDetector
from repro.core import bulk_hash64, imbalance_stats, movement_on_removal, redistribution_after_failure


def main() -> None:
    n_nodes, n_files = 16, 100_000

    # -- 1. the ring -----------------------------------------------------------
    ring = HashRing(nodes=range(n_nodes), vnodes_per_node=100)
    print(f"ring: {len(ring.nodes)} nodes x {ring.vnodes_per_node} vnodes "
          f"= {ring.ring_size} positions ({ring.memory_footprint() / 1e3:.0f} kB)")

    sample = "/cosmoUniverse/train/sample_00042.tfrecord"
    print(f"owner of {sample!r}: node {ring.lookup(sample)}")

    # -- 2. placement balance ----------------------------------------------------
    keys = bulk_hash64(np.arange(n_files))
    counts = ring.assignment_counts(keys)
    stats = imbalance_stats(list(counts.values()))
    print(f"\nload over {n_files} files: mean {stats.mean:.0f}/node, "
          f"CV {stats.cv:.3f}, max/mean {stats.max_over_mean:.2f}")

    # -- 3. fail a node: minimal movement ------------------------------------------
    victim = ring.lookup(sample)  # kill the node that owns our sample
    report = movement_on_removal(ring, keys, victim)
    print(f"\nnode {victim} fails (hash ring):")
    print(f"  lost files (must move):   {report.lost_keys}")
    print(f"  collateral moves (waste): {report.collateral_moves}  -> minimal={report.is_minimal}")

    redis = redistribution_after_failure(ring, keys, victim)
    print(f"  receivers of the lost files: {redis.receiver_count} nodes, "
          f"{redis.files_per_receiver_mean:.1f} ± {redis.files_per_receiver_std:.1f} files each")

    # -- 4. the hash-mod-N baseline -------------------------------------------------
    modulo = StaticHash(nodes=range(n_nodes))
    report2 = movement_on_removal(modulo, keys, victim)
    print(f"\nsame failure under hash-mod-N (original HVAC):")
    print(f"  moved {report2.moved_keys}/{n_files} files "
          f"({report2.movement_fraction:.0%}) — the Sec IV-B motivation for the ring")

    # -- 5. detector + policy, as the client drives them ------------------------------
    detector = TimeoutFailureDetector(ttl=1.0, threshold=3)
    policy = ElasticRecache(ring)
    print(f"\nclient-side failure handling (TTL {detector.ttl}s × {detector.threshold}):")
    for attempt in range(1, 4):
        declared = detector.record_timeout(victim)
        print(f"  RPC timeout #{attempt} -> declared={declared}")
        if declared:
            policy.on_node_failed(victim)
    new_owner = policy.target_for(sample)
    print(f"  {sample!r} now routed to node {new_owner.node} "
          f"(failed set: {sorted(policy.failed_nodes)})")


if __name__ == "__main__":
    main()
