#!/usr/bin/env python
"""Load-test the real FT-Cache: tail latency while a server dies.

Drives Zipf traffic (90 % reads) from a closed loop of worker threads
against three socket servers, then repeats the steady phase open-loop at
a fixed Poisson arrival rate while a server is killed and elastically
rejoined mid-phase.  Shows the fault-tolerance story as an SLO story:
p50 stays flat through the failure, the detection stall lives in
p99.9/max, and not a single request errors.

Run:  python examples/loadgen_study.py
"""

from repro.loadgen import ChaosEvent, DriverConfig, PhaseSpec, Scenario, Workload, WorkloadSpec
from repro.loadgen.__main__ import PHASE_HEADER, render_phase_line
from repro.runtime import LocalCluster


def main() -> None:
    with LocalCluster(n_servers=3, policy="elastic", ttl=0.25, timeout_threshold=2) as cluster:
        workload = Workload(
            WorkloadSpec(n_files=64, file_bytes=16384, distribution="zipf", zipf_s=1.1,
                         read_fraction=0.9, seed=2024)
        )
        scenario = Scenario(
            cluster,
            workload,
            phases=[
                PhaseSpec(name="warmup", duration=1.0, driver=DriverConfig(workers=4)),
                PhaseSpec(name="closed", duration=2.0, driver=DriverConfig(workers=4)),
                PhaseSpec(
                    name="open", duration=2.0,
                    driver=DriverConfig(mode="open", workers=4, rate=500.0, queue_depth=128),
                ),
                PhaseSpec(
                    name="chaos", duration=3.0,
                    driver=DriverConfig(mode="open", workers=4, rate=500.0, queue_depth=128),
                    chaos=(
                        ChaosEvent(at=1.0, action="kill"),
                        ChaosEvent(at=2.2, action="restart"),
                    ),
                ),
            ],
        )
        print("3 servers, elastic policy, Zipf(1.1) over 64 x 16 KiB, 90% reads\n")
        print(PHASE_HEADER)
        report = scenario.run(on_phase=lambda p: print(render_phase_line(p), flush=True))

    print()
    for phase in report.phases:
        for a in phase.chaos_actions:
            print(f"chaos[{phase.name}]: t={a['t']:.2f}s {a['action']} node {a['node']}")
    totals = report.totals()
    print(f"\ntotals: {totals['ops']} ops, {totals['errors']} errors, {totals['shed']} shed "
          f"({totals['throughput_ops_s']:.0f} ops/s overall)")
    print("note: the kill shows up as a p99.9/max spike of ~ttl*threshold, never as an error —")
    print("the client detects, re-rings, and the lost shard recaches onto the survivors.")


if __name__ == "__main__":
    main()
