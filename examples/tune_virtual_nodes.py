#!/usr/bin/env python
"""Pick a virtual-node count for *your* cluster — the Fig 6(b) workflow.

The paper settled on 100 vnodes/node for 1024 Frontier nodes and the
CosmoFlow file count, noting "the optimal number ... depends on the number
of data files used".  This script reruns that trade-off for any
(node count, file count): post-failure receiver spread and balance on one
axis, ring memory and rebuild cost on the other, and prints a suggestion.

Run:  python examples/tune_virtual_nodes.py [n_nodes] [n_files]
"""

import sys
import time

import numpy as np

from repro.core import HashRing, bulk_hash64
from repro.experiments.report import render_table


def evaluate(n_nodes: int, n_files: int, vnode_counts, trials: int = 100, seed: int = 0):
    rng = np.random.default_rng(seed)
    keys = bulk_hash64(np.arange(n_files))
    rows = []
    for vn in vnode_counts:
        t0 = time.perf_counter()
        ring = HashRing(nodes=range(n_nodes), vnodes_per_node=vn)
        build_ms = (time.perf_counter() - t0) * 1e3
        owners = ring.lookup_hashes(keys).astype(np.int64)
        receivers, spread = [], []
        for _ in range(trials):
            victim = int(rng.integers(0, n_nodes))
            lost = keys[owners == victim]
            if not len(lost):
                continue
            new_owners = ring.lookup_hashes_excluding(lost, victim)
            _, counts = np.unique(new_owners, return_counts=True)
            receivers.append(len(counts))
            spread.append(counts.std() / max(counts.mean(), 1e-9))
        rows.append(
            dict(
                vn=vn,
                receivers=float(np.mean(receivers)),
                cv=float(np.mean(spread)),
                memory_mb=ring.memory_footprint() / 1e6,
                build_ms=build_ms,
            )
        )
    return rows


def suggest(rows) -> int:
    """Smallest vnode count within 20% of the best receiver spread."""
    best = max(r["receivers"] for r in rows)
    for r in rows:
        if r["receivers"] >= 0.8 * best:
            return r["vn"]
    return rows[-1]["vn"]


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    n_files = int(sys.argv[2]) if len(sys.argv) > 2 else 200_000
    vnode_counts = (1, 10, 50, 100, 200, 500, 1000)

    print(f"tuning vnodes for {n_nodes} nodes, {n_files:,} files "
          f"(100 failure trials per setting)\n")
    rows = evaluate(n_nodes, n_files, vnode_counts)
    print(
        render_table(
            ["Vnodes/node", "Receiver nodes", "Balance CV", "Ring memory", "Build time"],
            [
                (
                    r["vn"],
                    f"{r['receivers']:.1f}",
                    f"{r['cv']:.3f}",
                    f"{r['memory_mb']:.1f} MB",
                    f"{r['build_ms']:.0f} ms",
                )
                for r in rows
            ],
        )
    )
    print(f"\nsuggested vnodes/node: {suggest(rows)} "
          f"(paper chose 100 for 1024 nodes / 524,288 files)")


if __name__ == "__main__":
    main()
