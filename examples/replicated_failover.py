#!/usr/bin/env python
"""Replicated FT-Cache: failures without a single PFS refetch.

Extends the paper's single-copy design with 2-way replication
(``repro.core.replication``): every cache entry lives on two salted ring
positions, the client write-through-pushes PFS-sourced reads to the other
replica, and a dead primary fails over to the warm replica within one TTL —
no recache traffic at all.  Real sockets, real files, a real kill.

Run:  python examples/replicated_failover.py
"""

import time

from repro.runtime import LocalCluster


def main() -> None:
    with LocalCluster(
        n_servers=4,
        policy="replicated",     # ReplicatedRecache, k=2
        replicas=2,
        ttl=0.4,
        timeout_threshold=2,
        pfs_read_delay=0.002,
    ) as cluster:
        paths = cluster.populate(n_files=48, file_bytes=64 * 1024, seed=7)
        client = cluster.client()

        print(f"{len(cluster.servers)} servers, 2-way replication, "
              f"{len(paths)} files x 64 KiB")

        t0 = time.perf_counter()
        for p in paths:
            client.read(p)
        print(f"cold pass: {(time.perf_counter() - t0) * 1e3:6.1f} ms "
              f"({cluster.pfs.reads} PFS reads)")
        time.sleep(0.4)  # background replica pushes land
        print(f"replica pushes completed: {client.stats['replica_pushes']}")

        # Pick a file with two distinct replicas and kill its primary.
        path = next(p for p in paths if len(set(client.policy.replica_targets(p))) == 2)
        primary = client.policy.replica_targets(path)[0]
        print(f"\nkilling primary server {primary} ...")
        cluster.kill_server(primary, mode="hang")

        pfs_before = cluster.pfs.reads
        t0 = time.perf_counter()
        data = client.read(path)                 # one TTL, then the warm replica
        first_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        client.read(path)                        # timeout #2 -> primary declared
        second_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        client.read(path)                        # replica is now first choice
        third_ms = (time.perf_counter() - t0) * 1e3
        for p in paths:
            client.read(p)                       # whole dataset still there

        print(f"read #1 after death: {first_ms:6.1f} ms "
              f"(TTL timeout, failover to the warm replica)")
        print(f"read #2 after death: {second_ms:6.1f} ms "
              f"(second timeout reaches the threshold: declared)")
        print(f"read #3 after death: {third_ms:6.1f} ms "
              f"(replica is the first candidate now; declared="
              f"{client.stats['declared']})")
        print(f"extra PFS reads since the failure: {cluster.pfs.reads - pfs_before} "
              f"(single-copy recaching would refetch every lost file)")
        assert len(data) == 64 * 1024


if __name__ == "__main__":
    main()
