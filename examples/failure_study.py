#!/usr/bin/env python
"""Section III workflow: analyse a SLURM job log for failure patterns.

Generates the synthetic six-month Frontier log (Table I marginals hold by
construction) and runs the same analysis pipeline the paper applies to the
production data — the census, the weekly elapsed series, and the
failure-type distributions.  Point the analysis functions at your own
``sacct`` export (state / node count / elapsed / week columns) and they
run unchanged.

Run:  python examples/failure_study.py
"""

from repro.experiments import (
    format_fig1,
    format_fig2,
    format_table1,
    run_fig1,
    run_fig2,
    run_table1,
)
from repro.failures import generate_frontier_log


def main() -> None:
    log = generate_frontier_log(seed=2024)
    print(f"synthetic log: {len(log):,} jobs over {int(log.week.max()) + 1} weeks\n")

    print(format_table1(run_table1(log=log)))
    print()
    print(format_fig1(run_fig1(log=log)))
    print()
    print(format_fig2(run_fig2(log=log)))

    print(
        "\nTakeaway (Sec III): with NODE_FAIL and TIMEOUT together making up about half\n"
        "of all failures — and dominating at full-machine allocations — a distributed\n"
        "cache without fault tolerance turns any of these events into a dead training job."
    )


if __name__ == "__main__":
    main()
