#!/usr/bin/env python
"""Simulated CosmoFlow training under node failures — the Fig 5 scenario.

Runs the fluid model (cross-validated against the event-level DES) for all
three systems at one node count, with and without the paper's
five-random-failures protocol, and prints the comparison the evaluation
section makes.  Then re-runs one failure case on the event-level DES at a
reduced scale to show the two engines agree on the story.

Run:  python examples/cosmoflow_failures.py [n_nodes]
"""

import sys
import time

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.cluster.slurm import SlurmController
from repro.dl import TrainingConfig, TrainingJob, cosmoflow_dataset
from repro.dl.fastsim import FluidTrainingModel
from repro.failures import FailureInjector
from repro.metrics import percent_change, speedup


def fluid_comparison(n_nodes: int) -> None:
    dataset = cosmoflow_dataset(scale=1 / 8)  # 65,536 samples, full-size files
    cfg = TrainingConfig(epochs=5, batch_size=8)
    print(f"=== fluid model: {n_nodes} nodes, {dataset.n_samples} samples x "
          f"{dataset.file_size(0) / 1e6:.1f} MB, 5 epochs ===")

    results = {}
    for policy in ("NoFT", "FT w/ PFS", "FT w/ NVMe"):
        t0 = time.perf_counter()
        base = FluidTrainingModel(frontier(n_nodes), dataset, policy, cfg, n_failures=0, seed=7).run()
        fail = FluidTrainingModel(frontier(n_nodes), dataset, policy, cfg, n_failures=5, seed=7).run()
        results[policy] = (base, fail)
        status = "completed" if fail.completed else f"ABORTED ({fail.abort_reason})"
        print(f"{policy:12s} no-failure {base.total_time / 60:6.2f} min | "
              f"with 5 failures {fail.total_time / 60:6.2f} min [{status}] "
              f"(simulated in {time.perf_counter() - t0:.1f}s wall)")

    pfs_fail = results["FT w/ PFS"][1].total_time
    nvme_fail = results["FT w/ NVMe"][1].total_time
    nvme_base = results["FT w/ NVMe"][0].total_time
    print(f"\nFT w/ NVMe overhead vs no-failure: "
          f"{percent_change(nvme_base, nvme_fail):+.1f}%  (paper: +12.5% @64 ... +26.7% @1024)")
    print(f"FT w/ NVMe vs FT w/ PFS runtime reduction: "
          f"{speedup(pfs_fail, nvme_fail):.1f}%  (paper headline: 24.9% @1024)")


def des_spot_check() -> None:
    print("\n=== event-level DES spot check: 8 nodes, reduced dataset ===")
    dataset = cosmoflow_dataset(scale=1 / 1024)  # 512 samples
    cfg = TrainingConfig(epochs=3, batch_size=8, ttl=0.5, timeout_threshold=2)

    for policy in ("FT w/ PFS", "FT w/ NVMe"):
        cluster = Cluster.frontier(n_nodes=8, seed=7)
        job = TrainingJob(cluster, dataset, policy, cfg)
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, n_failures=1)
        res = job.run()
        print(f"{policy:12s} total {res.total_time:7.2f} s | failures={res.failures} "
              f"restarts={res.restarts} | PFS bytes "
              f"{cluster.pfs.stats.bytes_read / 1e9:.2f} GB | "
              f"recached files {res.metrics.get('server.recache_files'):.0f}")


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    fluid_comparison(n_nodes)
    des_spot_check()


if __name__ == "__main__":
    main()
