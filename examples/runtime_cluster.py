#!/usr/bin/env python
"""The *real* FT-Cache: threaded servers, TCP RPC, files on disk.

Spins up four cache servers over real sockets backed by real directories,
streams two "epochs" through the PyTorch-style data loader, kills a server
between them (the SLURM-drain analogue), and shows training data keep
flowing: the client times out, declares the node failed, removes it from
its hash ring, and the lost files recache onto survivors with exactly one
extra PFS read each.

Run:  python examples/runtime_cluster.py
"""

import time

from repro.runtime import CachedDataLoader, LocalCluster


def run_epoch(loader: CachedDataLoader, epoch: int) -> float:
    loader.set_epoch(epoch)
    t0 = time.perf_counter()
    n_bytes = sum(len(s) for batch in loader for s in batch)
    elapsed = time.perf_counter() - t0
    print(f"  epoch {epoch}: {n_bytes / 1e6:.1f} MB in {elapsed * 1e3:6.1f} ms")
    return elapsed


def main() -> None:
    with LocalCluster(
        n_servers=4,
        policy="nvme",           # elastic recaching with the hash ring
        ttl=0.4,                 # artifact's TIMEOUT_SECONDS
        timeout_threshold=2,     # artifact's TIMEOUT_LIMIT
        pfs_read_delay=0.002,    # make PFS visibly slower than local flash
    ) as cluster:
        paths = cluster.populate(n_files=64, file_bytes=128 * 1024, seed=0)
        client = cluster.client()
        loader = CachedDataLoader(paths, client, batch_size=8, seed=0, num_workers=4)

        print(f"cluster: {len(cluster.servers)} servers at "
              f"{[s.address[1] for s in cluster.servers.values()]}, "
              f"{len(paths)} files x 128 KiB on the shared PFS dir")

        print("\ncold epoch (every read misses to the PFS, then recaches):")
        cold = run_epoch(loader, epoch=0)
        time.sleep(0.3)  # let the data-mover threads finish writing

        print("warm epoch (served from node-local cache dirs):")
        warm = run_epoch(loader, epoch=1)
        print(f"  cache speedup: {cold / max(warm, 1e-9):.1f}x")

        victim = client.policy.target_for(paths[0]).node
        print(f"\nkilling server {victim} (DRAIN) ...")
        cluster.kill_server(victim, mode="hang")

        print("post-failure epoch (detect -> re-ring -> recache):")
        run_epoch(loader, epoch=2)
        print(f"  client: {client.stats['timeouts']} timeouts, "
              f"{client.stats['declared']} node(s) declared failed")
        print(f"  surviving ring: {sorted(client.policy.placement.nodes)}")

        print("recovered epoch (lost files now cached on survivors):")
        run_epoch(loader, epoch=3)

        stats = cluster.total_stats()
        print(f"\nserver totals: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['pfs_reads']} PFS reads, {stats['recached']} recached")


if __name__ == "__main__":
    main()
