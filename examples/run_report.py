#!/usr/bin/env python
"""Operational run report: where did the time and the bytes go?

Runs a small simulated training job with a failure and tracing enabled,
then prints the post-run report operators would read: per-epoch wall
clock, failure events, the I/O breakdown (cache hits vs PFS traffic), and
operation-latency percentiles from the trace.

Run:  python examples/run_report.py
"""

from repro.cluster import Cluster
from repro.cluster.slurm import SlurmController
from repro.dl import Dataset, TrainingConfig, TrainingJob
from repro.failures import FailureInjector
from repro.metrics import render_run_report


def main() -> None:
    cluster = Cluster.frontier(n_nodes=8, seed=11)
    dataset = Dataset(name="demo", n_samples=512, sample_bytes=2.2e6)
    val = Dataset(name="demo-val", n_samples=64, sample_bytes=2.2e6)
    config = TrainingConfig(epochs=3, batch_size=8, ttl=0.5, timeout_threshold=2)
    job = TrainingJob(
        cluster, dataset, "FT w/ NVMe", config, trace=True, val_dataset=val
    )
    FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, n_failures=1)
    result = job.run()
    print(render_run_report(result, tracer=job.tracer))


if __name__ == "__main__":
    main()
