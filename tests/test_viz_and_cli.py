"""Tests for terminal charts, the report helpers, and the experiments CLI."""

import math

import pytest

from repro.experiments.__main__ import main as experiments_main
from repro.experiments.report import heading, minutes, pct, render_series, render_table
from repro.viz import bar_chart, histogram, line_plot


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "bb" in lines[2] and "2" in lines[2]
        # Max value fills the full width.
        assert "█" * 10 in lines[2]

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0], width=5)
        assert "x" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_unit_suffix(self):
        assert "3 min" in bar_chart(["a"], [3.0], unit=" min")

    def test_empty(self):
        assert bar_chart([], [], title="empty") == "empty"


class TestLinePlot:
    def test_renders_markers_and_legend(self):
        out = line_plot({"up": ([0, 1, 2], [0, 1, 2]), "down": ([0, 1, 2], [2, 1, 0])})
        assert "●" in out and "○" in out
        assert "up" in out and "down" in out

    def test_nan_skipped(self):
        out = line_plot({"s": ([0, 1, 2], [1.0, math.nan, 3.0])})
        assert "●" in out

    def test_constant_series(self):
        out = line_plot({"flat": ([0, 1], [5.0, 5.0])})
        assert "5" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_plot({"s": ([0, 1], [1.0])})

    def test_empty(self):
        assert line_plot({}, title="t") == "t"
        assert line_plot({"s": ([], [])}, title="t") == "t"


class TestHistogram:
    def test_counts_sum(self):
        out = histogram([1, 1, 2, 3, 3, 3], bins=3, title="h")
        assert out.splitlines()[0] == "h"
        # 3 appears as the tallest bin count
        assert "3" in out

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_all_nan(self):
        assert histogram([math.nan], title="t") == "t"


class TestReportHelpers:
    def test_render_table_alignment(self):
        out = render_table(["col", "x"], [("a", 1), ("long-cell", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("col")
        assert "long-cell" in lines[3]
        # Separator spans column widths.
        assert set(lines[1].replace("  ", "")) == {"-"}

    def test_render_series(self):
        out = render_series("s", [1, 2], ["a", "b"])
        assert "s:" in out and "1: a" in out

    def test_heading(self):
        out = heading("Title")
        assert out == "Title\n====="

    def test_pct_and_minutes(self):
        assert pct(12.345) == "12.3%"
        assert minutes(120.0) == "2.0 min"


class TestExperimentsCLI:
    def test_table1(self, capsys):
        assert experiments_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "181933" in out

    def test_fig6b_smoke_with_chart(self, capsys):
        assert experiments_main(["fig6b", "--scale", "smoke", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6(b)" in out
        assert "█" in out  # the chart rendered

    def test_fig1_with_chart(self, capsys):
        assert experiments_main(["fig1", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "NODE_FAIL" in out and "┤" in out

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["table1", "--scale", "galactic"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["fig99"])
