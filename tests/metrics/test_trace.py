"""Tests for operation tracing and its analysis."""

import pytest

from repro.cluster import Cluster
from repro.dl import Dataset, TrainingConfig, TrainingJob
from repro.metrics import Span, TraceAnalysis, Tracer


class TestTracer:
    def test_record_and_len(self):
        t = Tracer()
        t.record("op", 0, 1.0, 2.0, nbytes=10.0)
        assert len(t) == 1
        assert t.spans[0].duration == 1.0

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record("op", 0, 1.0, 2.0)
        assert len(t) == 0

    def test_backwards_span_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("op", 0, 2.0, 1.0)


class TestTraceAnalysis:
    def _spans(self):
        return [
            Span("read", 0, 0.0, 1.0, 100.0),
            Span("read", 1, 0.5, 2.5, 200.0),
            Span("read", 0, 2.0, 3.0, 100.0),
            Span("write", 0, 0.0, 4.0, 50.0),
        ]

    def test_kinds(self):
        a = TraceAnalysis(self._spans())
        assert a.kinds == ("read", "write")

    def test_percentiles(self):
        a = TraceAnalysis(self._spans())
        p = a.percentiles("read", qs=(50,))
        assert p[50] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            a.percentiles("missing")

    def test_total_and_per_node_bytes(self):
        a = TraceAnalysis(self._spans())
        assert a.total_bytes("read") == 400.0
        assert a.total_bytes() == 450.0
        assert a.per_node_bytes("read") == {0: 200.0, 1: 200.0}

    def test_concurrency_queries(self):
        a = TraceAnalysis(self._spans())
        assert a.concurrency("read", 0.75) == 2
        assert a.concurrency("read", 1.5) == 1
        assert a.peak_concurrency("read") == 2
        assert a.peak_concurrency("missing") == 0

    def test_breakdown_table(self):
        rows = TraceAnalysis(self._spans()).breakdown_table()
        assert [r[0] for r in rows] == ["read", "write"]
        read_row = rows[0]
        assert read_row[1] == 3 and read_row[2] == pytest.approx(400e-9)

    def test_summary(self):
        s = TraceAnalysis(self._spans()).summary("read")
        assert s.n == 3


class TestEndToEndTracing:
    def test_training_job_produces_spans(self):
        ds = Dataset(name="t", n_samples=64, sample_bytes=1e6)
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        job = TrainingJob(cluster, ds, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8), trace=True)
        job.run()
        a = job.tracer.analyze()
        assert "client.rpc_read" in a.kinds
        assert "server.pfs_fetch" in a.kinds
        # Cold epoch fetched the whole dataset from the PFS exactly once.
        assert a.total_bytes("server.pfs_fetch") == pytest.approx(ds.total_bytes)
        # Warm reads dominate the RPC count (2 epochs of traffic).
        assert len(a.of_kind("client.rpc_read")) > len(a.of_kind("server.pfs_fetch"))

    def test_tracing_off_by_default(self):
        ds = Dataset(name="t", n_samples=16, sample_bytes=1e6)
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        job = TrainingJob(cluster, ds, "FT w/ NVMe", TrainingConfig(epochs=1, batch_size=8))
        assert job.tracer is None

    def test_timeout_spans_recorded_on_failure(self):
        ds = Dataset(name="t", n_samples=64, sample_bytes=1e6)
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        cfg = TrainingConfig(epochs=3, batch_size=8, ttl=0.3, timeout_threshold=2)
        job = TrainingJob(cluster, ds, "FT w/ NVMe", cfg, trace=True)
        from repro.cluster.slurm import SlurmController
        from repro.failures import FailureInjector

        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        job.run()
        a = job.tracer.analyze()
        timeouts = a.of_kind("client.rpc_timeout")
        assert timeouts
        # Every timeout span lasted at least the TTL.
        assert min(s.duration for s in timeouts) >= 0.3 - 1e-9
