"""Tests for counters, summary statistics, and run timelines."""

import numpy as np
import pytest

from repro.metrics import (
    MetricsCollector,
    Timeline,
    percent_change,
    speedup,
    summarize,
)


class TestCollector:
    def test_counters(self):
        m = MetricsCollector()
        m.inc("reads")
        m.inc("reads", 2)
        m.add("bytes", 100.0)
        assert m.get("reads") == 3 and m.get("bytes") == 100.0
        assert m.get("missing") == 0.0

    def test_histograms(self):
        m = MetricsCollector()
        m.bump("served", "node0", 5)
        m.bump("served", "node1", 3)
        m.bump("served", "node0", 1)
        assert m.histogram("served") == {"node0": 6, "node1": 3}
        np.testing.assert_array_equal(
            m.histogram_array("served", ["node0", "node1", "node2"]), [6.0, 3.0, 0.0]
        )

    def test_series(self):
        m = MetricsCollector()
        m.record("queue", 1.0, 5.0)
        m.record("queue", 2.0, 7.0)
        t, v = m.series_arrays("queue")
        np.testing.assert_array_equal(t, [1.0, 2.0])
        np.testing.assert_array_equal(v, [5.0, 7.0])
        t_empty, _ = m.series_arrays("nothing")
        assert len(t_empty) == 0

    def test_snapshot_is_a_copy(self):
        m = MetricsCollector()
        m.inc("x")
        snap = m.snapshot()
        m.inc("x")
        assert snap["x"] == 1 and m.get("x") == 2

    def test_merge(self):
        a, b = MetricsCollector(), MetricsCollector()
        a.inc("x", 1)
        b.inc("x", 2)
        b.bump("h", "k", 4)
        b.record("s", 0.0, 1.0)
        a.merge(b)
        assert a.get("x") == 3
        assert a.histogram("h") == {"k": 4}
        assert len(a.series["s"]) == 1


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4 and s.mean == 2.5 and s.median == 2.5
        assert s.min == 1.0 and s.max == 4.0
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_summarize_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0 and s.mean == 5.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_percent_change(self):
        assert percent_change(100.0, 125.0) == pytest.approx(25.0)
        assert percent_change(100.0, 75.0) == pytest.approx(-25.0)
        with pytest.raises(ValueError):
            percent_change(0.0, 1.0)

    def test_speedup_matches_paper_convention(self):
        # "outperforming FT w/ PFS by 24.9%": nvme = pfs × (1 - 0.249)
        t_pfs = 100.0
        t_nvme = 75.1
        assert speedup(t_pfs, t_nvme) == pytest.approx(24.9)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_summary_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestTimeline:
    def test_epoch_recording(self):
        tl = Timeline()
        rec = tl.begin_epoch(0, 10.0, n_nodes=8)
        rec.end = 25.0
        assert rec.duration == 15.0
        assert tl.epoch_durations() == {0: 15.0}

    def test_unfinished_epoch_duration_raises(self):
        tl = Timeline()
        rec = tl.begin_epoch(0, 0.0, 4)
        with pytest.raises(ValueError):
            _ = rec.duration

    def test_rollback_attempts_summed(self):
        tl = Timeline()
        a = tl.begin_epoch(1, 0.0, 8)
        a.end = 5.0
        b = tl.begin_epoch(1, 7.0, 7)
        b.end = 17.0
        assert tl.epoch_durations() == {1: 15.0}

    def test_failure_marks_victim(self):
        tl = Timeline()
        tl.begin_epoch(2, 0.0, 8)
        tl.note_failure(3.0, node_id=5, epoch=2)
        assert tl.victim_epochs() == [2]
        assert tl.failures[0].node_id == 5

    def test_failure_after_epoch_end_not_victim(self):
        tl = Timeline()
        rec = tl.begin_epoch(0, 0.0, 8)
        rec.end = 1.0
        tl.note_failure(2.0, node_id=1, epoch=0)
        assert rec.victim is False

    def test_current_epoch(self):
        tl = Timeline()
        assert tl.current_epoch() is None
        rec = tl.begin_epoch(0, 0.0, 2)
        assert tl.current_epoch() is rec
