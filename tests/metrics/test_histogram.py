"""Property-based coverage for the log-bucketed latency histogram.

The two contracts the loadgen subsystem leans on:

1. every reported quantile is within one bucket width (a bounded
   *relative* error) of the exact sorted-array quantile;
2. merging per-worker histograms is indistinguishable from recording
   every sample into a single histogram.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import LatencyHistogram

# latencies spanning the histogram's default resolvable range
_values = st.floats(min_value=2e-6, max_value=90.0, allow_nan=False, allow_infinity=False)
_samples = st.lists(_values, min_size=1, max_size=300)
_quantiles = st.floats(min_value=0.0, max_value=1.0)


def exact_quantile(values: list[float], q: float) -> float:
    """The k-th smallest with k = ceil(q*n): what the histogram estimates."""
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


class TestQuantileAccuracy:
    @given(values=_samples, q=_quantiles)
    @settings(max_examples=200, deadline=None)
    def test_within_one_bucket_width_of_exact(self, values, q):
        hist = LatencyHistogram()
        hist.record_many(values)
        exact = exact_quantile(values, q)
        got = hist.quantile(q)
        # Upper-edge reporting: never under-reports, and over-reports by at
        # most one bucket width (the geometry's relative error bound).
        assert got >= exact or math.isclose(got, exact, rel_tol=1e-12)
        assert got <= exact * hist.relative_error_bound * (1 + 1e-12)

    @given(values=_samples)
    @settings(max_examples=100, deadline=None)
    def test_standard_percentiles_ordered_and_bounded(self, values):
        hist = LatencyHistogram()
        hist.record_many(values)
        p = hist.percentiles()
        assert p["p50"] <= p["p90"] <= p["p99"] <= p["p999"] <= p["max"]
        assert p["min"] == pytest.approx(min(values))
        assert p["max"] == pytest.approx(max(values))
        assert p["count"] == len(values)

    def test_max_is_exact_not_quantised(self):
        hist = LatencyHistogram()
        hist.record_many([0.001, 0.0017772])
        assert hist.max == 0.0017772
        assert hist.quantile(1.0) == 0.0017772  # clamped to exact max


class TestMerge:
    @given(parts=st.lists(_samples, min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_single_histogram(self, parts):
        single = LatencyHistogram()
        partials = []
        for chunk in parts:
            h = LatencyHistogram()
            h.record_many(chunk)
            single.record_many(chunk)
            partials.append(h)
        merged = LatencyHistogram.merged(partials)
        assert merged.count == single.count
        assert merged.min == single.min
        assert merged.max == single.max
        assert merged.sum == pytest.approx(single.sum)
        assert merged._counts == single._counts
        for q in (0.0, 0.5, 0.9, 0.99, 0.999, 1.0):
            assert merged.quantile(q) == single.quantile(q)

    def test_incompatible_geometry_rejected(self):
        a = LatencyHistogram(buckets_per_decade=40)
        b = LatencyHistogram(buckets_per_decade=20)
        with pytest.raises(ValueError, match="geometry"):
            a.merge(b)

    def test_merged_of_nothing_is_empty(self):
        assert LatencyHistogram.merged([]).count == 0


class TestEdges:
    def test_empty_histogram_has_no_quantiles(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(0.5)
        assert LatencyHistogram().percentiles() == {"count": 0}

    def test_rejects_bad_values(self):
        hist = LatencyHistogram()
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                hist.record(bad)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)

    def test_out_of_range_values_clamp_but_count(self):
        hist = LatencyHistogram(min_value=1e-3, max_value=1.0)
        hist.record(1e-9)  # below range -> first bucket
        hist.record(50.0)  # above range -> last bucket
        assert hist.count == 2
        assert hist.min == 1e-9 and hist.max == 50.0

    def test_zero_recordable(self):
        hist = LatencyHistogram()
        hist.record(0.0)
        assert hist.quantile(0.5) <= hist.min_value * hist.relative_error_bound

    def test_mean_and_len(self):
        hist = LatencyHistogram()
        hist.record_many([0.1, 0.3])
        assert hist.mean == pytest.approx(0.2)
        assert len(hist) == 2
