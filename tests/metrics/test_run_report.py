"""Tests for the post-run report renderer."""

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.cluster.slurm import SlurmController
from repro.dl import Dataset, TrainingConfig, TrainingJob
from repro.dl.fastsim import FluidTrainingModel
from repro.failures import FailureInjector
from repro.metrics import render_run_report

DS = Dataset(name="t", n_samples=128, sample_bytes=1.5e6)


def run_with_failure(trace=True):
    cluster = Cluster.frontier(n_nodes=6, seed=3)
    cfg = TrainingConfig(epochs=3, batch_size=8, ttl=0.4, timeout_threshold=2)
    job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg, trace=trace)
    FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
    return job, job.run()


class TestRunReport:
    def test_sections_present(self):
        job, result = run_with_failure()
        report = render_run_report(result, tracer=job.tracer)
        for section in ("Run report", "Epochs", "Failures", "I/O breakdown",
                        "Operation latencies"):
            assert section in report

    def test_header_facts(self):
        job, result = run_with_failure()
        report = render_run_report(result)
        assert "nodes 6 → 5" in report
        assert "completed" in report
        assert "1 failure(s)" in report

    def test_victim_epoch_flagged(self):
        job, result = run_with_failure()
        assert "victim" in render_run_report(result)

    def test_io_breakdown_contents(self):
        job, result = run_with_failure()
        report = render_run_report(result)
        assert "cache hit rate" in report
        assert "RPC timeouts" in report

    def test_without_tracer(self):
        job, result = run_with_failure(trace=False)
        report = render_run_report(result)
        assert "Operation latencies" not in report

    def test_aborted_run_reported(self):
        cluster = Cluster.frontier(n_nodes=4, seed=3)
        cfg = TrainingConfig(epochs=3, batch_size=8, ttl=0.3, timeout_threshold=1)
        job = TrainingJob(cluster, DS, "NoFT", cfg)
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        result = job.run()
        report = render_run_report(result)
        assert "ABORTED" in report and "NoFT" in report

    def test_fluid_result_supported(self):
        res = FluidTrainingModel(
            frontier(8), DS, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8), 1, seed=2
        ).run()
        report = render_run_report(res)
        assert "Run report" in report and "Epochs" in report
        # Fluid results carry no MetricsCollector: no I/O section, no crash.
        assert "I/O breakdown" not in report

    def test_no_failure_run(self):
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", TrainingConfig(epochs=1, batch_size=8))
        result = job.run()
        assert "no failures injected" in render_run_report(result)
