"""Driver tests against a real LocalCluster (short durations, few workers)."""

import pytest

from repro.loadgen import (
    ClosedLoopDriver,
    DriverConfig,
    HookRecorder,
    OpenLoopDriver,
    Workload,
    WorkloadSpec,
    make_driver,
)
from repro.runtime import LocalCluster


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_servers=2, policy="elastic", ttl=0.4, timeout_threshold=2) as c:
        yield c


@pytest.fixture(scope="module")
def workload(cluster):
    w = Workload(WorkloadSpec(n_files=16, file_bytes=1024, read_fraction=0.9, seed=11))
    cluster.paths = w.materialize(cluster.pfs)
    return w


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sine"},
            {"workers": 0},
            {"rate": 0.0},
            {"queue_depth": 0},
            {"backpressure": "explode"},
            {"batch": 0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            DriverConfig(**kwargs)

    def test_make_driver_dispatches_on_mode(self, cluster, workload):
        client = cluster.client()
        assert isinstance(make_driver(client, workload, DriverConfig(mode="closed")), ClosedLoopDriver)
        assert isinstance(make_driver(client, workload, DriverConfig(mode="open")), OpenLoopDriver)

    def test_nonpositive_duration_rejected(self, cluster, workload):
        driver = make_driver(cluster.client(), workload, DriverConfig(workers=1))
        with pytest.raises(ValueError):
            driver.run(0)


class TestClosedLoop:
    def test_drives_traffic_and_records_latency(self, cluster, workload):
        client = cluster.client()
        driver = ClosedLoopDriver(client, workload, DriverConfig(mode="closed", workers=3))
        result = driver.run(0.5)
        assert result.mode == "closed"
        assert result.ops > 50  # local sockets easily clear this
        assert result.errors == 0
        assert result.latency.count == result.ops
        assert result.service.count == result.ops
        assert result.throughput > 0
        reads = sum(v for k, v in result.outcomes.items() if k.startswith("read:"))
        writes = result.outcomes.get("write:ok", 0)
        assert reads + writes == result.ops
        assert writes > 0  # the 10% write mix showed up

    def test_hook_restored_after_run(self, cluster, workload):
        client = cluster.client()
        sentinel = lambda *a: None  # noqa: E731
        client.on_op = sentinel
        ClosedLoopDriver(client, workload, DriverConfig(workers=1)).run(0.2)
        assert client.on_op is sentinel

    def test_to_dict_shape(self, cluster, workload):
        client = cluster.client()
        result = ClosedLoopDriver(client, workload, DriverConfig(workers=2)).run(0.3)
        d = result.to_dict()
        for key in ("mode", "ops", "throughput_ops_s", "errors", "shed", "latency", "outcomes"):
            assert key in d
        assert d["latency"]["p50"] <= d["latency"]["p99"] <= d["latency"]["max"]
        assert 0.0 <= d["client_hit_rate"] <= 1.0


class TestOpenLoop:
    def test_rate_controls_offered_load(self, cluster, workload):
        client = cluster.client()
        cfg = DriverConfig(mode="open", workers=2, rate=100.0, queue_depth=128)
        result = OpenLoopDriver(client, workload, cfg).run(1.0)
        # Poisson(100/s) over 1s: generous 3-sigma-ish bounds
        assert 60 <= result.offered <= 140
        assert result.ops + result.shed == result.offered
        assert result.errors == 0

    def test_shed_backpressure_under_overload(self, cluster, workload):
        client = cluster.client()
        # one worker + deep offered rate + tiny queue -> must shed
        cfg = DriverConfig(mode="open", workers=1, rate=2000.0, queue_depth=2, backpressure="shed")
        slow = Workload(WorkloadSpec(n_files=8, file_bytes=1024, seed=12))
        cluster.paths = slow.materialize(cluster.pfs)
        result = OpenLoopDriver(client, slow, cfg).run(0.5)
        assert result.shed > 0
        assert result.ops + result.shed == result.offered

    def test_block_backpressure_sheds_nothing_until_deadline(self, cluster, workload):
        client = cluster.client()
        cfg = DriverConfig(mode="open", workers=2, rate=150.0, queue_depth=64, backpressure="block")
        result = OpenLoopDriver(client, workload, cfg).run(0.5)
        assert result.shed == 0
        assert result.ops == result.offered

    def test_latency_includes_queue_wait(self, cluster, workload):
        client = cluster.client()
        cfg = DriverConfig(mode="open", workers=1, rate=400.0, queue_depth=64)
        result = OpenLoopDriver(client, workload, cfg).run(0.5)
        if result.ops:  # e2e latency can only be >= pure service time
            assert result.latency.quantile(0.5) >= result.service.quantile(0.5) * 0.5


class TestHookRecorder:
    def test_records_per_thread_and_merges(self):
        rec = HookRecorder()
        rec("read", "/a", 0.001, "cache")
        rec("read", "/b", 0.002, "pfs")
        rec("write", "/c", 0.003, "ok")
        assert rec.service_histogram().count == 3
        assert rec.outcome_counts() == {"read:cache": 1, "read:pfs": 1, "write:ok": 1}

    def test_node_attribution_and_reconnects(self):
        rec = HookRecorder()
        rec("read", "/a", 0.001, "cache", node_id=0)
        rec("read", "/b", 0.001, "cache", node_id=0, reconnects=1)
        rec("read", "/c", 0.001, "pfs", node_id=2)
        rec("read", "/d", 0.001, "pfs_direct")  # no node answered
        assert rec.node_counts() == {"node:0": 2, "node:2": 1}
        assert rec.reconnects() == 1
        # attribution never leaks into the outcome counts
        assert rec.outcome_counts() == {"read:cache": 2, "read:pfs": 1, "read:pfs_direct": 1}

    def test_driver_result_carries_node_ops(self, cluster, workload):
        client = cluster.client()
        result = ClosedLoopDriver(client, workload, DriverConfig(workers=2)).run(0.3)
        d = result.to_dict()
        assert "node_ops" in d and "reconnects" in d
        # every successfully-answered cache/pfs read was attributed to a node
        attributed = sum(result.node_ops.values())
        assert attributed > 0
        assert attributed <= result.ops
