"""Join-under-traffic scenario tests (the loadgen side of the tentpole).

A scheduled ``join`` ChaosEvent fires mid-phase while the driver hammers
the cluster; the run must finish with zero client-visible errors and the
BENCH artifact must carry the ``rebalance`` block (schema v3+).
"""

import json

import pytest

from repro.loadgen.__main__ import build_scenario, make_parser
from repro.loadgen.drivers import DriverConfig
from repro.loadgen.scenario import (
    BENCH_SCHEMA_VERSION,
    ChaosEvent,
    PhaseSpec,
    Scenario,
)
from repro.loadgen.workload import Workload, WorkloadSpec
from repro.runtime.cluster import LocalCluster


class TestChaosEventValidation:
    def test_join_action_accepted(self):
        e = ChaosEvent(at=0.5, action="join", weight=2.0)
        assert e.action == "join" and e.weight == 2.0

    def test_bad_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent(at=0.0, action="drain")

    def test_bad_weight_rejected(self):
        with pytest.raises(ValueError):
            ChaosEvent(at=0.0, action="join", weight=0.0)


class TestJoinUnderTraffic:
    def test_join_scenario_zero_errors_and_versioned_artifact(self, tmp_path):
        spec = WorkloadSpec(n_files=48, file_bytes=1024, distribution="zipf", seed=7)
        phases = [
            PhaseSpec(
                name="join-chaos",
                duration=1.5,
                driver=DriverConfig(mode="closed", workers=3),
                chaos=(ChaosEvent(at=0.3, action="join", weight=1.5),),
            )
        ]
        with LocalCluster(
            n_servers=3, workdir=tmp_path, policy="elastic", ttl=0.5
        ) as cluster:
            scenario = Scenario(cluster, Workload(spec), phases)
            report = scenario.run()

        d = report.to_dict()
        assert d["schema_version"] == BENCH_SCHEMA_VERSION == 4
        assert d["totals"]["errors"] == 0, d["totals"]
        # the join fired and is recorded both as a chaos action...
        actions = d["phases"][0]["chaos"]
        assert any(a["action"] == "join" for a in actions)
        # ...and in the rebalance block with its full report
        reb = d["rebalance"]
        join = reb["joins"][0]
        assert join["state"] == "SERVING"
        assert join["warmed_keys"] + join.get("missing_keys", 0) == join["plan"]["moved_keys"]
        assert reb["ring_epoch"] >= 1 and reb["membership_version"] >= 1
        # join/transfer counters surface in deltas and snapshots
        assert "transfers_in" in d["phases"][0]["server_delta"]
        assert d["servers"][join["node"]]["transfers_in"] == join["warmed_keys"]
        assert d["client_stats"]["timeouts"] == 0

        path = tmp_path / "bench.json"
        report.write_json(path)
        assert json.loads(path.read_text())["rebalance"]["joins"]

    def test_no_join_leaves_rebalance_block_empty(self, tmp_path):
        spec = WorkloadSpec(n_files=16, file_bytes=512, seed=7)
        phases = [PhaseSpec(name="steady", duration=0.4, driver=DriverConfig(workers=2))]
        with LocalCluster(n_servers=2, workdir=tmp_path, policy="elastic", ttl=0.5) as cluster:
            report = Scenario(cluster, Workload(spec), phases).run()
        assert report.to_dict()["rebalance"] == {}


class TestCLIWiring:
    def test_join_flags_build_a_join_event(self, tmp_path):
        args = make_parser().parse_args(
            ["--chaos", "2", "--no-kill", "--join-at", "0.5", "--join-weight", "2.5"]
        )
        with LocalCluster(n_servers=2, workdir=tmp_path, policy="elastic") as cluster:
            scenario = build_scenario(cluster, args)
        chaos_phase = [s for s in scenario.phases if s.name == "chaos"][0]
        assert len(chaos_phase.chaos) == 1
        event = chaos_phase.chaos[0]
        assert event.action == "join" and event.at == 0.5 and event.weight == 2.5
        assert scenario.extra_config["join_at"] == 0.5

    def test_join_composes_with_kill(self, tmp_path):
        args = make_parser().parse_args(["--chaos", "2", "--join-at", "1.5"])
        with LocalCluster(n_servers=2, workdir=tmp_path, policy="elastic") as cluster:
            scenario = build_scenario(cluster, args)
        actions = [e.action for e in scenario.phases[-1].chaos]
        assert actions == ["kill", "restart", "join"]
