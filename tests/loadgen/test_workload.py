"""Workload model: determinism, popularity shape, sizes, op mix."""

import numpy as np
import pytest

from repro.loadgen import Workload, WorkloadSpec
from repro.runtime.storage import PFSDir


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_files": 0},
            {"file_bytes": 0},
            {"distribution": "pareto"},
            {"size_model": "bimodal"},
            {"read_fraction": 1.5},
            {"zipf_s": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(**kwargs)

    def test_to_dict_round_trips_config(self):
        spec = WorkloadSpec(n_files=8, distribution="uniform", seed=7)
        d = spec.to_dict()
        assert d["n_files"] == 8 and d["distribution"] == "uniform" and d["seed"] == 7


class TestDeterminism:
    def test_same_seed_same_ops(self):
        a, b = Workload(WorkloadSpec(seed=42)), Workload(WorkloadSpec(seed=42))
        ops_a = a.batch(a.worker_rng(0), 200)
        ops_b = b.batch(b.worker_rng(0), 200)
        assert ops_a == ops_b

    def test_different_workers_decorrelated(self):
        w = Workload(WorkloadSpec(seed=42))
        ops_0 = w.batch(w.worker_rng(0), 100)
        ops_1 = w.batch(w.worker_rng(1), 100)
        assert ops_0 != ops_1

    def test_different_streams_decorrelated(self):
        w = Workload(WorkloadSpec(seed=42))
        assert w.batch(w.worker_rng(0, stream=0), 100) != w.batch(w.worker_rng(0, stream=1), 100)

    def test_corpus_deterministic(self, tmp_path):
        spec = WorkloadSpec(n_files=6, file_bytes=512, seed=9)
        pfs_a, pfs_b = PFSDir(tmp_path / "a"), PFSDir(tmp_path / "b")
        Workload(spec).materialize(pfs_a)
        Workload(spec).materialize(pfs_b)
        for i in range(6):
            path = f"/dataset/train/sample_{i:06d}.bin"
            assert pfs_a.read(path) == pfs_b.read(path)
            assert len(pfs_a.read(path)) == 512


class TestPopularity:
    def test_zipf_concentrates_mass(self):
        zipf = Workload(WorkloadSpec(n_files=256, distribution="zipf", zipf_s=1.2))
        uniform = Workload(WorkloadSpec(n_files=256, distribution="uniform"))
        assert zipf.expected_hot_fraction(8) > 4 * uniform.expected_hot_fraction(8)
        assert uniform.expected_hot_fraction(8) == pytest.approx(8 / 256)

    def test_empirical_frequencies_match_probs(self):
        w = Workload(WorkloadSpec(n_files=16, distribution="zipf", zipf_s=1.0, seed=5))
        rng = w.worker_rng(0)
        counts = np.zeros(16)
        for op in w.batch(rng, 20000):
            counts[w.paths.index(op.path)] += 1
        freqs = counts / counts.sum()
        assert np.abs(freqs - w.probs).max() < 0.02

    def test_probabilities_normalised(self):
        w = Workload(WorkloadSpec(n_files=100, distribution="zipf"))
        assert w.probs.sum() == pytest.approx(1.0)


class TestMixAndSizes:
    def test_read_fraction_respected(self):
        w = Workload(WorkloadSpec(read_fraction=0.7, seed=3))
        ops = w.batch(w.worker_rng(0), 5000)
        reads = sum(1 for o in ops if o.kind == "read")
        assert 0.65 < reads / len(ops) < 0.75

    def test_pure_read_workload(self):
        w = Workload(WorkloadSpec(read_fraction=1.0))
        assert all(o.kind == "read" for o in w.batch(w.worker_rng(0), 500))

    def test_lognormal_sizes_vary_around_mean(self):
        w = Workload(WorkloadSpec(n_files=400, file_bytes=4096, size_model="lognormal"))
        assert len(set(w.sizes.tolist())) > 100  # actually varied
        assert 0.5 * 4096 < w.sizes.mean() < 2.0 * 4096
        assert w.sizes.min() >= 1
        assert w.total_corpus_bytes() == int(w.sizes.sum())

    def test_fixed_sizes(self):
        w = Workload(WorkloadSpec(n_files=10, file_bytes=1024))
        assert set(w.sizes.tolist()) == {1024}
