"""Scenario layer + CLI: phases, chaos injection, JSON artifact."""

import json

import pytest

from repro.loadgen import (
    BENCH_SCHEMA_VERSION,
    ChaosEvent,
    DriverConfig,
    PhaseSpec,
    Scenario,
    Workload,
    WorkloadSpec,
)
from repro.loadgen.__main__ import main
from repro.runtime import LocalCluster


def _fast_driver(workers=2):
    return DriverConfig(mode="closed", workers=workers)


class TestSpecValidation:
    def test_chaos_event_validation(self):
        with pytest.raises(ValueError):
            ChaosEvent(at=-1.0, action="kill")
        with pytest.raises(ValueError):
            ChaosEvent(at=0.0, action="explode")

    def test_phase_needs_positive_duration(self):
        with pytest.raises(ValueError):
            PhaseSpec(name="x", duration=0.0)

    def test_scenario_needs_phases(self):
        with LocalCluster(n_servers=1) as cluster:
            with pytest.raises(ValueError):
                Scenario(cluster, Workload(WorkloadSpec(n_files=2)), phases=[])


class TestScenarioRun:
    def test_phases_run_in_order_with_server_deltas(self):
        with LocalCluster(n_servers=2, policy="elastic", ttl=0.3, timeout_threshold=2) as cluster:
            workload = Workload(WorkloadSpec(n_files=12, file_bytes=1024, seed=4))
            scenario = Scenario(
                cluster,
                workload,
                phases=[
                    PhaseSpec(name="warmup", duration=0.4, driver=_fast_driver()),
                    PhaseSpec(name="steady", duration=0.4, driver=_fast_driver()),
                ],
            )
            seen = []
            report = scenario.run(on_phase=lambda p: seen.append(p.name))
        assert seen == ["warmup", "steady"]
        assert [p.name for p in report.phases] == ["warmup", "steady"]
        warm, steady = report.phases
        # warm-up misses populate the cache; steady state mostly hits
        assert warm.server_delta["pfs_reads"] >= 12
        assert steady.result.to_dict()["client_hit_rate"] > 0.9
        for phase in report.phases:
            assert phase.result.errors == 0
            assert all(v >= 0 for v in phase.server_delta.values())

    def test_scheduled_kill_and_restart_fire_without_errors(self):
        with LocalCluster(n_servers=3, policy="elastic", ttl=0.2, timeout_threshold=2) as cluster:
            workload = Workload(WorkloadSpec(n_files=18, file_bytes=1024, seed=6))
            scenario = Scenario(
                cluster,
                workload,
                phases=[
                    PhaseSpec(name="warmup", duration=0.4, driver=_fast_driver()),
                    PhaseSpec(
                        name="chaos",
                        duration=1.6,
                        driver=_fast_driver(workers=3),
                        chaos=(
                            ChaosEvent(at=0.4, action="kill"),
                            ChaosEvent(at=1.1, action="restart"),
                        ),
                    ),
                ],
            )
            report = scenario.run()
        chaos = report.phases[1]
        actions = [(a["action"], a["node"]) for a in chaos.chaos_actions]
        assert ("kill", 0) in actions and ("restart", 0) in actions
        assert chaos.result.errors == 0
        assert chaos.result.ops > 0
        assert report.totals()["errors"] == 0

    def test_monkey_phase_records_actions(self):
        with LocalCluster(n_servers=3, policy="elastic", ttl=0.2, timeout_threshold=2) as cluster:
            workload = Workload(WorkloadSpec(n_files=8, file_bytes=512, seed=8))
            scenario = Scenario(
                cluster,
                workload,
                phases=[
                    PhaseSpec(
                        name="soak",
                        duration=1.2,
                        driver=_fast_driver(),
                        monkey={"interval": 0.2, "seed": 1, "min_alive": 1},
                    )
                ],
            )
            report = scenario.run()
        soak = report.phases[0]
        assert soak.result.errors == 0
        assert all(a["action"] in ("kill", "restart") for a in soak.chaos_actions)

    def test_report_json_round_trip(self, tmp_path):
        with LocalCluster(n_servers=1) as cluster:
            workload = Workload(WorkloadSpec(n_files=4, file_bytes=256, seed=2))
            report = Scenario(
                cluster,
                workload,
                phases=[PhaseSpec(name="only", duration=0.3, driver=_fast_driver(1))],
            ).run()
            out = report.write_json(tmp_path / "BENCH_loadgen.json")
        data = json.loads(out.read_text())
        assert data["bench"] == "loadgen" and data["schema_version"] == BENCH_SCHEMA_VERSION
        assert data["config"]["workload"]["n_files"] == 4
        assert data["totals"]["ops"] == data["phases"][0]["ops"]
        assert data["phases"][0]["latency"]["count"] == data["phases"][0]["ops"]
        assert "0" in data["servers"] or 0 in data["servers"]


class TestCLI:
    def test_smoke_run_writes_artifact_and_survives_kill(self, tmp_path, capsys):
        out = tmp_path / "BENCH_loadgen.json"
        rc = main(
            [
                "--servers", "3",
                "--duration", "0.8",
                "--warmup", "0.3",
                "--chaos", "1.0",
                "--workload", "zipf",
                "--workers", "2",
                "--ttl", "0.2",
                "--out", str(out),
            ]
        )
        assert rc == 0
        captured = capsys.readouterr().out
        assert "warmup" in captured and "steady" in captured and "chaos" in captured
        assert "kill node" in captured
        data = json.loads(out.read_text())
        assert data["totals"]["errors"] == 0
        assert len(data["phases"]) == 3
        chaos_actions = data["phases"][2]["chaos"]
        assert any(a["action"] == "kill" for a in chaos_actions)
        assert any(a["action"] == "restart" for a in chaos_actions)

    def test_config_echo_is_seed_deterministic(self, tmp_path):
        outs = []
        for run in range(2):
            out = tmp_path / f"bench_{run}.json"
            main(
                [
                    "--servers", "2",
                    "--duration", "0.3",
                    "--warmup", "0",
                    "--chaos", "0",
                    "--seed", "77",
                    "--workers", "1",
                    "--out", str(out),
                ]
            )
            outs.append(json.loads(out.read_text()))
        # everything except wall-clock measurements is identical
        assert outs[0]["config"] == outs[1]["config"]
        assert outs[0]["schema_version"] == outs[1]["schema_version"]

    def test_no_artifact_when_out_empty(self, capsys):
        rc = main(["--servers", "1", "--duration", "0.2", "--warmup", "0", "--chaos", "0",
                   "--workers", "1", "--out", ""])
        assert rc == 0
        assert "wrote" not in capsys.readouterr().out

    def test_uniform_workload_and_open_mode(self, tmp_path):
        out = tmp_path / "b.json"
        rc = main(
            [
                "--servers", "2",
                "--duration", "0.5",
                "--warmup", "0.2",
                "--chaos", "0",
                "--workload", "uniform",
                "--mode", "open",
                "--rate", "150",
                "--workers", "2",
                "--out", str(out),
            ]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["phases"][-1]["mode"] == "open"
        assert data["config"]["workload"]["distribution"] == "uniform"
