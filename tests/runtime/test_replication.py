"""Tests for k-way replication in the real threaded runtime."""

import time

import pytest

from repro.runtime import LocalCluster


@pytest.fixture
def cluster():
    with LocalCluster(
        n_servers=4, policy="replicated", replicas=2, ttl=0.3, timeout_threshold=2
    ) as c:
        c.populate(n_files=24, file_bytes=2048, seed=2)
        yield c


def warm(cluster, client):
    for p in cluster.paths:
        client.read(p)
    time.sleep(0.4)  # background replica pushes + data movers


class TestReplicaPopulation:
    def test_pushes_happen_on_cold_reads(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        assert client.stats["replica_pushes"] > 0

    def test_replicated_entries_exist_on_both_nodes(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        checked = 0
        for p in cluster.paths:
            targets = client.policy.replica_targets(p)
            if len(set(targets)) < 2:
                continue  # replica collision: single copy by construction
            for node in set(targets):
                assert cluster.servers[node].nvme.contains(p)
            checked += 1
        assert checked > 0

    def test_content_identical_across_replicas(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        p = next(q for q in cluster.paths if len(set(client.policy.replica_targets(q))) == 2)
        a, b = (cluster.servers[n].nvme.read(p) for n in set(client.policy.replica_targets(p)))
        assert a == b == cluster.pfs.resolve(p).read_bytes()


class TestFailover:
    def test_single_ttl_failover(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        path = next(q for q in cluster.paths if len(set(client.policy.replica_targets(q))) == 2)
        primary = client.policy.replica_targets(path)[0]
        cluster.kill_server(primary, mode="hang")
        t0 = time.monotonic()
        data = client.read(path)
        elapsed = time.monotonic() - t0
        assert len(data) == 2048
        # One TTL to time out the primary, then the surviving replica
        # serves immediately — not threshold × TTL.
        assert elapsed < cluster.ttl * 2
        assert client.stats["failovers"] >= 1

    def test_no_pfs_refetch_for_replicated_files(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        replicated_paths = [
            q for q in cluster.paths if len(set(client.policy.replica_targets(q))) == 2
        ]
        victim = client.policy.replica_targets(replicated_paths[0])[0]
        cluster.kill_server(victim, mode="hang")
        pfs_before = cluster.pfs.reads
        for p in replicated_paths:
            client.read(p)
            client.read(p)
        assert cluster.pfs.reads == pfs_before  # survivors had every byte

    def test_whole_dataset_survives_failure(self, cluster):
        client = cluster.client()
        warm(cluster, client)
        cluster.kill_server(0, mode="hang")
        for p in cluster.paths:
            assert len(client.read(p)) == 2048
