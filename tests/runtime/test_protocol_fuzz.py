"""Property-based fuzzing of the wire protocol."""

import socket
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Message, recv_message, send_message
from repro.runtime.protocol import BIN_OPS, send_binary_request

_header_values = st.recursive(
    st.none() | st.booleans() | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=10,
)

_headers = st.dictionaries(
    st.text(min_size=1, max_size=20).filter(lambda k: k != "payload_len"),
    _header_values,
    max_size=6,
)


class TestProtocolRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(header=_headers, payload=st.binary(max_size=4096))
    def test_any_header_payload_round_trips(self, header, payload):
        a, b = socket.socketpair()
        try:
            out = {}

            def reader():
                out["msg"] = recv_message(b)

            t = threading.Thread(target=reader, name="fuzz-frame-reader", daemon=True)
            t.start()
            send_message(a, Message(header=dict(header), payload=payload))
            t.join(timeout=5)
            assert not t.is_alive()
            msg = out["msg"]
            assert msg.payload == payload
            for k, v in header.items():
                assert msg.header[k] == v
            assert msg.header["payload_len"] == len(payload)
        finally:
            a.close()
            b.close()

    @settings(max_examples=20, deadline=None)
    @given(payloads=st.lists(st.binary(max_size=512), min_size=1, max_size=8))
    def test_back_to_back_frames_preserve_order(self, payloads):
        a, b = socket.socketpair()
        try:
            received = []

            def reader():
                for _ in payloads:
                    received.append(recv_message(b).payload)

            t = threading.Thread(target=reader, name="fuzz-order-reader", daemon=True)
            t.start()
            for i, p in enumerate(payloads):
                send_message(a, Message(header={"i": i}, payload=p))
            t.join(timeout=5)
            assert received == payloads
        finally:
            a.close()
            b.close()

    @settings(max_examples=40, deadline=None)
    @given(
        op=st.sampled_from(sorted(BIN_OPS)),
        path=st.text(max_size=200).filter(lambda s: len(s.encode("utf-8")) <= 0xFFFF),
        payload=st.binary(max_size=4096),
        seq=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_binary_request_round_trips(self, op, path, payload, seq):
        a, b = socket.socketpair()
        try:
            out = {}

            def reader():
                out["msg"] = recv_message(b)

            t = threading.Thread(target=reader, name="fuzz-bin-reader", daemon=True)
            t.start()
            msg = Message.request(op, path=path)
            msg.payload = payload
            send_binary_request(a, msg, seq=seq)
            t.join(timeout=5)
            assert not t.is_alive()
            got = out["msg"]
            assert got.op == op
            assert got.header["path"] == path
            assert got.payload == payload
            assert got.seq == seq
        finally:
            a.close()
            b.close()
