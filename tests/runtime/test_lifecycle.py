"""Connection & data-mover lifecycle hardening (the ISSUE 3 bug classes).

Two failure modes this file pins down:

* a **stale pooled socket** after a server restart must never be fed to
  the failure detector as node evidence — the client reconnects
  transparently and only the fresh attempt counts;
* a **miss storm** must not spawn unbounded data-mover threads — the
  bounded pool coalesces duplicates, drops oldest on overflow (counted),
  and drains gracefully on close.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import LocalCluster
from repro.runtime.server import DataMoverPool, FTCacheServer, ServerStats
from repro.runtime.storage import NVMeDir, PFSDir


def _mover_threads(node_id: int = 0) -> list[threading.Thread]:
    prefix = f"data-mover-{node_id}-"
    return [t for t in threading.enumerate() if t.name.startswith(prefix) and t.is_alive()]


class _SlowNVMeDir(NVMeDir):
    """NVMe stand-in whose writes lag, so the mover queue actually fills."""

    def __init__(self, root, write_delay: float = 0.002, **kwargs):
        super().__init__(root, **kwargs)
        self.write_delay = write_delay

    def write(self, key: str, data: bytes) -> None:
        time.sleep(self.write_delay)
        super().write(key, data)


class TestStaleSocketRegression:
    def test_same_address_restart_is_not_detector_evidence(self, tmp_path):
        """Kill→restart on the same host:port: the client's pooled socket is
        dead, but the node is healthy — zero declarations, zero timeouts."""
        with LocalCluster(
            n_servers=2, workdir=tmp_path, policy="nvme", ttl=0.5, timeout_threshold=2
        ) as c:
            paths = c.populate(n_files=8, file_bytes=512, seed=5)
            client = c.client()
            expected = {p: c.pfs.resolve(p).read_bytes() for p in paths}
            for p in paths:  # pool one connection per live server
                client.read(p)
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim, mode="drop")
            # The node comes back under its old identity before the client
            # notices; nobody tells the client (notify_clients=False).
            c.restart_server(victim, notify_clients=False, same_address=True)
            for p in paths:
                assert client.read(p) == expected[p]
            stats = client.stats
            assert stats["declared"] == 0
            assert stats["timeouts"] == 0
            assert stats["reconnects"] >= 1  # the stale socket was retried, not reported
            assert client.detector.stats.declared_failures == 0
            assert victim not in client.policy.failed_nodes

    def test_rolling_restart_without_notify_is_transparent(self, tmp_path):
        with LocalCluster(
            n_servers=1, workdir=tmp_path, policy="nvme", ttl=0.5, timeout_threshold=1
        ) as c:
            paths = c.populate(n_files=4, file_bytes=256, seed=6)
            client = c.client()
            for p in paths:
                client.read(p)
            # threshold=1: a single piece of false evidence would declare.
            c.restart_server(0, notify_clients=False, same_address=True)
            for p in paths:
                assert len(client.read(p)) == 256
            assert client.stats["declared"] == 0
            assert client.stats["timeouts"] == 0

    def test_admit_node_epoch_invalidates_every_threads_pool(self, tmp_path):
        """Pools are per-thread; the epoch bump in admit_node must retire
        stale sockets on threads that never saw the restart happen."""
        with LocalCluster(
            n_servers=2, workdir=tmp_path, policy="nvme", ttl=0.5, timeout_threshold=2
        ) as c:
            paths = c.populate(n_files=12, file_bytes=256, seed=7)
            client = c.client()
            errors: list[Exception] = []
            barrier = threading.Barrier(3)

            def reader(offset: int) -> None:
                try:
                    for p in paths:  # phase 1: pool sockets on this thread
                        client.read(p)
                    barrier.wait(timeout=5)
                    barrier.wait(timeout=10)  # phase 2 starts after the restart
                    for p in paths:
                        assert len(client.read(p)) == 256
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(k,), name=f"lifecycle-reader-{k}", daemon=True)
                for k in range(2)
            ]
            for t in threads:
                t.start()
            barrier.wait(timeout=5)
            c.restart_server(0, notify_clients=True, same_address=True)
            barrier.wait(timeout=5)
            for t in threads:
                t.join(timeout=10)
            assert errors == []
            assert client.stats["declared"] == 0
            assert client.stats["timeouts"] == 0

    def test_real_failure_still_detected(self, tmp_path):
        """Hardening must not swallow genuine failures: a hung node still
        walks the timeout → threshold → declaration path."""
        with LocalCluster(
            n_servers=2, workdir=tmp_path, policy="nvme", ttl=0.2, timeout_threshold=2
        ) as c:
            paths = c.populate(n_files=6, file_bytes=256, seed=8)
            client = c.client()
            for p in paths:
                client.read(p)
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim, mode="hang")
            assert len(client.read(paths[0])) == 256
            assert client.stats["declared"] == 1
            assert victim in client.policy.failed_nodes

    def test_client_stat_split_keeps_alias(self, tmp_path):
        with LocalCluster(n_servers=1, workdir=tmp_path, policy="nvme") as c:
            paths = c.populate(n_files=4, file_bytes=128, seed=9)
            client = c.client()
            for p in paths:  # misses: served by the server *from the PFS*
                client.read(p)
            deadline = time.monotonic() + 5.0
            while c.servers[0].mover.queue_len and time.monotonic() < deadline:
                time.sleep(0.01)
            for p in paths:  # hits: served from the cache
                client.read(p)
            stats = client.stats
            assert stats["server_pfs_reads"] >= len(paths)
            assert stats["server_cache_reads"] >= 1
            # legacy alias: any successful server-side read, either source
            assert stats["cache_reads"] == stats["server_cache_reads"] + stats["server_pfs_reads"]


class TestDataMoverPool:
    def test_miss_storm_keeps_threads_bounded(self, tmp_path):
        """500 distinct misses against one server: live mover threads stay at
        the pool size and the overflow is counted, not thread-spawned."""
        pfs = PFSDir(tmp_path / "pfs")
        keys = [f"/dataset/storm/sample_{i:06d}.bin" for i in range(500)]
        for k in keys:
            pfs.write(k, b"\x42" * 64)
        nvme = _SlowNVMeDir(tmp_path / "nvme", write_delay=0.002)
        server = FTCacheServer(0, nvme, pfs, mover_workers=2, mover_queue_depth=8)
        try:
            baseline = threading.active_count()
            max_movers = 0
            max_active = 0
            for k in keys:
                resp = server._read(k)
                assert resp.ok and resp.header["source"] == "pfs"
                max_movers = max(max_movers, len(_mover_threads(0)))
                max_active = max(max_active, threading.active_count())
            assert max_movers <= 2
            # the old thread-per-miss code would have pushed this by O(storm)
            assert max_active <= baseline + 4
            counters = server.stats.counters()
            assert counters["mover_dropped"] > 0  # queue really overflowed
            assert counters["mover_enqueued"] + counters["mover_coalesced"] == 500
        finally:
            server.close()
        # graceful drain: everything admitted and not dropped got written
        final = server.stats.counters()
        assert final["recached"] == final["mover_enqueued"] - final["mover_dropped"]
        assert len(_mover_threads(0)) == 0  # workers exited

    def test_duplicate_keys_coalesce(self, tmp_path):
        nvme = _SlowNVMeDir(tmp_path / "nvme", write_delay=0.01)
        stats = ServerStats()
        pool = DataMoverPool(nvme, stats, node_id=7, workers=1, queue_depth=16)
        try:
            for _ in range(10):
                assert pool.submit("/same/key.bin", b"payload")
        finally:
            pool.close()
        assert stats.mover_coalesced >= 8
        assert stats.mover_enqueued + stats.mover_coalesced == 10
        assert stats.mover_dropped == 0
        assert nvme.entry_count() == 1

    def test_drop_oldest_on_overflow(self, tmp_path):
        nvme = _SlowNVMeDir(tmp_path / "nvme", write_delay=0.05)
        stats = ServerStats()
        pool = DataMoverPool(nvme, stats, node_id=8, workers=1, queue_depth=2)
        try:
            for i in range(8):
                pool.submit(f"/k{i}.bin", b"x" * 16)
        finally:
            pool.close()
        assert stats.mover_dropped > 0
        assert stats.recached == stats.mover_enqueued - stats.mover_dropped

    def test_close_drains_queue(self, tmp_path):
        nvme = _SlowNVMeDir(tmp_path / "nvme", write_delay=0.005)
        stats = ServerStats()
        pool = DataMoverPool(nvme, stats, node_id=9, workers=2, queue_depth=64)
        for i in range(20):
            pool.submit(f"/drain/{i}.bin", b"y" * 32)
        pool.close(drain=True)
        assert nvme.entry_count() == 20
        assert stats.recached == 20
        assert not pool.submit("/late.bin", b"z")  # closed pool refuses work

    def test_validation(self, tmp_path):
        nvme = NVMeDir(tmp_path / "nvme")
        with pytest.raises(ValueError):
            DataMoverPool(nvme, ServerStats(), 0, workers=0)
        with pytest.raises(ValueError):
            DataMoverPool(nvme, ServerStats(), 0, queue_depth=0)

    def test_mover_counters_surface_in_stat_and_snapshots(self, tmp_path):
        with LocalCluster(n_servers=1, workdir=tmp_path, mover_workers=1, mover_queue_depth=4) as c:
            paths = c.populate(n_files=6, file_bytes=128, seed=10)
            client = c.client()
            for p in paths:
                client.read(p)
            stat = client.server_stat(0)
            assert stat is not None
            for key in ("mover_enqueued", "mover_coalesced", "mover_dropped",
                        "mover_queue_len", "mover_workers", "race_fallthroughs"):
                assert key in stat
            snap = c.server_snapshots()[0]
            for key in ("mover_enqueued", "mover_dropped", "race_fallthroughs", "mover_queue_len"):
                assert key in snap
            totals = c.total_stats()
            assert totals["mover_enqueued"] >= 1


class TestRaceFallthroughCounter:
    def test_lost_eviction_race_is_counted(self, tmp_path):
        pfs = PFSDir(tmp_path / "pfs")
        key = "/dataset/race/sample.bin"
        pfs.write(key, b"truth" * 10)
        nvme = NVMeDir(tmp_path / "nvme")
        server = FTCacheServer(0, nvme, pfs)
        try:
            nvme.write(key, b"truth" * 10)
            # Simulate losing the contains()→read() race: the entry path
            # exists but is unreadable as a file.
            entry = nvme._path(key)
            entry.unlink()
            entry.mkdir()
            try:
                resp = server._read(key)
            finally:
                entry.rmdir()
            assert resp.ok and resp.header["source"] == "pfs"
            counters = server.stats.counters()
            assert counters["race_fallthroughs"] == 1
            assert counters["misses"] == 1  # still a miss, now with a trace
        finally:
            server.close()


class TestTmpFileRescan:
    def test_leftover_tmp_files_excluded_and_reclaimed(self, tmp_path):
        root = tmp_path / "nvme"
        d = NVMeDir(root)
        d.write("/dataset/a.bin", b"a" * 100)
        # a writer that died mid-install leaves its staging file behind
        leftover = root / ".tmp-4242-1-deadbeef_orphan"
        leftover.write_bytes(b"junk" * 64)
        # live instance: tmp files are not entries
        assert d.entry_count() == 1
        # rescan (the warm-rejoin path): leftovers are unlinked, not adopted
        d2 = NVMeDir(root)
        assert not leftover.exists()
        assert d2.entry_count() == 1
        assert d2.used_bytes == 100
        assert d2.read("/dataset/a.bin") == b"a" * 100

    def test_inflight_tmp_never_counted(self, tmp_path):
        root = tmp_path / "nvme"
        d = NVMeDir(root)
        d.write("/dataset/a.bin", b"a" * 50)
        # drop a tmp file next to it to model an in-flight concurrent write
        (root / ".tmp-1-2-inflight").write_bytes(b"half")
        assert d.entry_count() == 1
        assert d.used_bytes == 50
