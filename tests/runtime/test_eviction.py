"""LRU eviction in the threaded runtime's NVMeDir, and the read/evict race.

The race regression (``runtime/server.py`` ``_read``): an entry evicted
between the server's cache-presence check and the actual file read must
degrade to a PFS miss, never surface as a client-visible error.
"""

import threading

from repro.runtime import LocalCluster
from repro.runtime.server import FTCacheServer
from repro.runtime.storage import NVMeDir, PFSDir


class TestNVMeDirLRU:
    def test_eviction_order_is_lru(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=30)
        nv.write("/a", b"x" * 10)
        nv.write("/b", b"x" * 10)
        nv.write("/c", b"x" * 10)
        nv.read("/a")  # refresh /a: /b becomes LRU
        nv.write("/d", b"x" * 10)
        assert nv.contains("/a") and nv.contains("/c") and nv.contains("/d")
        assert not nv.contains("/b")
        assert nv.evictions == 1

    def test_multiple_evictions_for_one_write(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=30)
        for key in ("/a", "/b", "/c"):
            nv.write(key, b"x" * 10)
        nv.write("/big", b"x" * 20)  # must displace /a and /b
        assert not nv.contains("/a") and not nv.contains("/b")
        assert nv.contains("/c") and nv.contains("/big")
        assert nv.evictions == 2
        assert nv.used_bytes == 30  # /c (10) + /big (20)

    def test_rewrite_same_key_does_not_self_evict(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=10)
        nv.write("/a", b"x" * 8)
        nv.write("/a", b"y" * 10)  # replace in place, no eviction
        assert nv.read("/a") == b"y" * 10
        assert nv.evictions == 0 and nv.used_bytes == 10

    def test_unbounded_dir_never_evicts(self, tmp_path):
        nv = NVMeDir(tmp_path)
        for i in range(20):
            nv.write(f"/k{i}", b"x" * 100)
        assert nv.evictions == 0 and nv.entry_count() == 20

    def test_lru_state_rebuilt_on_reopen(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=100)
        nv.write("/a", b"x" * 40)
        nv.write("/b", b"x" * 40)
        again = NVMeDir(tmp_path, capacity_bytes=100)
        assert again.used_bytes == 80
        again.write("/c", b"x" * 40)  # rescanned entries are evictable
        assert again.evictions == 1 and again.used_bytes <= 100

    def test_drop_removes_from_lru_accounting(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=20)
        nv.write("/a", b"x" * 10)
        nv.drop("/a")
        nv.write("/b", b"x" * 20)  # freed space: no eviction needed
        assert nv.evictions == 0 and nv.used_bytes == 20


class TestEvictionRaceRegression:
    def test_entry_evicted_between_check_and_read_falls_through_to_pfs(self, tmp_path):
        """server.py _read: contains() true, read() raises -> serve from PFS."""
        pfs = PFSDir(tmp_path / "pfs")
        pfs.write("/data/a.bin", b"ground truth")
        nvme = NVMeDir(tmp_path / "nvme")
        nvme.write("/data/a.bin", b"ground truth")
        server = FTCacheServer(0, nvme, pfs).start()

        real_read = nvme.read

        def racing_read(key):
            # Simulate a concurrent eviction winning the race: the entry
            # vanishes after contains() said it was there.
            (nvme.root / [f.name for f in nvme.root.iterdir()][0]).unlink()
            return real_read(key)

        nvme.read = racing_read
        try:
            resp = server._read("/data/a.bin")
        finally:
            server.close()
        assert resp.ok
        assert resp.payload == b"ground truth"
        assert resp.header["source"] == "pfs"
        assert server.stats.errors == 0
        assert server.stats.misses == 1 and server.stats.pfs_reads == 1

    def test_concurrent_eviction_pressure_no_client_errors(self):
        """End-to-end: tiny caches churn entries while readers hammer them."""
        with LocalCluster(
            n_servers=2,
            policy="elastic",
            ttl=0.5,
            timeout_threshold=3,
            nvme_capacity_bytes=8 * 1024,  # holds only 4 of 32 x 2 KiB entries
        ) as cluster:
            paths = cluster.populate(n_files=32, file_bytes=2048, seed=7)
            client = cluster.client()
            errors = []

            def hammer(offset):
                try:
                    for i in range(60):
                        data = client.read(paths[(i + offset) % len(paths)])
                        assert len(data) == 2048
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(k * 11,), name=f"evict-hammer-{k}", daemon=True)
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            stats = cluster.total_stats()
            assert stats["errors"] == 0
            assert stats["evictions"] > 0  # pressure actually churned the cache


class TestServerStatSnapshot:
    def test_stat_reports_eviction_and_traffic_counters(self):
        with LocalCluster(n_servers=1, nvme_capacity_bytes=4096) as cluster:
            paths = cluster.populate(n_files=8, file_bytes=1024, seed=3)
            client = cluster.client()
            for p in paths + paths:
                client.read(p)
            import time

            time.sleep(0.3)  # async data movers
            stat = client.server_stat(0)
            assert stat is not None
            for key in ("pfs_reads", "recached", "errors", "evictions", "capacity_bytes"):
                assert key in stat
            assert stat["capacity_bytes"] == 4096
            assert stat["evictions"] > 0
            assert stat["cached_bytes"] <= 4096
