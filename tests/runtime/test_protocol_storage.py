"""Tests for the wire protocol and directory-backed storage."""

import socket
import threading

import pytest

from repro.runtime import Message, ProtocolError, NVMeDir, PFSDir, recv_message, send_message


def _pair():
    a, b = socket.socketpair()
    return a, b


class TestProtocol:
    def test_round_trip_with_payload(self):
        a, b = _pair()
        try:
            send_message(a, Message.request("READ", path="/x", extra=1))
            msg = recv_message(b)
            assert msg.op == "READ" and msg.header["path"] == "/x" and msg.header["extra"] == 1
            send_message(b, Message.ok_response(payload=b"\x00\x01data", source="cache"))
            resp = recv_message(a)
            assert resp.ok and resp.payload == b"\x00\x01data" and resp.header["source"] == "cache"
        finally:
            a.close()
            b.close()

    def test_empty_payload(self):
        a, b = _pair()
        try:
            send_message(a, Message.request("PING"))
            assert recv_message(b).payload == b""
        finally:
            a.close()
            b.close()

    def test_large_payload_chunked(self):
        a, b = _pair()
        data = bytes(range(256)) * 4096  # 1 MiB
        out = {}

        def reader():
            out["msg"] = recv_message(b)

        t = threading.Thread(target=reader, name="protocol-reader", daemon=True)
        t.start()
        try:
            send_message(a, Message.ok_response(payload=data))
            t.join(timeout=5)
            assert out["msg"].payload == data
        finally:
            a.close()
            b.close()

    def test_error_response(self):
        m = Message.error_response("nope", code="ENOENT")
        assert not m.ok and m.header["reason"] == "nope"

    def test_eof_mid_frame_raises(self):
        a, b = _pair()
        a.sendall(b"\x00\x00\x00\x10partial")
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)
        b.close()

    def test_corrupt_header_raises(self):
        a, b = _pair()
        try:
            a.sendall(b"\x00\x00\x00\x04notj")
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_header_rejected(self):
        a, b = _pair()
        try:
            a.sendall((2**21).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                recv_message(b)
        finally:
            a.close()
            b.close()


class TestNVMeDir:
    def test_write_read_contains(self, tmp_path):
        nv = NVMeDir(tmp_path / "nvme")
        nv.write("/data/a.bin", b"hello")
        assert nv.contains("/data/a.bin")
        assert nv.read("/data/a.bin") == b"hello"
        assert nv.used_bytes == 5
        assert nv.entry_count() == 1

    def test_distinct_keys_no_collision(self, tmp_path):
        nv = NVMeDir(tmp_path)
        nv.write("/a/x.bin", b"1")
        nv.write("/b/x.bin", b"2")  # same basename, different path
        assert nv.read("/a/x.bin") == b"1"
        assert nv.read("/b/x.bin") == b"2"

    def test_capacity_pressure_evicts_lru(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=10)
        nv.write("/a", b"12345")
        nv.write("/b", b"123456789")  # evicts /a instead of raising
        assert not nv.contains("/a")
        assert nv.read("/b") == b"123456789"
        assert nv.evictions == 1 and nv.used_bytes == 9

    def test_oversized_entry_still_rejected(self, tmp_path):
        nv = NVMeDir(tmp_path, capacity_bytes=10)
        with pytest.raises(OSError, match="exceeds cache capacity"):
            nv.write("/big", b"x" * 11)

    def test_drop(self, tmp_path):
        nv = NVMeDir(tmp_path)
        nv.write("/a", b"abc")
        nv.drop("/a")
        assert not nv.contains("/a") and nv.used_bytes == 0
        nv.drop("/never-existed")  # no-op

    def test_clear(self, tmp_path):
        nv = NVMeDir(tmp_path)
        for i in range(4):
            nv.write(f"/f{i}", b"x")
        nv.clear()
        assert nv.entry_count() == 0 and nv.used_bytes == 0

    def test_used_bytes_rescanned_on_reopen(self, tmp_path):
        nv = NVMeDir(tmp_path)
        nv.write("/a", b"12345678")
        again = NVMeDir(tmp_path)
        assert again.used_bytes == 8


class TestPFSDir:
    def test_write_read(self, tmp_path):
        pfs = PFSDir(tmp_path / "pfs")
        pfs.write("/ds/train/s1.bin", b"payload")
        assert pfs.exists("/ds/train/s1.bin")
        assert pfs.read("/ds/train/s1.bin") == b"payload"
        assert pfs.reads == 1

    def test_missing_file(self, tmp_path):
        pfs = PFSDir(tmp_path)
        with pytest.raises(FileNotFoundError):
            pfs.read("/nope")

    def test_path_escape_blocked(self, tmp_path):
        pfs = PFSDir(tmp_path / "pfs")
        with pytest.raises(PermissionError):
            pfs.read("/../../etc/passwd")

    def test_read_delay(self, tmp_path):
        import time

        pfs = PFSDir(tmp_path, read_delay=0.05)
        pfs.write("/a", b"x")
        t0 = time.monotonic()
        pfs.read("/a")
        assert time.monotonic() - t0 >= 0.045

    def test_negative_delay_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            PFSDir(tmp_path, read_delay=-1)
