"""Tests for elastic rejoin and the chaos harness (real sockets/threads)."""

import time

import pytest

from repro.runtime import LocalCluster
from repro.runtime.chaos import ChaosMonkey


class TestRejoin:
    def test_restart_brings_node_back(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
            paths = c.populate(n_files=12, file_bytes=512)
            client = c.client()
            for p in paths:
                client.read(p)
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim)
            client.read(paths[0])  # declare + reroute
            assert victim in client.policy.failed_nodes
            c.restart_server(victim)
            assert victim in c.alive_servers
            assert victim not in client.policy.failed_nodes
            assert victim in client.policy.placement.nodes

    def test_rejoin_is_warm(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
            paths = c.populate(n_files=12, file_bytes=512)
            client = c.client()
            for p in paths:
                client.read(p)
            time.sleep(0.3)  # data movers land before the failure
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim)
            client.read(paths[0])
            c.restart_server(victim)
            pfs_before = c.pfs.reads
            for p in paths:
                client.read(p)
            # The rejoined node's cache dir survived: nothing refetches.
            assert c.pfs.reads == pfs_before

    def test_routing_restored_after_rejoin(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
            paths = c.populate(n_files=12, file_bytes=512)
            client = c.client()
            before = {p: client.policy.target_for(p).node for p in paths}
            victim = before[paths[0]]
            c.kill_server(victim)
            client.read(paths[0])
            c.restart_server(victim)
            after = {p: client.policy.target_for(p).node for p in paths}
            assert after == before  # ring identical to the pre-failure one

    def test_restart_without_prior_failure_errors_gracefully(self):
        # Restarting a healthy node = rolling restart; must still work.
        with LocalCluster(n_servers=2, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
            paths = c.populate(n_files=4, file_bytes=256)
            client = c.client()
            client.read(paths[0])
            c.restart_server(0)
            assert all(len(client.read(p)) == 256 for p in paths)


class TestChaosMonkey:
    def test_validation(self):
        with LocalCluster(n_servers=2) as c:
            with pytest.raises(ValueError):
                ChaosMonkey(c, interval=0)
            with pytest.raises(ValueError):
                ChaosMonkey(c, restart_prob=1.5)
            with pytest.raises(ValueError):
                ChaosMonkey(c, min_alive=0)

    def test_reads_survive_sustained_chaos(self):
        with LocalCluster(n_servers=4, policy="nvme", ttl=0.25, timeout_threshold=2) as c:
            paths = c.populate(n_files=24, file_bytes=1024, seed=11)
            client = c.client()
            expected = {p: c.pfs.resolve(p).read_bytes() for p in paths}
            monkey = ChaosMonkey(c, interval=0.15, restart_prob=0.45, min_alive=1, seed=7)
            reads = 0
            with monkey:
                deadline = time.monotonic() + 4.0
                while time.monotonic() < deadline:
                    for p in paths:
                        assert client.read(p) == expected[p]
                        reads += 1
            assert reads >= len(paths)
            assert monkey.kills >= 1  # chaos actually happened
            assert c.alive_servers  # floor respected

    def test_min_alive_respected(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.2, timeout_threshold=1) as c:
            c.populate(n_files=4, file_bytes=128)
            monkey = ChaosMonkey(c, interval=0.05, restart_prob=0.0, min_alive=2, seed=3)
            with monkey:
                time.sleep(1.0)
            assert len(c.alive_servers) >= 2

    def test_actions_recorded_and_summary(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.2, timeout_threshold=1) as c:
            c.populate(n_files=4, file_bytes=128)
            monkey = ChaosMonkey(c, interval=0.05, restart_prob=0.5, min_alive=1, seed=3)
            with monkey:
                time.sleep(1.2)
            assert monkey.actions
            assert "kills" in monkey.summary()
            kinds = {a.kind for a in monkey.actions}
            assert kinds <= {"kill", "restart"}

    def test_double_start_rejected(self):
        with LocalCluster(n_servers=2) as c:
            monkey = ChaosMonkey(c, interval=1.0)
            monkey.start()
            try:
                with pytest.raises(RuntimeError):
                    monkey.start()
            finally:
                monkey.stop()
