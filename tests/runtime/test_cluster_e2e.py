"""End-to-end tests of the threaded runtime: real sockets, real failures."""

import pytest

from repro.core import UnrecoverableNodeFailure
from repro.runtime import LocalCluster, ReadError


@pytest.fixture
def cluster():
    with LocalCluster(n_servers=4, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
        c.populate(n_files=24, file_bytes=2048, seed=1)
        yield c


class TestHappyPath:
    def test_miss_then_hit(self, cluster):
        client = cluster.client()
        path = cluster.paths[0]
        data1 = client.read(path)
        data2 = client.read(path)
        assert data1 == data2 and len(data1) == 2048
        stats = cluster.total_stats()
        assert stats["pfs_reads"] >= 1

    def test_all_files_cached_after_full_pass(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        import time

        time.sleep(0.2)  # data movers are async
        for p in cluster.paths:
            client.read(p)
        stats = cluster.total_stats()
        assert stats["hits"] >= len(cluster.paths)
        assert stats["recached"] == len(cluster.paths)

    def test_content_integrity(self, cluster):
        client = cluster.client()
        direct = {p: cluster.pfs.read(p) for p in cluster.paths[:6]}
        for p, expected in direct.items():
            assert client.read(p) == expected
            assert client.read(p) == expected  # cached copy identical

    def test_missing_file_raises(self, cluster):
        client = cluster.client()
        with pytest.raises(ReadError, match="no such file"):
            client.read("/dataset/train/missing.bin")

    def test_server_stat(self, cluster):
        client = cluster.client()
        client.read(cluster.paths[0])
        node = cluster.owner_of(cluster.paths[0], client.policy)
        stat = client.server_stat(node)
        assert stat is not None and stat["node_id"] == node

    def test_ping_live_server(self, cluster):
        client = cluster.client()
        node = cluster.owner_of(cluster.paths[0], client.policy)
        assert client.ping(node) is True

    def test_ping_dead_server_false_and_feeds_detector(self, cluster):
        client = cluster.client()
        victim = cluster.owner_of(cluster.paths[0], client.policy)
        cluster.kill_server(victim, mode="hang")
        assert client.ping(victim) is False
        assert client.detector.pending_count(victim) >= 1

    def test_load_spread_across_servers(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        served = [s.stats.hits + s.stats.misses for s in cluster.servers.values()]
        assert sum(1 for x in served if x > 0) >= 3  # ring spreads load


class TestFailureRecovery:
    def test_hang_failure_detected_and_rerouted(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        victim = cluster.owner_of(cluster.paths[0], client.policy)
        cluster.kill_server(victim, mode="hang")
        data = client.read(cluster.paths[0])
        assert len(data) == 2048
        assert client.stats["declared"] == 1
        assert victim in client.policy.failed_nodes
        assert victim not in client.policy.placement.nodes

    def test_drop_failure_detected(self, cluster):
        client = cluster.client()
        client.read(cluster.paths[0])
        victim = cluster.owner_of(cluster.paths[0], client.policy)
        cluster.kill_server(victim, mode="drop")
        assert client.read(cluster.paths[0]) is not None
        assert client.stats["declared"] == 1

    def test_subsequent_reads_fast_after_recache(self, cluster):
        import time

        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        victim = cluster.owner_of(cluster.paths[0], client.policy)
        cluster.kill_server(victim)
        client.read(cluster.paths[0])  # pays detection
        t0 = time.monotonic()
        client.read(cluster.paths[0])  # re-homed; no TTL involved
        assert time.monotonic() - t0 < cluster.ttl

    def test_pfs_redirect_policy(self):
        with LocalCluster(n_servers=3, policy="pfs", ttl=0.3, timeout_threshold=2) as c:
            paths = c.populate(n_files=12, file_bytes=512)
            client = c.client()
            for p in paths:
                client.read(p)
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim)
            # Find a path owned by the victim and read it twice: both hit PFS.
            lost = [p for p in paths if client.policy.placement.lookup(p) == victim]
            before = client.stats["pfs_direct_reads"]
            for p in lost:
                client.read(p)
                client.read(p)
            assert client.stats["pfs_direct_reads"] == before + 2 * len(lost)

    def test_noft_policy_aborts(self):
        with LocalCluster(n_servers=3, policy="NoFT", ttl=0.2, timeout_threshold=1) as c:
            paths = c.populate(n_files=6, file_bytes=256)
            client = c.client()
            for p in paths:
                client.read(p)
            victim = c.owner_of(paths[0], client.policy)
            c.kill_server(victim)
            lost = next(p for p in paths if client.policy.placement.lookup(p) == victim)
            with pytest.raises(UnrecoverableNodeFailure):
                client.read(lost)

    def test_two_failures_survived(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        survivors = cluster.alive_servers
        cluster.kill_server(survivors[0])
        cluster.kill_server(survivors[1])
        for p in cluster.paths:
            assert len(client.read(p)) == 2048
        assert len(client.policy.placement.nodes) == 2


class TestClusterManager:
    def test_populate_writes_pfs(self, cluster):
        assert len(cluster.paths) == 24
        assert cluster.pfs.exists(cluster.paths[-1])

    def test_alive_servers_tracking(self, cluster):
        assert sorted(cluster.alive_servers) == [0, 1, 2, 3]
        cluster.kill_server(2)
        assert 2 not in cluster.alive_servers

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LocalCluster(n_servers=0)

    def test_static_policy_cluster(self):
        with LocalCluster(n_servers=2, policy="pfs") as c:
            c.populate(n_files=4, file_bytes=128)
            client = c.client()
            assert all(len(client.read(p)) == 128 for p in c.paths)
