"""Tests for the PyTorch-style cached data loader."""

import pytest

from repro.runtime import CachedDataLoader, LocalCluster, ReadError


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
        c.populate(n_files=20, file_bytes=1024, seed=4)
        yield c


class TestIteration:
    def test_batches_cover_dataset(self, cluster):
        loader = CachedDataLoader(cluster.paths, cluster.client(), batch_size=6, seed=1)
        batches = list(loader)
        assert len(batches) == len(loader) == 4  # ceil(20/6)
        assert sum(len(b) for b in batches) == 20
        assert all(len(x) == 1024 for b in batches for x in b)

    def test_drop_last(self, cluster):
        loader = CachedDataLoader(
            cluster.paths, cluster.client(), batch_size=6, drop_last=True, seed=1
        )
        batches = list(loader)
        assert len(batches) == len(loader) == 3
        assert all(len(b) == 6 for b in batches)

    def test_shuffle_changes_with_epoch(self, cluster):
        client = cluster.client()
        loader = CachedDataLoader(cluster.paths, client, batch_size=20, seed=1)
        loader.set_epoch(0)
        e0 = list(loader)[0]
        loader.set_epoch(1)
        e1 = list(loader)[0]
        assert sorted(e0) == sorted(e1)  # same multiset of samples
        assert e0 != e1  # different order

    def test_same_epoch_reproducible(self, cluster):
        client = cluster.client()
        loader = CachedDataLoader(cluster.paths, client, batch_size=20, seed=1)
        loader.set_epoch(3)
        a = list(loader)[0]
        b = list(loader)[0]
        assert a == b

    def test_no_shuffle_preserves_order(self, cluster):
        client = cluster.client()
        loader = CachedDataLoader(cluster.paths[:5], client, batch_size=5, shuffle=False)
        batch = list(loader)[0]
        expected = [cluster.pfs.read(p) for p in cluster.paths[:5]]
        assert batch == expected

    def test_custom_collate(self, cluster):
        loader = CachedDataLoader(
            cluster.paths[:4],
            cluster.client(),
            batch_size=2,
            collate=lambda samples: sum(len(s) for s in samples),
        )
        assert list(loader) == [2048, 2048]

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            CachedDataLoader(cluster.paths, cluster.client(), batch_size=0)
        with pytest.raises(ValueError):
            CachedDataLoader(cluster.paths, cluster.client(), num_workers=-1)


class TestThreadedWorkers:
    def test_multiworker_matches_sequential(self, cluster):
        client = cluster.client()
        seq = list(CachedDataLoader(cluster.paths, client, batch_size=4, seed=2, num_workers=0))
        par = list(CachedDataLoader(cluster.paths, client, batch_size=4, seed=2, num_workers=3))
        assert seq == par

    def test_multiworker_survives_failure(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)  # warm cache so the victim holds data
        victim = client.policy.target_for(cluster.paths[0]).node
        cluster.kill_server(victim)
        loader = CachedDataLoader(cluster.paths, client, batch_size=5, seed=3, num_workers=2)
        batches = list(loader)
        assert sum(len(b) for b in batches) == 20

    def test_worker_error_propagates(self, cluster):
        client = cluster.client()
        bad = cluster.paths[:3] + ["/dataset/train/not-there.bin"]
        loader = CachedDataLoader(bad, client, batch_size=2, shuffle=False, num_workers=2)
        with pytest.raises(ReadError):
            list(loader)
