"""Binary wire codec, the async server core, and the PR's bugfix sweep.

Covers the fixed-header codec round trips, frame truncation at every
byte offset in both codecs, the ``_MAX_PAYLOAD``/``_MAX_HEADER`` bounds
(the 2**40 ``payload_len`` regression), per-message JSON↔binary
negotiation on one socket, TCP_NODELAY on client and server sockets,
the zero-copy vectored send (no header+payload concatenation), seq-echo
pipelining with out-of-order completion, and the pipelined
``read_many`` fast path.
"""

import socket
import threading
import time

import pytest

from repro.runtime import LocalCluster, Message, recv_message, send_message
from repro.runtime.client import FTCacheClient
from repro.runtime.protocol import (
    _MAX_EXT,
    _MAX_HEADER,
    _MAX_PAYLOAD,
    BIN_MAGIC,
    BIN_OPS,
    OP_PUT,
    OP_READ,
    OP_TRANSFER,
    ProtocolError,
    encode_binary_request,
    encode_binary_response_header,
    encode_json_frame,
    send_binary_request,
    set_nodelay,
)

def _pump(sock: socket.socket):
    """Decode one frame from ``sock`` on a reader thread; return
    ``(thread, out, err)`` dicts the caller joins and inspects."""
    out: dict = {}
    err: dict = {}

    def reader() -> None:
        try:
            out["msg"] = recv_message(sock)
        except Exception as exc:  # surfaced via ``err`` in the test thread
            err["exc"] = exc

    t = threading.Thread(target=reader, name="binproto-reader", daemon=True)
    t.start()
    return t, out, err


class TestBinaryRoundTrip:
    def test_read_request_round_trips(self):
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            msg = Message.request(OP_READ, path="/dataset/train/x.bin")
            send_binary_request(a, msg, seq=7)
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert got.op == OP_READ
            assert got.header["path"] == "/dataset/train/x.bin"
            assert got.seq == 7 and got.payload == b""
        finally:
            a.close()
            b.close()

    def test_put_request_carries_payload(self):
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            msg = Message.request(OP_PUT, path="/k")
            msg.payload = b"\x00\x01binary bytes\xff" * 100
            send_binary_request(a, msg, seq=3)
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert got.op == OP_PUT and got.payload == msg.payload and got.seq == 3
        finally:
            a.close()
            b.close()

    def test_trace_context_rides_the_ext_field(self):
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            msg = Message.request(OP_READ, path="/k")
            msg.header["trace_id"] = "0123456789abcdef"
            msg.header["span_id"] = "fedcba98"
            send_binary_request(a, msg)
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert got.header["trace_id"] == "0123456789abcdef"
            assert got.header["span_id"] == "fedcba98"
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize(
        "resp, expect",
        [
            (Message.ok_response(payload=b"data", source="cache"), {"source": "cache"}),
            (Message.ok_response(payload=b"data", source="pfs"), {"source": "pfs"}),
        ],
    )
    def test_read_response_source_flag(self, resp, expect):
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            a.sendall(encode_binary_response_header(OP_READ, resp, seq=9) + resp.payload)
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert got.ok and got.seq == 9 and got.payload == b"data"
            for k, v in expect.items():
                assert got.header[k] == v
        finally:
            a.close()
            b.close()

    def test_transfer_response_carries_accept_and_queue_len(self):
        resp = Message.ok_response(accepted=True, queue_len=17)
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            a.sendall(encode_binary_response_header(OP_TRANSFER, resp, seq=1))
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert got.header["accepted"] is True and got.header["queue_len"] == 17
        finally:
            a.close()
            b.close()

    def test_error_response_carries_reason_and_code(self):
        resp = Message.error_response("no such file: /k", code="ENOENT")
        a, b = socket.socketpair()
        try:
            t, out, err = _pump(b)
            a.sendall(encode_binary_response_header(OP_READ, resp, seq=2))
            t.join(timeout=5)
            assert not err, err
            got = out["msg"]
            assert not got.ok
            assert got.header["reason"] == "no such file: /k"
            assert got.header["code"] == "ENOENT"
        finally:
            a.close()
            b.close()

    def test_non_table_op_refused(self):
        with pytest.raises(ProtocolError, match="binary op table"):
            encode_binary_request(Message.request("STAT"))


class TestTruncation:
    """A frame cut at *every* byte offset must fail cleanly, never hang
    or decode garbage."""

    def _truncated_outcomes(self, frame: bytes):
        for cut in range(len(frame)):
            a, b = socket.socketpair()
            try:
                b.settimeout(5)
                a.sendall(frame[:cut])
                a.close()
                with pytest.raises((ConnectionError, ProtocolError)):
                    recv_message(b)
            finally:
                b.close()

    def test_binary_frame_every_offset(self):
        msg = Message.request(OP_PUT, path="/dataset/x.bin")
        msg.payload = b"payload-bytes"
        frame = encode_binary_request(msg, seq=5) + msg.payload
        self._truncated_outcomes(frame)

    def test_json_frame_every_offset(self):
        msg = Message(header={"op": "STAT", "k": "v"}, payload=b"tail")
        frame = encode_json_frame(msg) + msg.payload
        self._truncated_outcomes(frame)


class TestSizeBounds:
    def test_json_payload_len_2_pow_40_rejected(self):
        """Regression: a hostile payload_len used to drive _recv_exact
        into a terabyte allocation; now it fails the frame."""
        import json as _json

        header = _json.dumps({"op": "READ", "payload_len": 2**40}).encode()
        frame = len(header).to_bytes(4, "big") + header
        a, b = socket.socketpair()
        try:
            a.sendall(frame)
            with pytest.raises(ProtocolError, match="payload length"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_json_negative_payload_len_rejected(self):
        import json as _json

        header = _json.dumps({"payload_len": -1}).encode()
        frame = len(header).to_bytes(4, "big") + header
        a, b = socket.socketpair()
        try:
            a.sendall(frame)
            with pytest.raises(ProtocolError, match="payload_len"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_json_oversized_header_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall((_MAX_HEADER + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="header length"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_binary_oversized_payload_len_rejected(self):
        good = bytearray(encode_binary_request(Message.request(OP_READ, path="/k")))
        good[18:22] = (_MAX_PAYLOAD + 1).to_bytes(4, "big")  # payload_len field
        a, b = socket.socketpair()
        try:
            a.sendall(bytes(good))
            with pytest.raises(ProtocolError, match="payload length"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_binary_oversized_ext_len_rejected(self):
        good = bytearray(encode_binary_request(Message.request(OP_READ, path="/k")))
        good[8:10] = (_MAX_EXT + 1).to_bytes(2, "big")  # ext_len field
        a, b = socket.socketpair()
        try:
            a.sendall(bytes(good))
            with pytest.raises(ProtocolError, match="ext length"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_binary_bad_magic_rejected(self):
        bad = b"\xf7\x00" + encode_binary_request(Message.request(OP_READ, path="/k"))[2:]
        a, b = socket.socketpair()
        try:
            a.sendall(bad)
            with pytest.raises(ProtocolError, match="magic"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_binary_unknown_op_code_rejected(self):
        bad = bytearray(encode_binary_request(Message.request(OP_READ, path="/k")))
        bad[4] = 0xEE  # op-code byte
        a, b = socket.socketpair()
        try:
            a.sendall(bytes(bad))
            with pytest.raises(ProtocolError, match="op code"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_payload_refused_at_send_time(self):
        class Huge(bytes):
            def __len__(self):
                return _MAX_PAYLOAD + 1

        msg = Message.request(OP_PUT, path="/k")
        msg.payload = Huge()
        with pytest.raises(ProtocolError, match="payload length"):
            encode_binary_request(msg)
        with pytest.raises(ProtocolError, match="payload length"):
            encode_json_frame(Message(header={}, payload=Huge()))


class _RecordingSock:
    """Captures sendmsg iovecs so tests can assert zero-copy behaviour."""

    def __init__(self):
        self.calls: list = []

    def sendmsg(self, bufs):
        bufs = list(bufs)
        self.calls.append(bufs)
        return sum(len(b) for b in bufs)


class TestVectoredSend:
    def test_payload_is_its_own_iovec_not_a_copy(self):
        """Regression: send_message used to concatenate len+header+payload,
        doubling peak memory for every large response."""
        payload = b"x" * 65536
        sock = _RecordingSock()
        send_message(sock, Message(header={"op": "READ"}, payload=payload))
        assert len(sock.calls) == 1
        bufs = sock.calls[0]
        assert len(bufs) == 2  # header frame + payload, never joined
        # the payload iovec is a view over the caller's buffer, not a copy
        assert bufs[1].obj is payload
        assert bufs[1].nbytes == len(payload)

    def test_binary_request_payload_is_its_own_iovec(self):
        payload = b"y" * 32768
        msg = Message.request(OP_PUT, path="/k")
        msg.payload = payload
        sock = _RecordingSock()
        send_binary_request(sock, msg, seq=1)
        bufs = sock.calls[0]
        assert bufs[-1].obj is payload

    def test_partial_sendmsg_progresses(self):
        class Trickle:
            def __init__(self):
                self.got = bytearray()

            def sendmsg(self, bufs):
                first = bytes(bufs[0])[:3]  # short write every call
                self.got += first
                return len(first)

        sock = Trickle()
        msg = Message(header={"a": 1}, payload=b"0123456789")
        send_message(sock, msg)
        frame = encode_json_frame(msg) + msg.payload
        assert bytes(sock.got) == frame


@pytest.fixture(scope="class")
def cluster():
    with LocalCluster(n_servers=3, policy="nvme", ttl=1.0, timeout_threshold=2) as c:
        c.populate(n_files=16, file_bytes=4096, seed=7)
        yield c


class TestWireNegotiation:
    """Both codecs interleave on one raw socket; the server answers each
    request in the codec it arrived on."""

    def test_json_then_binary_then_json_on_one_socket(self, cluster):
        server = cluster.servers[0]
        path = cluster.paths[0]
        server.nvme.write(path, cluster.pfs.read(path))
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.settimeout(5)
            # 1: legacy JSON PING
            send_message(sock, Message.request("PING"))
            resp = recv_message(sock)
            assert resp.ok and resp.header["node_id"] == 0
            # 2: binary READ (cache hit → sendfile fast path)
            send_binary_request(sock, Message.request(OP_READ, path=path), seq=11)
            resp = recv_message(sock)
            assert resp.ok and resp.seq == 11
            assert resp.header["source"] == "cache"
            assert resp.payload == cluster.pfs.read(path)
            # 3: JSON READ of the same key still answers in JSON
            send_message(sock, Message.request("READ", path=path))
            resp = recv_message(sock)
            assert resp.ok and resp.seq == 0  # JSON frames carry no seq
            assert resp.header["payload_len"] == len(resp.payload)
        counters = server.stats.counters()
        assert counters["binary_reqs"] >= 1 and counters["json_reqs"] >= 2
        assert counters["sendfile_serves"] >= 1

    def test_binary_read_miss_reports_pfs_source(self, cluster):
        server = cluster.servers[0]
        path = cluster.paths[1]
        server.nvme.drop(path)
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.settimeout(5)
            send_binary_request(sock, Message.request(OP_READ, path=path), seq=4)
            resp = recv_message(sock)
            assert resp.ok and resp.seq == 4
            assert resp.header["source"] == "pfs"
            assert resp.payload == cluster.pfs.read(path)

    def test_binary_read_enoent_error(self, cluster):
        server = cluster.servers[0]
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.settimeout(5)
            send_binary_request(
                sock, Message.request(OP_READ, path="/dataset/never/was.bin"), seq=6
            )
            resp = recv_message(sock)
            assert not resp.ok and resp.seq == 6
            assert resp.header["code"] == "ENOENT"


class TestNodelay:
    def test_server_sets_nodelay_on_accepted_conns(self, cluster):
        server = cluster.servers[1]
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.settimeout(5)
            send_message(sock, Message.request("PING"))
            assert recv_message(sock).ok
            accepted = [
                w.get_extra_info("socket")
                for w in list(server._writers)
                if w.get_extra_info("socket") is not None
            ]
            assert accepted, "server tracked no live connection"
            assert all(
                s.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) == 1 for s in accepted
            )

    def test_client_pooled_socket_sets_nodelay(self, cluster):
        client = cluster.client()
        try:
            client.read(cluster.paths[0])
            pooled = list(client._pool.conns.values())
            assert pooled, "client pooled no connection"
            assert all(
                p.sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) == 1
                for p in pooled
            )
        finally:
            client.close()

    def test_set_nodelay_tolerates_non_tcp_sockets(self):
        a, b = socket.socketpair()  # AF_UNIX: TCP_NODELAY is invalid here
        try:
            set_nodelay(a)  # must not raise
        finally:
            a.close()
            b.close()


class TestPipelining:
    def test_out_of_order_completion_matched_by_seq(self):
        """A cached READ behind a slow PFS miss completes first; the seq
        echo is what keeps the responses attributable."""
        with LocalCluster(
            n_servers=1, policy="nvme", ttl=5.0, timeout_threshold=3, pfs_read_delay=0.25
        ) as c:
            c.populate(n_files=2, file_bytes=2048, seed=3)
            slow, fast = c.paths[0], c.paths[1]
            server = c.servers[0]
            server.nvme.write(fast, c.pfs.read(fast))  # pre-cache the fast key
            with socket.create_connection(server.address, timeout=5) as sock:
                sock.settimeout(5)
                send_binary_request(sock, Message.request(OP_READ, path=slow), seq=1)
                send_binary_request(sock, Message.request(OP_READ, path=fast), seq=2)
                first = recv_message(sock)
                second = recv_message(sock)
            assert first.seq == 2, "cache hit should overtake the PFS miss"
            assert second.seq == 1
            assert first.payload == c.pfs.read(fast)
            assert second.payload == c.pfs.read(slow)

    def test_read_many_pipelines_same_owner_batches(self, cluster):
        client = cluster.client()
        try:
            expected = [cluster.pfs.read(p) for p in cluster.paths]
            got = client.read_many(list(cluster.paths))
            assert got == expected
            assert client.stats["pipelined_reads"] > 0
            got2 = client.read_many(list(cluster.paths))  # now mostly cache hits
            assert got2 == expected
        finally:
            client.close()

    def test_read_many_missing_file_raises(self, cluster):
        client = cluster.client()
        try:
            from repro.runtime import ReadError

            with pytest.raises(ReadError, match="no such file"):
                client.read_many([cluster.paths[0], "/dataset/train/nope.bin"])
        finally:
            client.close()

    def test_read_many_json_wire_falls_back_to_sequential(self, cluster):
        client = FTCacheClient(
            servers={i: s.address for i, s in cluster.servers.items()},
            policy=cluster.make_policy(),
            pfs=cluster.pfs,
            ttl=1.0,
            wire="json",
        )
        try:
            got = client.read_many(list(cluster.paths[:4]))
            assert got == [cluster.pfs.read(p) for p in cluster.paths[:4]]
            assert client.stats["pipelined_reads"] == 0
        finally:
            client.close()


class TestJsonWireEndToEnd:
    def test_json_cluster_serves_and_survives_kill(self):
        with LocalCluster(
            n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2, wire="json"
        ) as c:
            c.populate(n_files=12, file_bytes=1024, seed=5)
            client = c.client()
            assert client.wire == "json"
            for p in c.paths:
                assert client.read(p) == c.pfs.read(p)
            stats = c.total_stats()
            assert stats["json_reqs"] > 0
            assert stats["binary_reqs"] == 0 and stats["sendfile_serves"] == 0
            victim = c.owner_of(c.paths[0], client.policy)
            c.kill_server(victim, mode="hang")
            assert client.read(c.paths[0]) == c.pfs.read(c.paths[0])


class TestBinaryWireEndToEnd:
    def test_kill_restart_over_binary_wire(self):
        with LocalCluster(n_servers=3, policy="nvme", ttl=0.3, timeout_threshold=2) as c:
            c.populate(n_files=12, file_bytes=1024, seed=6)
            client = c.client()
            assert client.wire == "binary"
            for p in c.paths:
                client.read(p)
            victim = c.owner_of(c.paths[0], client.policy)
            c.kill_server(victim, mode="drop")
            assert client.read(c.paths[0]) == c.pfs.read(c.paths[0])
            c.restart_server(victim)
            for p in c.paths:
                assert client.read(p) == c.pfs.read(p)
            stats = c.total_stats()
            assert stats["binary_reqs"] > 0

    def test_sendfile_payload_integrity_large_entry(self):
        with LocalCluster(n_servers=1, policy="nvme", ttl=2.0) as c:
            c.populate(n_files=2, file_bytes=1 << 20, seed=9)  # 1 MiB entries
            client = c.client()
            first = client.read(c.paths[0])  # miss: executor path
            time.sleep(0.3)  # let the mover install the entry
            second = client.read(c.paths[0])  # hit: sendfile path
            assert first == second == c.pfs.read(c.paths[0])
            assert c.total_stats()["sendfile_serves"] >= 1
