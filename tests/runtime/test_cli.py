"""Tests for the runtime CLI (in-process invocation)."""

import threading

import pytest

from repro.runtime import FTCacheServer, NVMeDir, PFSDir
from repro.runtime.__main__ import _parse_servers, main


class TestParseServers:
    def test_single(self):
        assert _parse_servers("0=127.0.0.1:7000") == {0: ("127.0.0.1", 7000)}

    def test_multiple(self):
        out = _parse_servers("0=localhost:1,1=localhost:2")
        assert out == {0: ("localhost", 1), 1: ("localhost", 2)}

    def test_bad_spec(self):
        with pytest.raises(SystemExit):
            _parse_servers("garbage")
        with pytest.raises(SystemExit):
            _parse_servers("")


@pytest.fixture
def live_cluster(tmp_path):
    """Two real servers + populated PFS, without the LocalCluster wrapper."""
    pfs = PFSDir(tmp_path / "pfs")
    main(["populate", "--pfs", str(tmp_path / "pfs"), "--files", "8", "--bytes", "512"])
    servers = [
        FTCacheServer(i, NVMeDir(tmp_path / f"nvme{i}"), pfs).start() for i in range(2)
    ]
    yield tmp_path, servers
    for s in servers:
        s.close()


class TestCommands:
    def test_populate_writes_files(self, tmp_path, capsys):
        assert main(["populate", "--pfs", str(tmp_path / "p"), "--files", "3", "--bytes", "64"]) == 0
        assert "wrote 3" in capsys.readouterr().out
        assert (tmp_path / "p" / "dataset" / "train" / "sample_000002.bin").stat().st_size == 64

    def test_get_through_client(self, live_cluster, capsys):
        tmp_path, servers = live_cluster
        spec = ",".join(f"{i}={s.address[0]}:{s.address[1]}" for i, s in enumerate(servers))
        rc = main(
            [
                "get",
                "/dataset/train/sample_000001.bin",
                "--servers",
                spec,
                "--pfs",
                str(tmp_path / "pfs"),
                "--ttl",
                "1.0",
            ]
        )
        assert rc == 0
        assert "512 bytes" in capsys.readouterr().out

    def test_get_writes_out_file(self, live_cluster, tmp_path, capsys):
        wd, servers = live_cluster
        spec = ",".join(f"{i}={s.address[0]}:{s.address[1]}" for i, s in enumerate(servers))
        out = tmp_path / "sample.bin"
        rc = main(
            [
                "get",
                "/dataset/train/sample_000000.bin",
                "--servers",
                spec,
                "--pfs",
                str(wd / "pfs"),
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert out.stat().st_size == 512

    def test_stat_live_server(self, live_cluster, capsys):
        _, servers = live_cluster
        host, port = servers[0].address
        assert main(["stat", "--server", f"{host}:{port}"]) == 0
        assert "node 0" in capsys.readouterr().out

    def test_stat_unreachable(self, capsys):
        assert main(["stat", "--server", "127.0.0.1:1", "--ttl", "0.2"]) == 1
        assert "unreachable" in capsys.readouterr().out

    def test_serve_run_seconds(self, tmp_path, capsys):
        done = {}

        def run():
            done["rc"] = main(
                [
                    "serve",
                    "--node-id",
                    "5",
                    "--nvme",
                    str(tmp_path / "nv"),
                    "--pfs",
                    str(tmp_path / "pfs"),
                    "--run-seconds",
                    "0.3",
                ]
            )

        t = threading.Thread(target=run, name="cli-run", daemon=True)
        t.start()
        t.join(timeout=5)
        assert not t.is_alive()
        assert done["rc"] == 0
