"""Golden regression values: placement must never silently change.

A cache deployment survives library upgrades only if placement is stable:
if these hashes or owner assignments ever change, every deployed cache's
contents are effectively invalidated.  The values below were computed at
release 1.0.0 and are load-bearing — do not "fix" a failure here by
updating the golden without bumping the major version and saying so in
the changelog.
"""

import numpy as np

from repro.core import HashRing, StaticHash, bulk_hash64, hash64, hash_unit
from repro.core.replication import salt_hash


class TestHashGoldens:
    def test_string_hash_goldens(self):
        assert hash64("") == 13020603013274838756
        assert hash64("/cosmoUniverse/train/sample_00000042.tfrecord") == 13346539786974833259
        assert hash64("node-0#vn0") == 14015222480919800785

    def test_int_hash_goldens(self):
        assert hash64(0) == 16294208416658607535
        assert hash64(42) == 13679457532755275413
        assert hash64(524287) == 18216104033865730270

    def test_algo_goldens(self):
        assert hash64("abc", "md5") == 12704604231530709392
        assert hash64("abc", "sha1") == 7674422142938552745
        assert hash64("abc", "fnv1a") == 16654208175385433931

    def test_unit_interval_golden(self):
        assert abs(hash_unit("file E") - 0.9652323570649374) < 1e-15

    def test_salt_hash_golden(self):
        assert salt_hash(12345, 1) == 9752034893663220435


class TestPlacementGoldens:
    def test_ring_owner_goldens(self):
        ring = HashRing(nodes=range(16), vnodes_per_node=100)
        assert ring.lookup("/d/sample_000000") == 9
        assert ring.lookup("/d/sample_000001") == 14
        assert ring.lookup(0) == 9
        assert ring.lookup(99999) == 10

    def test_ring_bulk_owner_golden_checksum(self):
        ring = HashRing(nodes=range(64), vnodes_per_node=100)
        owners = ring.lookup_hashes(bulk_hash64(np.arange(10_000))).astype(np.int64)
        # Order-sensitive checksum of the full assignment vector.
        checksum = int((owners * np.arange(1, 10_001)).sum() % 1_000_000_007)
        assert checksum == 544987721

    def test_static_hash_golden(self):
        sh = StaticHash(nodes=range(8))
        assert [sh.lookup(i) for i in range(6)] == [
            sh.lookup_hash(hash64(i)) for i in range(6)
        ]
        assert sh.lookup(0) == hash64(0) % 8

    def test_vnode_position_golden(self):
        ring = HashRing(nodes=[0], vnodes_per_node=3)
        positions = sorted(int(p) for p in ring.vnode_positions(0))
        assert positions == sorted(
            hash64(f"0#vn{r}") for r in range(3)
        )
