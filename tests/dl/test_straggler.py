"""Tests for per-step straggler recording in the fluid model."""

import pytest

from repro.cluster.config import frontier
from repro.dl import Dataset, TrainingConfig
from repro.dl.fastsim import FluidTrainingModel

DS = Dataset(name="t", n_samples=512, sample_bytes=2.0e6)
CFG = TrainingConfig(epochs=3, batch_size=8)


class TestStepRecording:
    def test_off_by_default(self):
        m = FluidTrainingModel(frontier(8), DS, "FT w/ NVMe", CFG, 0, seed=1)
        m.run()
        assert m.step_records == []
        with pytest.raises(ValueError):
            m.straggler_summary()

    def test_records_cover_all_steps(self):
        m = FluidTrainingModel(frontier(8), DS, "FT w/ NVMe", CFG, 0, seed=1, record_steps=True)
        res = m.run()
        steps_per_epoch = m.sampler.steps_per_epoch(8)
        assert len(m.step_records) == CFG.epochs * steps_per_epoch
        epochs_seen = {e for e, _, _ in m.step_records}
        assert epochs_seen == set(range(CFG.epochs))
        # Sum of step durations ≈ total run time (no failures → no extras).
        assert sum(d for _, d, _ in m.step_records) == pytest.approx(res.total_time, rel=1e-6)

    def test_summary_fields(self):
        m = FluidTrainingModel(frontier(8), DS, "FT w/ NVMe", CFG, 0, seed=1, record_steps=True)
        m.run()
        s = m.straggler_summary()
        assert set(s) == {"steps", "mean", "p50", "p99", "max"}
        assert s["max"] >= s["p99"] >= s["p50"] >= 1.0

    def test_pfs_redirect_stragglers_worse_than_recaching(self):
        # The paper's core claim, at the step level: redirected reads make
        # the slowest rank far slower than the median; recaching heals it.
        def p99(policy):
            m = FluidTrainingModel(
                frontier(16),
                Dataset(name="t", n_samples=2048, sample_bytes=2.2e6),
                policy,
                TrainingConfig(epochs=4, batch_size=8),
                2,
                seed=3,
                record_steps=True,
            )
            m.run()
            return m.straggler_summary()["p99"]

        assert p99("FT w/ PFS") > p99("FT w/ NVMe")

    def test_failures_worsen_stragglers(self):
        def mean_ratio(n_failures):
            m = FluidTrainingModel(
                frontier(16), DS, "FT w/ PFS", TrainingConfig(epochs=4, batch_size=8),
                n_failures, seed=5, record_steps=True,
            )
            m.run()
            return m.straggler_summary()["mean"]

        assert mean_ratio(2) > mean_ratio(0)
