"""Tests for the prefetch-pipeline loader option (both engines)."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.dl import Dataset, TrainingConfig, TrainingJob
from repro.dl.fastsim import FluidTrainingModel

DS = Dataset(name="t", n_samples=256, sample_bytes=2.2e6)


def quiet_cc(n=8):
    cc = frontier(n)
    return replace(cc, pfs=replace(cc.pfs, service_noise_sigma=0.0))


class TestFluidPipelined:
    def test_pipelining_hides_cold_epoch_io(self):
        plain = FluidTrainingModel(
            quiet_cc(), DS, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8), 0, seed=1
        ).run()
        piped = FluidTrainingModel(
            quiet_cc(),
            DS,
            "FT w/ NVMe",
            TrainingConfig(epochs=2, batch_size=8, pipelined_loader=True),
            0,
            seed=1,
        ).run()
        assert piped.epoch_times[0] < plain.epoch_times[0]
        # Warm epochs were compute-bound already: pipelining changes little.
        assert piped.epoch_times[1] == pytest.approx(plain.epoch_times[1], rel=0.05)

    def test_pipelined_never_slower(self):
        for failures in (0, 2):
            plain = FluidTrainingModel(
                quiet_cc(), DS, "FT w/ NVMe", TrainingConfig(epochs=3, batch_size=8), failures, seed=2
            ).run()
            piped = FluidTrainingModel(
                quiet_cc(),
                DS,
                "FT w/ NVMe",
                TrainingConfig(epochs=3, batch_size=8, pipelined_loader=True),
                failures,
                seed=2,
            ).run()
            assert piped.total_time <= plain.total_time + 1e-9


class TestDesPipelined:
    def test_des_pipelining_hides_cold_epoch_io(self):
        cc = quiet_cc()
        plain = TrainingJob(
            Cluster(cc, seed=3), DS, "FT w/ NVMe", TrainingConfig(epochs=2, batch_size=8)
        ).run()
        piped = TrainingJob(
            Cluster(cc, seed=3),
            DS,
            "FT w/ NVMe",
            TrainingConfig(epochs=2, batch_size=8, pipelined_loader=True),
        ).run()
        assert piped.epoch_times[0] < plain.epoch_times[0]
        assert piped.completed and plain.completed

    def test_des_pipelined_survives_failure(self):
        from repro.cluster.slurm import SlurmController
        from repro.failures import FailureInjector

        cluster = Cluster(quiet_cc(), seed=3)
        cfg = TrainingConfig(
            epochs=3, batch_size=8, ttl=0.4, timeout_threshold=2, pipelined_loader=True
        )
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg)
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        res = job.run()
        assert res.completed and res.failures == 1

    def test_des_fluid_agree_when_pipelined(self):
        cc = quiet_cc()
        cfg = TrainingConfig(epochs=2, batch_size=8, pipelined_loader=True)
        des = TrainingJob(Cluster(cc, seed=5), DS, "FT w/ NVMe", cfg).run()
        fluid = FluidTrainingModel(cc, DS, "FT w/ NVMe", cfg, 0, seed=5).run()
        assert fluid.total_time == pytest.approx(des.total_time, rel=0.15)
