"""Tests for the step barrier and elastic-restart cost model."""

import pytest

from repro.dl import ElasticConfig, StepBarrier
from tests.conftest import run_proc


class TestElasticConfig:
    def test_restart_time_grows_with_nodes(self):
        cfg = ElasticConfig()
        assert cfg.restart_time(1024) > cfg.restart_time(64) > 0

    def test_restart_time_formula(self):
        cfg = ElasticConfig(restart_overhead=5.0, restart_per_log2_node=2.0)
        assert cfg.restart_time(64) == pytest.approx(5.0 + 2.0 * 6)
        assert cfg.restart_time(1) == pytest.approx(5.0 + 2.0)  # clamped to log2(2)


class TestStepBarrier:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            StepBarrier(env, parties=0)
        with pytest.raises(ValueError):
            StepBarrier(env, parties=1, allreduce_time=-1)

    def test_all_released_when_last_arrives(self, env):
        barrier = StepBarrier(env, parties=3)
        times = {}

        def rank(tag, work):
            yield env.timeout(work)
            yield barrier.arrive()
            times[tag] = env.now

        for i, work in enumerate((1.0, 2.0, 5.0)):
            env.process(rank(i, work))
        env.run()
        # Straggler semantics: everyone waits for the slowest.
        assert all(t == pytest.approx(5.0) for t in times.values())

    def test_allreduce_delay_added(self, env):
        barrier = StepBarrier(env, parties=2, allreduce_time=0.5)

        def rank():
            yield barrier.arrive()
            return env.now

        a = env.process(rank())
        b = env.process(rank())
        env.run()
        assert a.value == b.value == pytest.approx(0.5)

    def test_cyclic_reuse_across_steps(self, env):
        barrier = StepBarrier(env, parties=2)
        log = []

        def rank(tag):
            for step in range(3):
                yield env.timeout(1.0 if tag == 0 else 2.0)
                yield barrier.arrive()
                log.append((tag, step, env.now))

        env.process(rank(0))
        env.process(rank(1))
        env.run()
        assert barrier.generations == 3
        step_times = sorted({t for _, _, t in log})
        assert step_times == pytest.approx([2.0, 4.0, 6.0])

    def test_missing_party_blocks_forever(self, env):
        barrier = StepBarrier(env, parties=2)

        def lonely():
            yield barrier.arrive()
            return "released"

        proc = env.process(lonely())
        env.run(until=100.0)
        assert proc.is_alive  # still stuck — nobody else arrived
        assert barrier.waiting == 1

    def test_single_party_never_blocks(self, env):
        barrier = StepBarrier(env, parties=1)

        def solo():
            for _ in range(5):
                yield barrier.arrive()
            return env.now

        assert run_proc(env, solo()) == 0.0
