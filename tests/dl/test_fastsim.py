"""Tests for the fluid training model, incl. DES cross-validation."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.dl import Dataset, ElasticConfig, TrainingConfig, TrainingJob
from repro.dl.fastsim import FluidTrainingModel

DS = Dataset(name="toy", n_samples=256, sample_bytes=2.0e6)


def quiet_cc(n=8):
    cc = frontier(n)
    return replace(cc, pfs=replace(cc.pfs, service_noise_sigma=0.0))


def cfg(**over):
    base = dict(
        epochs=3,
        batch_size=8,
        ttl=0.5,
        timeout_threshold=2,
        elastic=ElasticConfig(detect_time=1.0, restart_overhead=2.0, restart_per_log2_node=0.0),
    )
    base.update(over)
    return TrainingConfig(**base)


class TestBasicRuns:
    @pytest.mark.parametrize("policy", ["NoFT", "FT w/ PFS", "FT w/ NVMe"])
    def test_completes_without_failures(self, policy):
        res = FluidTrainingModel(quiet_cc(), DS, policy, cfg(), n_failures=0, seed=1).run()
        assert res.completed and res.failures == 0
        assert sorted(res.epoch_times) == [0, 1, 2]

    def test_cold_epoch_slowest(self):
        res = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), n_failures=0, seed=1).run()
        assert res.epoch_times[0] > res.epoch_times[1]

    def test_preload_removes_cold_cost(self):
        res = FluidTrainingModel(
            quiet_cc(), DS, "FT w/ NVMe", cfg(preload=True), n_failures=0, seed=1
        ).run()
        assert res.epoch_times[0] == pytest.approx(res.epoch_times[1], rel=0.05)

    def test_deterministic(self):
        def run():
            return FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), 2, seed=4).run().total_time

        assert run() == run()

    def test_pfs_accounting_cold_epoch(self):
        res = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), n_failures=0, seed=1).run()
        # Exactly one full-dataset pass through the PFS (the cold epoch).
        assert res.pfs_files == DS.n_samples
        assert res.pfs_bytes == pytest.approx(DS.total_bytes)


class TestFailures:
    def test_noft_aborts(self):
        res = FluidTrainingModel(quiet_cc(), DS, "NoFT", cfg(), n_failures=1, seed=2).run()
        assert not res.completed and "NoFT" in res.abort_reason

    @pytest.mark.parametrize("policy", ["FT w/ PFS", "FT w/ NVMe"])
    def test_ft_survives_all_failures(self, policy):
        res = FluidTrainingModel(quiet_cc(), DS, policy, cfg(), n_failures=3, seed=2).run()
        assert res.completed
        assert res.failures == 3
        assert res.restarts == 3
        assert res.n_nodes_end == res.n_nodes_start - 3

    def test_failures_cost_time(self):
        t0 = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), 0, seed=2).run().total_time
        t1 = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), 2, seed=2).run().total_time
        assert t1 > t0

    def test_pfs_policy_rereads_lost_data_every_epoch(self):
        nvme = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(epochs=5), 1, seed=2).run()
        pfs = FluidTrainingModel(quiet_cc(), DS, "FT w/ PFS", cfg(epochs=5), 1, seed=2).run()
        # Redirect keeps going back to the PFS; recache pays once.
        assert pfs.pfs_files > nvme.pfs_files

    def test_nvme_beats_pfs_under_failures(self):
        t_nvme = FluidTrainingModel(quiet_cc(16), DS, "FT w/ NVMe", cfg(epochs=5), 3, seed=6).run().total_time
        t_pfs = FluidTrainingModel(quiet_cc(16), DS, "FT w/ PFS", cfg(epochs=5), 3, seed=6).run().total_time
        assert t_nvme < t_pfs

    def test_epoch_recovery_slower_than_step(self):
        t_step = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(recovery="step"), 2, seed=3).run().total_time
        t_epoch = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(recovery="epoch"), 2, seed=3).run().total_time
        assert t_epoch > t_step

    def test_failure_plan_respects_first_epoch(self):
        model = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), 4, seed=5)
        res = model.run()
        first_epoch_end = next(r.end for r in res.timeline.epochs if r.epoch == 0)
        assert all(f.time > first_epoch_end for f in res.timeline.failures)

    def test_too_few_epochs_for_injection_rejected(self):
        model = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(epochs=1), 1, seed=5)
        with pytest.raises(ValueError):
            model.run()


class TestCrossValidation:
    """The fluid model must agree with the event-level DES at small scale."""

    @pytest.mark.parametrize("policy", ["FT w/ PFS", "FT w/ NVMe"])
    def test_no_failure_totals_agree(self, policy):
        cc = quiet_cc(8)
        cluster = Cluster(cc, seed=5)
        des = TrainingJob(cluster, DS, policy, cfg()).run()
        fluid = FluidTrainingModel(cc, DS, policy, cfg(), n_failures=0, seed=5).run()
        assert fluid.total_time == pytest.approx(des.total_time, rel=0.15)

    def test_warm_epochs_agree_tightly(self):
        cc = quiet_cc(8)
        cluster = Cluster(cc, seed=5)
        des = TrainingJob(cluster, DS, "FT w/ NVMe", cfg()).run()
        fluid = FluidTrainingModel(cc, DS, "FT w/ NVMe", cfg(), n_failures=0, seed=5).run()
        assert fluid.epoch_times[1] == pytest.approx(des.epoch_times[1], rel=0.03)
        assert fluid.epoch_times[2] == pytest.approx(des.epoch_times[2], rel=0.03)

    def test_policy_ordering_agrees_under_failures(self):
        cc = quiet_cc(8)

        def des_time(policy):
            from repro.cluster.slurm import SlurmController
            from repro.failures import FailureInjector

            cluster = Cluster(cc, seed=5)
            job = TrainingJob(cluster, DS, policy, cfg(epochs=5))
            FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 2)
            return job.run().total_time

        def fluid_time(policy):
            return FluidTrainingModel(cc, DS, policy, cfg(epochs=5), 2, seed=5).run().total_time

        assert (des_time("FT w/ NVMe") <= des_time("FT w/ PFS")) == (
            fluid_time("FT w/ NVMe") <= fluid_time("FT w/ PFS")
        )
