"""Tests for push-based (proactive) recaching after failure declaration."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.cluster.slurm import SlurmController
from repro.dl import Dataset, ElasticConfig, TrainingConfig, TrainingJob
from repro.dl.fastsim import FluidTrainingModel
from repro.failures import FailureInjector

DS = Dataset(name="t", n_samples=256, sample_bytes=2.0e6)


def quiet_cc(n=8):
    cc = frontier(n)
    return replace(cc, pfs=replace(cc.pfs, service_noise_sigma=0.0))


def cfg(**over):
    base = dict(
        epochs=4,
        batch_size=8,
        ttl=0.4,
        timeout_threshold=2,
        elastic=ElasticConfig(detect_time=0.5, restart_overhead=1.0, restart_per_log2_node=0.0),
    )
    base.update(over)
    return TrainingConfig(**base)


def run_des(proactive, seed=4, n_failures=1):
    cluster = Cluster(quiet_cc(), seed=seed)
    job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg(proactive_recache=proactive))
    FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, n_failures)
    return job.run()


class TestDesProactive:
    def test_prefetch_happens(self):
        res = run_des(True)
        assert res.completed
        assert res.metrics.get("proactive.files") > 0

    def test_lost_files_end_up_cached(self):
        cluster = Cluster(quiet_cc(), seed=4)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg(proactive_recache=True))
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        res = job.run()
        assert res.completed
        cached = sum(len(s.store) for i, s in enumerate(job.servers) if cluster.nodes[i].alive)
        assert cached == DS.n_samples

    def test_not_slower_than_reactive(self):
        t_reactive = run_des(False).total_time
        t_proactive = run_des(True).total_time
        assert t_proactive <= t_reactive * 1.05

    def test_cascading_failures_recover(self):
        res = run_des(True, n_failures=2)
        assert res.completed and res.failures == 2


class TestFluidProactive:
    def test_no_demand_refetch_penalty(self):
        base = FluidTrainingModel(quiet_cc(16), DS, "FT w/ NVMe", cfg(), 2, seed=4).run()
        pro = FluidTrainingModel(
            quiet_cc(16), DS, "FT w/ NVMe", cfg(proactive_recache=True), 2, seed=4
        ).run()
        assert pro.total_time <= base.total_time
        # The PFS still re-reads the lost bytes (in the background).
        assert pro.pfs_files >= DS.n_samples

    def test_noop_without_failures(self):
        a = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(), 0, seed=1).run()
        b = FluidTrainingModel(
            quiet_cc(), DS, "FT w/ NVMe", cfg(proactive_recache=True), 0, seed=1
        ).run()
        assert a.total_time == pytest.approx(b.total_time)
